"""Setuptools shim.

The offline environment ships setuptools without the ``wheel``
package, so PEP 660 editable installs (``pip install -e .``) cannot
build the editable wheel. This shim lets ``python setup.py develop``
and legacy editable installs work; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
