"""Inspect or clear the campaign result cache (.repro-cache).

Usage::

    python tools/cache_admin.py stats [--cache-dir DIR]
    python tools/cache_admin.py clear [--cache-dir DIR]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

from repro.runner.cache import DEFAULT_CACHE_DIR, ResultCache  # noqa: E402
from repro.util.units import to_megabytes  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["stats", "clear"])
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    args = parser.parse_args(argv)
    cache = ResultCache(args.cache_dir)
    if args.command == "stats":
        stats = cache.stats()
        print(
            f"{cache.root}: {stats['entries']} entries, "
            f"{to_megabytes(stats['bytes']):.1f} MB"
        )
    else:
        removed = cache.clear()
        print(f"{cache.root}: removed {removed} entries")
    return 0


if __name__ == "__main__":
    sys.exit(main())
