import numpy as np
from repro import ScenarioConfig, run_session
from repro.util.units import to_mbps
cfg = ScenarioConfig(cc='gcc', environment='urban', platform='air', duration=120.0, seed=21)
res = run_session(cfg)
log = res.cc_log
# target over time + offset stats
for t in range(0, 120, 10):
    seg = [e for e in log if t <= e.time < t+10]
    if not seg: continue
    targets = [e.target_bitrate for e in seg]
    offs = [e.extra['offset_ms'] for e in seg]
    thr = [e.extra['threshold_ms'] for e in seg]
    acked = [e.extra['acked_bitrate'] for e in seg if e.extra['acked_bitrate']>0]
    caps = [s.uplink_bps for s in res.capacity_samples if t <= s.time < t+10]
    hos = [h for h in res.handovers if t <= h.time < t+10]
    print(f"t={t:3d} tgt={to_mbps(np.mean(targets)):5.1f} acked={to_mbps(np.mean(acked)) if acked else 0:5.1f} cap={to_mbps(np.mean(caps)):5.1f} "
          f"off_p95={np.percentile(np.abs(offs),95):6.2f} thr={np.mean(thr):5.1f} HOs={len(hos)}")
print("overuse:", res.extra['overuse_events'])
