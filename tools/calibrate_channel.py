"""Channel-only calibration probe: HO rate + capacity stats per scenario."""
import numpy as np
from repro.net.simulator import EventLoop
from repro.cellular.channel import CellularChannel, ChannelConfig
from repro.cellular.propagation import PropagationConfig
from repro.cellular.operators import get_profile
from repro.core.config import ScenarioConfig, Environment, Platform
from repro.core.session import build_trajectory, build_channel_config
from repro.util.rng import RngStreams
from repro.util.units import to_mbps, to_ms

def probe(env, plat, operator="P1", seeds=(1,2,3,4,5), duration=360.0):
    hos, caps, het_all = [], [], []
    for seed in seeds:
        cfg = ScenarioConfig(environment=env, platform=plat, operator=operator, duration=duration, seed=seed)
        loop = EventLoop()
        streams = RngStreams(seed)
        profile = get_profile(operator, cfg.environment.value)
        layout = profile.build_layout(streams.derive("layout"))
        traj = build_trajectory(cfg, streams)
        ch = CellularChannel(loop, layout, profile, traj, streams.child("channel"), config=build_channel_config(cfg))
        ch.start()
        loop.run_until(duration)
        hos.append(len(ch.engine.events)/duration)
        caps.extend(s.uplink_bps for s in ch.samples)
        het_all.extend(e.execution_time for e in ch.engine.events)
    caps = to_mbps(np.array(caps))
    print(f"{env:5s} {plat:6s} {operator}: HO/s={np.mean(hos):.3f}  cap Mbps p10/p50/p90={np.percentile(caps,10):.1f}/{np.percentile(caps,50):.1f}/{np.percentile(caps,90):.1f} mean={caps.mean():.1f}", end="")
    if het_all:
        het = to_ms(np.array(het_all))
        print(f"  HET med={np.median(het):.0f}ms p95={np.percentile(het,95):.0f}ms max={het.max():.0f}ms n={len(het)}")
    else:
        print("  (no HOs)")

for env in ("urban","rural"):
    for plat in ("air","ground"):
        probe(env, plat)
probe("rural","air","P2")
