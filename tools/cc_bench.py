"""CC diagnostic on a clean constant-capacity link (no cellular)."""
import sys

from repro.net.simulator import EventLoop
from repro.net.path import NetworkPath
from repro.core.sender import VideoSender
from repro.core.receiver import VideoReceiver
from repro.core.session import build_controller
from repro.core.config import ScenarioConfig
from repro.util.rng import RngStreams
from repro.util.units import mbps, to_mbps
from repro.video.source import SourceVideo
from repro.video.encoder import EncoderModel


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    cc_name = argv[0] if len(argv) > 0 else "gcc"
    capacity = mbps(float(argv[1])) if len(argv) > 1 else 40e6
    duration = float(argv[2]) if len(argv) > 2 else 60.0

    cfg = ScenarioConfig(cc=cc_name, duration=duration, seed=5)
    loop = EventLoop()
    streams = RngStreams(cfg.seed)
    ctrl = build_controller(cfg)
    holder = []
    up = NetworkPath(loop, lambda t: capacity, lambda d: holder[0].on_datagram(d),
                     base_delay=0.025, jitter_std=0.0005, rng=streams.derive("j1"))
    down = NetworkPath(loop, lambda t: capacity, lambda d: holder[0].on_feedback_delivered(d),
                       base_delay=0.025, jitter_std=0.0005, rng=streams.derive("j2"))
    src = SourceVideo(streams.derive("src"))
    enc = EncoderModel(streams.derive("enc"), initial_bitrate=ctrl.target_bitrate(0))
    snd = VideoSender(loop, src, enc, ctrl, up)
    rcv = VideoReceiver(loop, ctrl, down, scream_ack_window=cfg.scream_ack_window)
    holder.append(rcv)
    snd.start()
    rcv.start()
    loop.run_until(duration)
    log = ctrl.log
    for t in range(0, int(duration), 5):
        entries = [e for e in log if t <= e.time < t + 5]
        if entries:
            e = entries[-1]
            print(f"t={t:3d} target={to_mbps(e.target_bitrate):5.2f}Mbps",
                  {k: (round(v, 2) if isinstance(v, float) else v) for k, v in e.extra.items()})
    print("extra:", getattr(ctrl, 'overuse_events', None),
          getattr(ctrl, 'false_loss_candidates', None),
          getattr(ctrl, 'detected_losses', None))
    print("sent", snd.stats.packets_sent, "delivered", len(rcv.packet_log),
          "discards", snd.stats.queue_discards)


if __name__ == "__main__":
    main()
