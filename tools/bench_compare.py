#!/usr/bin/env python
"""Compare benchmark runs against the committed baseline and track trends.

CI's ``bench-smoke`` job runs the representative benches with
``--benchmark-json=bench-current.json`` and calls::

    python tools/bench_compare.py benchmarks/baseline.json \
        bench-current.json --max-regression 0.25

exiting non-zero when any bench's wall time regressed by more than
the tolerance. Refresh the baseline (after an intentional perf
change, or when CI runner hardware shifts) with::

    python tools/bench_compare.py benchmarks/baseline.json \
        bench-current.json --update

which rewrites the baseline from the current run — moving the old
figures under ``"previous"`` so the before/after of each perf change
stays in the committed record; commit the result.

The committed baseline uses a minimal schema — ``{"schema": 1,
"scale": ..., "benches": {name: seconds}}`` — extracted from the
pytest-benchmark JSON, so refreshes don't churn machine-specific
metadata through git history.

Bench-history artifacts: ``--emit-history BENCH_<sha>.json`` writes a
machine-readable snapshot of the current run (per-bench wall seconds,
scale, python version, commit sha) — CI uploads one per commit. The
``current`` argument also accepts a *directory* of such artifacts, in
which case the tool prints a per-bench trend across the last ``--last``
snapshots instead of comparing against the baseline::

    python tools/bench_compare.py benchmarks/baseline.json bench-history/
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

BASELINE_SCHEMA = 1

#: Schema of the per-commit ``BENCH_<sha>.json`` history artifacts.
HISTORY_SCHEMA = 1


def load_current(path: Path) -> dict[str, float]:
    """Bench name -> mean seconds from a benchmark JSON file.

    Accepts either raw ``pytest-benchmark --benchmark-json`` output
    (``{"benchmarks": [...]}``) or a ``BENCH_<sha>.json`` history
    artifact (``{"schema": 1, "benches": {...}}``).
    """
    data = json.loads(path.read_text())
    if "benchmarks" in data:
        return {
            bench["name"]: float(bench["stats"]["mean"])
            for bench in data.get("benchmarks", [])
        }
    if "benches" in data:
        if data.get("schema") != HISTORY_SCHEMA:
            raise SystemExit(
                f"{path}: unsupported history schema {data.get('schema')!r} "
                f"(expected {HISTORY_SCHEMA})"
            )
        return {name: float(secs) for name, secs in data["benches"].items()}
    raise SystemExit(f"{path}: neither pytest-benchmark nor BENCH_* JSON")


def load_baseline(path: Path) -> dict[str, float]:
    """Bench name -> seconds from the committed baseline file."""
    data = json.loads(path.read_text())
    if data.get("schema") != BASELINE_SCHEMA:
        raise SystemExit(
            f"{path}: unsupported baseline schema {data.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA}); refresh with --update"
        )
    return {name: float(secs) for name, secs in data["benches"].items()}


def write_baseline(
    path: Path, benches: dict[str, float], scale: str, note: str = ""
) -> None:
    """Write the minimal committed-baseline rendering.

    An existing baseline's figures move under ``"previous"`` (one
    level deep — the previous ``"previous"`` is dropped), so every
    refresh leaves a committed before/after of the perf change.
    ``note`` describes what the preserved figures predate.
    """
    payload: dict = {
        "schema": BASELINE_SCHEMA,
        "scale": scale,
        "benches": {name: round(secs, 4) for name, secs in sorted(benches.items())},
    }
    if path.exists():
        try:
            old = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            old = {}
        if old.get("benches"):
            payload["previous"] = {
                "benches": old["benches"],
                "note": note
                or "Figures before the last baseline refresh "
                "(same machine, same scale).",
            }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def emit_history(path: Path, benches: dict[str, float], scale: str, sha: str) -> None:
    """Write one machine-readable ``BENCH_<sha>.json`` snapshot."""
    payload = {
        "schema": HISTORY_SCHEMA,
        "sha": sha,
        "scale": scale,
        "python": platform.python_version(),
        "benches": {name: round(secs, 4) for name, secs in sorted(benches.items())},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"history snapshot written: {path} ({len(benches)} benches)")


def print_trend(directory: Path, last: int) -> int:
    """Per-bench wall-time trend across the newest history artifacts.

    Artifacts are ordered oldest -> newest by modification time (the
    upload time tracks commit order on CI); each bench prints one line
    of its recent timings plus the net change across the window.
    """
    artifacts = sorted(
        directory.glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime
    )[-last:]
    if not artifacts:
        print(f"error: no BENCH_*.json artifacts in {directory}", file=sys.stderr)
        return 2
    runs = []
    for artifact in artifacts:
        data = json.loads(artifact.read_text())
        sha = str(data.get("sha", artifact.stem.replace("BENCH_", "")))[:9]
        runs.append((sha, data.get("benches", {})))
    names = sorted({name for _, benches in runs for name in benches})
    width = max(len(name) for name in names)
    print(f"trend across {len(runs)} snapshot(s): " + " -> ".join(s for s, _ in runs))
    for name in names:
        series = [benches.get(name) for _, benches in runs]
        cells = "  ".join(
            f"{secs:7.2f}" if secs is not None else f"{'--':>7}" for secs in series
        )
        measured = [secs for secs in series if secs is not None]
        if len(measured) >= 2 and measured[0] > 0:
            net = (measured[-1] / measured[0] - 1.0) * 100.0
            tail = f"  {net:+6.1f}%"
        else:
            tail = f"  {'new':>7}"
        print(f"{name:<{width}}  {cells}{tail}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "current",
        type=Path,
        help="pytest-benchmark JSON, BENCH_<sha>.json, or a directory "
        "of BENCH_*.json artifacts (trend mode)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional slowdown per bench (default 0.25, "
        "or env REPRO_BENCH_TOLERANCE)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current run instead of comparing "
        "(old figures move under 'previous')",
    )
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "quick"),
        help="scale tag recorded on --update/--emit-history "
        "(default: REPRO_BENCH_SCALE)",
    )
    parser.add_argument(
        "--note",
        default="",
        help="on --update, annotate the preserved 'previous' figures "
        "with what they predate",
    )
    parser.add_argument(
        "--emit-history",
        type=Path,
        metavar="PATH",
        help="also write a BENCH_<sha>.json snapshot of the current run",
    )
    parser.add_argument(
        "--sha",
        default=os.environ.get("GITHUB_SHA", "local"),
        help="commit id stamped on --emit-history (default: GITHUB_SHA)",
    )
    parser.add_argument(
        "--last",
        type=int,
        default=10,
        help="snapshots to include in directory trend mode (default 10)",
    )
    args = parser.parse_args(argv)

    if args.current.is_dir():
        return print_trend(args.current, max(1, args.last))

    current = load_current(args.current)
    if not current:
        print(f"error: no benchmarks found in {args.current}", file=sys.stderr)
        return 2
    if args.emit_history is not None:
        emit_history(args.emit_history, current, args.scale, args.sha)
    if args.update:
        write_baseline(args.baseline, current, args.scale, args.note)
        print(f"baseline refreshed: {args.baseline} ({len(current)} benches)")
        return 0

    baseline = load_baseline(args.baseline)
    tolerance = args.max_regression
    regressions: list[str] = []
    width = max(len(name) for name in current)
    print(f"{'bench':<{width}}  {'base':>8}  {'now':>8}  {'ratio':>6}")
    for name, now in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {'--':>8}  {now:8.2f}  {'new':>6}  "
                  "(not in baseline; refresh with --update)")
            continue
        ratio = now / base if base > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + tolerance:
            flag = "  REGRESSION"
            regressions.append(name)
        print(f"{name:<{width}}  {base:8.2f}  {now:8.2f}  {ratio:6.2f}{flag}")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  (in baseline but not measured)")
    if regressions:
        print(
            f"\n{len(regressions)} bench(es) slower than baseline by "
            f">{tolerance * 100:.0f}%: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(current)} benches within {tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
