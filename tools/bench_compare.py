#!/usr/bin/env python
"""Compare a pytest-benchmark JSON run against the committed baseline.

CI's ``bench-smoke`` job runs the representative benches with
``--benchmark-json=bench-current.json`` and calls::

    python tools/bench_compare.py benchmarks/baseline.json \
        bench-current.json --max-regression 0.25

exiting non-zero when any bench's wall time regressed by more than
the tolerance. Refresh the baseline (after an intentional perf
change, or when CI runner hardware shifts) with::

    python tools/bench_compare.py benchmarks/baseline.json \
        bench-current.json --update

which rewrites the baseline from the current run; commit the result.

The committed baseline uses a minimal schema — ``{"schema": 1,
"scale": ..., "benches": {name: seconds}}`` — extracted from the
pytest-benchmark JSON, so refreshes don't churn machine-specific
metadata through git history.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

BASELINE_SCHEMA = 1


def load_current(path: Path) -> dict[str, float]:
    """Bench name -> mean seconds from a pytest-benchmark JSON file."""
    data = json.loads(path.read_text())
    benches: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        benches[bench["name"]] = float(bench["stats"]["mean"])
    return benches


def load_baseline(path: Path) -> dict[str, float]:
    """Bench name -> seconds from the committed baseline file."""
    data = json.loads(path.read_text())
    if data.get("schema") != BASELINE_SCHEMA:
        raise SystemExit(
            f"{path}: unsupported baseline schema {data.get('schema')!r} "
            f"(expected {BASELINE_SCHEMA}); refresh with --update"
        )
    return {name: float(secs) for name, secs in data["benches"].items()}


def write_baseline(path: Path, benches: dict[str, float], scale: str) -> None:
    """Write the minimal committed-baseline rendering."""
    payload = {
        "schema": BASELINE_SCHEMA,
        "scale": scale,
        "benches": {name: round(secs, 4) for name, secs in sorted(benches.items())},
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument(
        "current", type=Path, help="pytest-benchmark --benchmark-json output"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.25")),
        help="allowed fractional slowdown per bench (default 0.25, "
        "or env REPRO_BENCH_TOLERANCE)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current run instead of comparing",
    )
    parser.add_argument(
        "--scale",
        default=os.environ.get("REPRO_BENCH_SCALE", "quick"),
        help="scale tag recorded on --update (default: REPRO_BENCH_SCALE)",
    )
    args = parser.parse_args(argv)

    current = load_current(args.current)
    if not current:
        print(f"error: no benchmarks found in {args.current}", file=sys.stderr)
        return 2
    if args.update:
        write_baseline(args.baseline, current, args.scale)
        print(f"baseline refreshed: {args.baseline} ({len(current)} benches)")
        return 0

    baseline = load_baseline(args.baseline)
    tolerance = args.max_regression
    regressions: list[str] = []
    width = max(len(name) for name in current)
    print(f"{'bench':<{width}}  {'base':>8}  {'now':>8}  {'ratio':>6}")
    for name, now in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {'--':>8}  {now:8.2f}  {'new':>6}  "
                  "(not in baseline; refresh with --update)")
            continue
        ratio = now / base if base > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + tolerance:
            flag = "  REGRESSION"
            regressions.append(name)
        print(f"{name:<{width}}  {base:8.2f}  {now:8.2f}  {ratio:6.2f}{flag}")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}}  (in baseline but not measured)")
    if regressions:
        print(
            f"\n{len(regressions)} bench(es) slower than baseline by "
            f">{tolerance * 100:.0f}%: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nall {len(current)} benches within {tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
