"""Assemble EXPERIMENTS.md from the freshest benchmark reports."""

from pathlib import Path

ROOT = Path(__file__).parent.parent
REPORTS = ROOT / "benchmarks" / "reports"

HEADER = """# EXPERIMENTS — paper vs. measured

Every figure and headline statistic of the paper's evaluation has a
benchmark under `benchmarks/` that reruns the experiment on the
simulated substrate, prints the figure as text, and asserts the
paper's qualitative shape. This file records, per artifact, what the
paper reports and what this reproduction measures. Regenerate with

```bash
pytest benchmarks/ --benchmark-only        # refreshes benchmarks/reports/
python tools/make_experiments_md.py        # rewrites this file
```

Campaigns fan out over the `repro.runner` process pool and reuse the
content-addressed result cache: set `REPRO_BENCH_WORKERS=N` (`0` = one
worker per core) and `REPRO_BENCH_CACHE=.repro-cache` to parallelize
the benches and make re-runs free (results are deterministic per seed,
so worker count never changes a figure). See README "Parallel
campaigns and result caching" for cache layout and invalidation.

Measured numbers below come from the default bench scale (150 s runs,
2 seeds; channel-only probes 300 s x 8 seeds). Absolute values are not
expected to match the Munich testbed — the substrate is a calibrated
simulator — but who wins, by roughly what factor, and where the
crossovers fall should match; deviations are called out explicitly.

Every number in this file rests on the repo's reproducibility
invariants, which CI enforces with the `repro.lint` static pass
(`python -m repro.lint src tools examples`): no entropy or wall-clock
reads outside the seeded `RngStreams` path (RPL001), unit conversions
through `repro.util.units` only (RPL002), no leaked event-loop handles
(RPL003), only picklable callables across the campaign process
boundary (RPL004), and no hard-coded seed fallbacks (RPL005).
Deliberate exceptions — e.g. wall-clock campaign telemetry — carry an
inline `# repro-lint: ignore[RPL001]` pragma. See README "Static
analysis" for the rule catalogue.

Regenerating is quick: the single-run fast path (allocation-free
event heap, slotted packet objects, batched RNG draws, precomputed
radio geometry — see README "Performance") made the headline session
2.1x faster and the quick-scale benches 2-5x faster than the first
tuned release, with bit-identical packet logs where draw order is
preserved; `repro profile` locates the current hot spots.

On top of that, campaigns batch whole seed sweeps: work units that
are cache-key-equal modulo seed execute as one struct-of-arrays task
(`repro.runner.batch` + `repro.cellular.batch`), which runs a Fig.
4-style 8-seed channel sweep ~3x faster than the scalar path (0.99 s
-> 0.33 s measured by `benchmarks/test_batch_sweep.py`, which gates
on >= 2x) while staying bit-identical — the dedicated `fingerprints`
CI job pins packet-for-packet equality across seven scenario configs.
Per-commit bench wall times are archived as `BENCH_<sha>.json`
artifacts (see `tools/bench_compare.py` trend mode).

"""

SECTIONS = [
    (
        "Fig. 4 — handover frequency and execution time",
        "fig4_handover",
        """Paper: aerial HO frequency about an order of magnitude above
ground (up to 0.7 HO/s), urban above rural; most HETs under the 3GPP
49.5 ms threshold, with outliers — concentrated in the air — ranging
up to 4 s.

Measured shape: air/ground ratio 4-10x depending on environment and
seed, urban air above rural air, HET median ~30 ms with air-biased
outliers into the seconds. Matches.""",
    ),
    (
        "Fig. 5 — one-way latency CDFs",
        "fig5_latency",
        """Paper: ~99 % of ground packets below 100 ms, ~96 % in the air,
with aerial outliers beyond 1 s.

Measured shape: ground ~99-100 % below 100 ms, air ~90-97 %, aerial
tail reaching past 1 s (handover outages + altitude dropouts).
Matches.""",
    ),
    (
        "Fig. 6 — goodput per bitrate-control method",
        "fig6_goodput",
        """Paper (means): urban static 25 / SCReAM 21 / GCC 19 Mbps; rural
SCReAM 10.5 / GCC 8.5 / static 8 Mbps.

Measured shape: urban static ~25 on top and both CCs well below the
static pick; rural SCReAM above the static 8 Mbps pick. **Deviation:**
our SCReAM averages ~11-13 Mbps urban (paper 21) — the false-loss +
handover back-offs weigh more heavily in the simulated channel, so
urban SCReAM lands below GCC instead of above it. The rural ordering
(SCReAM > static, adaptive methods track the fluctuating capacity)
matches.""",
    ),
    (
        "Fig. 7 — FPS, SSIM and playback-latency CDFs",
        "fig7_video",
        """Paper: CCs deviate from 30 FPS more than static; SSIM >= 0.5 for
98.3-99.6 % of frames; playback latency under 300 ms 30-90 % (urban)
and 55-85 % (rural) of the time, with SCReAM urban at ~38 % and
SCReAM rural ~85 %.

Measured shape: static holds 30 FPS best; SSIM >= 0.5 typically
93-99 %; SCReAM urban latency collapses (~25-50 % under 300 ms,
driven by its queue-discard sequence holes at 25 Mbps) while SCReAM
rural stays high (~80-95 %) — the paper's urban/rural SCReAM
crossover. **Deviation:** our GCC rural latency stays good, whereas
the paper's GCC rural was the worst rural curve; our GCC is slightly
more conservative than libwebrtc's and does not push the rural link
into sustained queueing.""",
    ),
    (
        "Fig. 8 — one GCC flight (time series)",
        "fig8_timeseries",
        """Paper: network-latency spikes precede handovers; playback latency
rises whenever network latency exceeds the 150 ms jitter-buffer
budget.

Measured shape: the bench asserts a >2x network-latency spike within
2 s of a handover and playback latency strictly above the network
floor. Matches.""",
    ),
    (
        "Fig. 9 — latency ratio around handovers",
        "fig9_ho_ratio",
        """Paper: max/min one-way-latency ratio in the 1 s window *before* a
handover averages ~8x (outliers to 37x); *after*, ~5x.

Measured shape: before-window mean above after-window mean with heavy
before-window outliers. This emerges from the radio model: the serving
cell's fast fade is what both degrades capacity and triggers the A3
event. Matches.""",
    ),
    (
        "Fig. 10 — operators P1 vs P2 (rural)",
        "fig10_operators",
        """Paper: P2's denser rural deployment yields clearly more capacity
and more frequent handovers than P1.

Measured shape: P2 capacity >= 1.3x P1 and P2 HO rate >= P1. Matches.""",
    ),
    (
        "Fig. 12 — video performance per operator (rural)",
        "fig12_mno",
        """Paper (Appendix A.3): the adaptive methods exploit P2's extra
capacity (higher goodput, better SSIM); more capacity does *not*
improve SCReAM's playback latency (its feedback issues worsen at
higher bitrates).

Measured shape: SCReAM and GCC goodput clearly higher over P2, static
pinned at its 8 Mbps pick, SCReAM latency no better over P2. Matches.""",
    ),
    (
        "Fig. 13 — ping RTT by altitude band",
        "fig13_altitude",
        """Paper: no clear RTT trend below 100 m; above 100 m the proportion
of high-RTT outliers increases.

Measured shape: band medians within ~40 % of each other below 100 m;
the >300 ms outlier tail grows in the 101-140 m band (altitude-gated
interference dropouts plus handover outages). The effect is weaker
than the paper's because unloaded 92-byte pings barely queue even
through a collapsed-capacity episode — only full outages move them.""",
    ),
    (
        "Headline statistics — PER",
        "stats_per",
        """Paper: PER 0.06-0.07 %, drops mostly consecutive.

Measured: urban ~0.08 % with mean burst ~2.6 packets — matching the
paper's level and burstiness. Rural runs measure higher (~0.4 %)
because multi-second HET outliers at 8 Mbps occasionally overflow
even the deep buffer; the paper's rural PER stayed at 0.06-0.07 %.""",
    ),
    (
        "Headline statistics — stalls per minute (urban)",
        "stats_stalls",
        """Paper: static 0.11, SCReAM 0.89, GCC 1.37 stalls/min.

Measured (default scale): static 0.25, SCReAM 0.50, GCC 0.00
stalls/min. SCReAM stalls the most of the adaptive methods (its
queue discards skip frames), as in the paper. **Deviation:** our GCC
avoids stalls entirely — its slightly conservative rate keeps the
radio queue drained — whereas the paper's GCC stalled most (1.37/min).
Absolute rates are lower across the board: the simulated campaign
draws fewer multi-second HET outliers per minute than the real one.""",
    ),
    (
        "Headline statistics — CC ramp-up",
        "stats_rampup",
        """Paper: ~12 s (GCC) and ~25 s (SCReAM) from start to the 25 Mbps
target.

Measured (clean 40 Mbps link, the CCs' intrinsic start-up phase): GCC
~12 s — matching almost exactly — and SCReAM slower than GCC at
~17 s (paper 25 s; our RFC 8298 fast-increase is slightly more
aggressive than Ericsson's build). Ordering and scale match.""",
    ),
    (
        "Ablation — SCReAM RFC 8888 ack window (64 vs 256)",
        "ablation_ackwindow",
        """Paper (Section 4.2.1): with the default 64-packet window, packets
"remain unacknowledged" above ~7 Mbps and SCReAM "lower[s] its bitrate
needlessly"; the authors widen the window to 256.

Measured: the 64-packet window produces far more false losses per
minute than 256, costing goodput. The mechanism is reproduced
end-to-end (receiver-side bounded report window -> sender-side
below-window loss declaration).""",
    ),
    (
        "Ablation — jitter buffer depth and drop-on-latency (App. A.4)",
        "ablation_jitterbuffer",
        """Paper: 150 ms buffering is one of the two main latency
contributors; Appendix A.4 proposes `drop-on-latency` for RP.

Measured: median playback latency rises with the configured depth;
150 ms keeps the median under 300 ms; drop-on-latency never worsens
the median and discards late packets during congested stretches.""",
    ),
    (
        "Ablation — A3 handover parameters (Section 5)",
        "ablation_a3",
        """Paper: hysteresis / time-to-trigger "can be optimized for aerial
scenarios" to reduce HO frequency and ping-pong.

Measured: HO rate and ping-pong counts fall monotonically as
hysteresis/TTT grow, at mildly increasing delay tails (longer stays
on degrading cells).""",
    ),
    (
        "Ablation — uplink buffer depth (bufferbloat)",
        "ablation_buffers",
        """Paper: deep operator buffers absorb radio losses and convert them
into delay (Section 4.1, Section 5 AQM discussion).

Measured: shrinking the buffer to AQM-like depths cuts the OWD tail
but surfaces the drops the deep buffer hid. The latency/loss trade
matches the bufferbloat literature the paper cites.""",
    ),
    (
        "Extension — DAPS make-before-break handovers (Section 5)",
        "extension_daps",
        """Paper prediction: DAPS "avoid[s] link disruptions in the air and
could hence remove the observed latency spikes".

Measured: with `make_before_break=True` the handover rate is
unchanged but the OWD tail shrinks and latency compliance improves —
only the radio-quality dip remains, the execution outage is gone.""",
    ),
    (
        "Extension — multipath over two operators (Section 5)",
        "extension_multipath",
        """Paper prediction: parallel links to multiple operators "help
improve the reliability of transmissions when one of the underlying
networks is experiencing deteriorations".

Measured: duplicating every packet over independent P1+P2 channels
cuts the OWD p99 and removes nearly all latency violations at 2x the
radio cost; round-robin splitting gives no outage protection.""",
    ),
    (
        "Extension — command/control vs video latency",
        "extension_control",
        """Related work cited by the paper measures control-signal latency
in the tens of milliseconds against video latencies 10-100x larger
over the same link.

Measured: 50 Hz command traffic rides the lightly-loaded downlink at
~20 ms median while video playback sits at ~200-300 ms and all flows
degrade together around handovers (shared radio). Matches.""",
    ),
    (
        "Harness — batched seed sweeps (batched vs scalar)",
        "batch_sweep",
        """Not a paper figure: the execution-harness benchmark behind the
campaign layer's struct-of-arrays batching. It runs the same 8-seed
urban-air channel sweep through the scalar runner and the batched
runner, asserts the two are bit-identical (uplink samples, altitudes,
handover logs), and gates the speedup at >= 2x (measured ~3x).""",
    ),
]


def main() -> None:
    parts = [HEADER]
    for title, report_name, commentary in SECTIONS:
        parts.append(f"## {title}\n")
        parts.append(commentary.strip() + "\n")
        report_path = REPORTS / f"{report_name}.txt"
        if report_path.exists():
            parts.append("Latest bench output:\n")
            parts.append("```")
            parts.append(report_path.read_text().rstrip())
            parts.append("```\n")
        else:
            parts.append(f"_(run `pytest benchmarks/` to produce {report_name}.txt)_\n")
    (ROOT / "EXPERIMENTS.md").write_text("\n".join(parts))
    print(f"wrote EXPERIMENTS.md ({len(SECTIONS)} sections)")


if __name__ == "__main__":
    main()
