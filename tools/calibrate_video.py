"""Full-pipeline calibration: CC x environment video metrics."""
import sys, time
from repro import ScenarioConfig, run_session
from repro.metrics import network_summary, VideoSummary

duration = float(sys.argv[1]) if len(sys.argv) > 1 else 90.0
seed = int(sys.argv[2]) if len(sys.argv) > 2 else 21
for env in ("urban", "rural"):
    for cc in ("static", "gcc", "scream"):
        t0 = time.time()  # repro-lint: ignore[RPL001] (wall-clock benchmark)
        cfg = ScenarioConfig(cc=cc, environment=env, platform="air", duration=duration, seed=seed)
        res = run_session(cfg)
        ns = network_summary(res)
        vs = VideoSummary.from_result(res, warmup=30.0)
        el = time.time() - t0  # repro-lint: ignore[RPL001] (wall-clock benchmark)
        print(f"{env:5s} {cc:6s} [{el:5.1f}s] gp={ns['goodput_mbps']:5.1f} loss={ns['loss_rate']*100:.3f}% "
              f"lat_med={vs.median_latency_ms:4.0f} lat<300={vs.latency_below_threshold:.2f} "
              f"fps={vs.mean_fps:4.1f} fps30={vs.fraction_full_fps:.2f} ssim>.5={vs.ssim_above_threshold:.3f} "
              f"stalls/m={vs.stalls_per_minute:.2f} extra={res.extra}")
