#!/usr/bin/env python3
"""Generate a dataset directory and re-analyze it from disk.

The paper releases its collected traces so others can re-run the
analysis. This example performs the equivalent round trip: it flies a
small measurement campaign, exports every run in the released-dataset
layout (per-run ``packets.csv`` / ``handovers.csv`` / ``channel.csv``
/ ``meta.json``), then loads the runs back and recomputes headline
metrics purely from the files — the same path an external researcher
would take.

Usage::

    python examples/dataset_export.py [--out DIR] [--duration SECONDS]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro import ScenarioConfig, run_session
from repro.analysis import format_table
from repro.traces import export_session, list_runs, load_run
from repro.util.units import bytes_to_bits, to_mbps, to_ms


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="dataset", help="output directory")
    parser.add_argument("--duration", type=float, default=90.0)
    args = parser.parse_args()

    root = Path(args.out)
    configs = [
        ScenarioConfig(
            environment=env, platform="air", cc=cc, duration=args.duration, seed=3
        )
        for env in ("urban", "rural")
        for cc in ("static", "gcc")
    ]
    print(f"Flying {len(configs)} runs and exporting to {root}/ ...")
    for config in configs:
        result = run_session(config)
        run_dir = export_session(result, root / config.label())
        print(f"  wrote {run_dir} ({len(result.packet_log)} packets)")

    print("\nRe-analyzing from disk (no simulator state involved):")
    rows = []
    for run_dir in list_runs(root):
        run = load_run(run_dir)
        delays = np.array([p.one_way_delay for p in run.packets])
        goodput = to_mbps(
            bytes_to_bits(sum(p.size_bytes for p in run.packets)) / run.duration
        )
        rows.append(
            [
                run.meta["label"],
                str(len(run.packets)),
                str(len(run.handovers)),
                f"{to_ms(np.median(delays)):.0f}",
                f"{goodput:.1f}",
            ]
        )
    print(
        format_table(
            ["run", "packets", "handovers", "OWD median ms", "goodput Mbps"],
            rows,
            title="Dataset summary (recomputed from CSV)",
        )
    )


if __name__ == "__main__":
    main()
