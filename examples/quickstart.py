#!/usr/bin/env python3
"""Quickstart: fly one simulated measurement run and print its report.

Runs a single urban UAV flight streaming GCC-adaptive video over the
emulated LTE network — the basic unit of the paper's measurement
campaign — then prints the network- and video-level summary the paper
reports per run.

Usage::

    python examples/quickstart.py [--cc gcc|scream|static]
                                  [--environment urban|rural]
                                  [--duration SECONDS] [--seed N]
"""

from __future__ import annotations

import argparse

from repro import ScenarioConfig, run_session
from repro.analysis import format_table
from repro.metrics import VideoSummary, network_summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cc", default="gcc", choices=["gcc", "scream", "static"])
    parser.add_argument(
        "--environment", default="urban", choices=["urban", "rural"]
    )
    parser.add_argument("--platform", default="air", choices=["air", "ground"])
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    config = ScenarioConfig(
        cc=args.cc,
        environment=args.environment,
        platform=args.platform,
        duration=args.duration,
        seed=args.seed,
    )
    print(f"Running {config.label()} ({args.duration:.0f} s simulated)...")
    result = run_session(config)

    net = network_summary(result)
    video = VideoSummary.from_result(result, warmup=min(30.0, args.duration / 4))

    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["handovers / s", f"{net['ho_per_s']:.3f}"],
                ["HET median", f"{net['het_median_ms']:.0f} ms"],
                ["one-way delay median", f"{net['owd_median_ms']:.0f} ms"],
                ["one-way delay p99", f"{net['owd_p99_ms']:.0f} ms"],
                ["goodput", f"{net['goodput_mbps']:.1f} Mbps"],
                ["packet error rate", f"{net['loss_rate'] * 100:.3f} %"],
                ["cells seen", f"{net['cells_seen']:.0f}"],
            ],
            title="Network (Section 4.1 metrics)",
        )
    )
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["mean FPS", f"{video.mean_fps:.1f}"],
                ["time at ~30 FPS", f"{video.fraction_full_fps * 100:.0f} %"],
                ["playback latency median", f"{video.median_latency_ms:.0f} ms"],
                [
                    "playback latency < 300 ms",
                    f"{video.latency_below_threshold * 100:.0f} %",
                ],
                ["SSIM median", f"{video.median_ssim:.3f}"],
                ["SSIM >= 0.5", f"{video.ssim_above_threshold * 100:.1f} %"],
                ["stalls / minute", f"{video.stalls_per_minute:.2f}"],
            ],
            title="Video delivery (Section 4.2 metrics)",
        )
    )


if __name__ == "__main__":
    main()
