#!/usr/bin/env python3
"""Study handover behaviour across altitudes and A3 parameters.

Runs channel-only probes (no video) to characterize the mobility
environment a remote-piloting service faces: handover frequency per
scenario, HET distribution, ping-pong counts, and the effect of
tuning the A3 hysteresis/time-to-trigger for aerial users — the
mitigation direction the paper discusses in Section 5.

Usage::

    python examples/handover_study.py [--duration SECONDS] [--seeds N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ScenarioConfig
from repro.analysis import format_table
from repro.cellular.handover import A3Config, HET_SUCCESS_THRESHOLD
from repro.experiments import ExperimentSettings, run_channel_probe
from repro.util.units import to_ms


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=300.0)
    parser.add_argument("--seeds", type=int, default=3)
    args = parser.parse_args()

    settings = ExperimentSettings(
        duration=args.duration, seeds=tuple(range(1, args.seeds + 1)), warmup=0.0
    )

    print("Probing the mobility environment (channel only, no video)...")
    rows = []
    for environment in ("urban", "rural"):
        for platform in ("air", "ground"):
            probe = run_channel_probe(
                ScenarioConfig(
                    environment=environment, platform=platform, cc="static"
                ),
                settings,
            )
            hets = np.array(probe.het_values) if probe.het_values else np.array([])
            rows.append(
                [
                    f"{environment}/{platform}",
                    f"{probe.ho_frequency:.3f}",
                    f"{to_ms(np.median(hets)):.0f}" if hets.size else "-",
                    f"{to_ms(np.max(hets)):.0f}" if hets.size else "-",
                    f"{np.mean(hets <= HET_SUCCESS_THRESHOLD) * 100:.0f}%"
                    if hets.size
                    else "-",
                    str(probe.ping_pong),
                ]
            )
    print(
        format_table(
            ["scenario", "HO/s", "HET med ms", "HET max ms", "HET ok", "ping-pong"],
            rows,
            title="Mobility per scenario (cf. Fig. 4)",
        )
    )

    print("\nTuning A3 parameters for aerial use (urban flights)...")
    rows = []
    for hysteresis, ttt in ((1.0, 0.128), (3.0, 0.256), (6.0, 0.512)):
        probe = run_channel_probe(
            ScenarioConfig(
                environment="urban",
                platform="air",
                cc="static",
                extra={"a3": A3Config(hysteresis_db=hysteresis, time_to_trigger=ttt)},
            ),
            settings,
        )
        rows.append(
            [
                f"{hysteresis:.0f} dB / {to_ms(ttt):.0f} ms",
                f"{probe.ho_frequency:.3f}",
                str(probe.ping_pong),
                str(probe.cells_seen),
            ]
        )
    print(
        format_table(
            ["hysteresis / TTT", "HO/s", "ping-pong", "cells"],
            rows,
            title="A3 tuning (Section 5: 'Mitigating influence of HOs on RP')",
        )
    )


if __name__ == "__main__":
    main()
