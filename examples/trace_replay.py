#!/usr/bin/env python3
"""Replay a recorded channel trace under two pipeline configurations.

The point of the paper's released traces: hold the network fixed and
vary one pipeline knob. This example records one urban flight's
channel (capacity series + handover outages), then replays the *exact
same channel* twice — once with the default jitter buffer and once
with the ``drop-on-latency`` strategy of Appendix A.4 — and compares
playback latency.

Usage::

    python examples/trace_replay.py [--duration SECONDS]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import ScenarioConfig, run_session
from repro.analysis import format_table
from repro.cc.base import StaticBitrateController
from repro.core.receiver import VideoReceiver
from repro.core.sender import VideoSender
from repro.net.loss import GilbertElliottLoss
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop
from repro.traces import TraceReplayChannel
from repro.traces.schema import ChannelRecord, HandoverRecord
from repro.util.rng import RngStreams
from repro.util.units import to_ms
from repro.video.encoder import EncoderModel
from repro.video.source import SourceVideo


def replay(
    channel_trace: list[ChannelRecord],
    handovers: list[HandoverRecord],
    *,
    duration: float,
    drop_on_latency: bool,
) -> list[float]:
    """Replay the trace with one jitter-buffer setting; return latencies."""
    loop = EventLoop()
    streams = RngStreams(99)
    replay_channel = TraceReplayChannel(loop, channel_trace, handovers)
    controller = StaticBitrateController(25e6)
    holder: list[VideoReceiver] = []
    uplink = NetworkPath(
        loop,
        replay_channel.uplink_rate,
        lambda d: holder[0].on_datagram(d),
        base_delay=0.018,
        jitter_std=0.0005,
        loss_model=GilbertElliottLoss.from_rate_and_burst(
            0.00065, 3.0, streams.derive("loss")
        ),
        rng=streams.derive("jitter"),
    )
    downlink = NetworkPath(
        loop,
        replay_channel.downlink_rate,
        lambda d: holder[0].on_feedback_delivered(d),
        base_delay=0.018,
        jitter_std=0.0005,
        rng=streams.derive("jitter2"),
    )
    replay_channel.attach_path(uplink)
    replay_channel.attach_path(downlink)
    source = SourceVideo(streams.derive("source"))
    encoder = EncoderModel(streams.derive("encoder"), initial_bitrate=25e6)
    sender = VideoSender(loop, source, encoder, controller, uplink)
    receiver = VideoReceiver(
        loop,
        controller,
        downlink,
        jitter_buffer_latency=0.150,
        drop_on_latency=drop_on_latency,
    )
    holder.append(receiver)
    replay_channel.start()
    sender.start()
    receiver.start()
    loop.run_until(duration)
    return [record.playback_latency for record in receiver.player.records]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=90.0)
    args = parser.parse_args()

    print("Recording one urban flight's channel...")
    recording = run_session(
        ScenarioConfig(
            environment="urban", platform="air", cc="static",
            duration=args.duration, seed=11,
        )
    )
    channel_trace = [
        ChannelRecord(
            time=s.time,
            uplink_bps=s.uplink_bps,
            downlink_bps=s.downlink_bps,
            serving_cell=s.serving_cell,
            rsrp_dbm=s.rsrp_dbm,
            sinr_db=s.sinr_db,
            altitude=s.altitude,
        )
        for s in recording.capacity_samples
    ]
    handovers = [
        HandoverRecord(
            time=e.time,
            source_cell=e.source_cell,
            target_cell=e.target_cell,
            execution_time=e.execution_time,
            altitude=e.altitude,
        )
        for e in recording.handovers
    ]
    print(
        f"  captured {len(channel_trace)} channel samples, "
        f"{len(handovers)} handovers"
    )

    rows = []
    for drop in (False, True):
        latencies = np.array(
            replay(
                channel_trace, handovers, duration=args.duration, drop_on_latency=drop
            )
        )
        rows.append(
            [
                "drop-on-latency" if drop else "default",
                f"{to_ms(np.median(latencies)):.0f}",
                f"{to_ms(np.percentile(latencies, 95)):.0f}",
                f"{np.mean(latencies < 0.3) * 100:.0f}%",
            ]
        )
    print()
    print(
        format_table(
            ["jitter buffer", "median ms", "p95 ms", "lat<300ms"],
            rows,
            title="Same channel, two playout strategies (App. A.4)",
        )
    )


if __name__ == "__main__":
    main()
