#!/usr/bin/env python3
"""Compare the three bitrate-control methods in one environment.

Reproduces the paper's core comparison (Fig. 6 / Fig. 7) at small
scale: static CBR vs GCC vs SCReAM flown over the same seeded channel,
reporting goodput, playback latency, quality and stalls side by side.

Usage::

    python examples/compare_methods.py [--environment urban|rural]
                                       [--duration SECONDS] [--seeds N]
"""

from __future__ import annotations

import argparse

from repro import ScenarioConfig
from repro.analysis import format_table
from repro.experiments import ExperimentSettings, run_matrix
from repro.metrics import VideoSummary, average_goodput
from repro.util.units import to_mbps


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--environment", default="rural", choices=["urban", "rural"]
    )
    parser.add_argument("--duration", type=float, default=120.0)
    parser.add_argument("--seeds", type=int, default=2)
    args = parser.parse_args()

    settings = ExperimentSettings(
        duration=args.duration,
        seeds=tuple(range(1, args.seeds + 1)),
        warmup=min(30.0, args.duration / 4),
    )
    configs = [
        ScenarioConfig(environment=args.environment, platform="air", cc=cc)
        for cc in ("static", "gcc", "scream")
    ]
    print(
        f"Flying {len(configs) * len(settings.seeds)} runs in the "
        f"{args.environment} environment..."
    )
    grouped = run_matrix(configs, settings)

    rows = []
    for label, results in sorted(grouped.items()):
        goodput = sum(
            average_goodput(
                r.packet_log, duration=r.duration, warmup=settings.warmup
            )
            for r in results
        ) / len(results)
        summaries = [
            VideoSummary.from_result(r, warmup=settings.warmup) for r in results
        ]
        rows.append(
            [
                label.split("-")[0],
                f"{to_mbps(goodput):.1f}",
                f"{sum(s.median_latency_ms for s in summaries) / len(summaries):.0f}",
                f"{sum(s.latency_below_threshold for s in summaries) / len(summaries) * 100:.0f}%",
                f"{sum(s.ssim_above_threshold for s in summaries) / len(summaries) * 100:.1f}%",
                f"{sum(s.stalls_per_minute for s in summaries) / len(summaries):.2f}",
            ]
        )
    print()
    print(
        format_table(
            [
                "method",
                "goodput Mbps",
                "lat median ms",
                "lat<300ms",
                "SSIM>=0.5",
                "stalls/min",
            ],
            rows,
            title=f"Bitrate-control comparison ({args.environment}, air)",
        )
    )
    print()
    print(
        "Paper shape: static wins goodput in urban; SCReAM extracts the most\n"
        "from the constrained rural link; SCReAM's playback latency collapses\n"
        "at urban bitrates while staying low in rural (Sections 4.2.1-4.2.2)."
    )


if __name__ == "__main__":
    main()
