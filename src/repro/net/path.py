"""Composition of link primitives into an end-to-end path.

:class:`NetworkPath` wires capacity queue -> loss gate -> delay line
and stamps datagram send/receive times, so end hosts observe one-way
delays that include self-induced queueing — the mechanism behind the
paper's bufferbloat-driven latency spikes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.net.links import CapacityLink, DelayLine, RateFn
from repro.util.rng import BatchedNormal
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Datagram
from repro.net.simulator import EventLoop
from repro.obs import NULL_RECORDER, NullRecorder

ReceiveFn = Callable[[Datagram], None]


class NetworkPath:
    """One direction of a cellular + WAN path.

    Parameters
    ----------
    loop:
        Shared event loop.
    rate_fn:
        Instantaneous radio capacity in bits/s (see
        :class:`repro.net.links.CapacityLink`).
    receive:
        End-host callback for delivered datagrams.
    base_delay:
        Fixed one-way propagation/core delay in seconds.
    jitter_std:
        Std-dev of the half-normal delay jitter in seconds.
    loss_model:
        Residual loss process applied after the radio queue.
    buffer_bytes:
        Radio queue depth (drop-tail).
    rng:
        Jitter noise generator; required whenever ``jitter_std > 0``
        (unless ``jitter`` is given). Derive it from the scenario's
        :class:`repro.util.rng.RngStreams` so two paths never share a
        stream.
    jitter:
        Optional pre-built (typically sweep-preloaded) jitter draw
        buffer; overrides ``rng``.
    obs:
        Trace recorder; consecutive loss-gate drops are recorded as
        ``loss.burst`` spans (the Gilbert-Elliott bad-state episodes
        the attribution engine matches against stalls).
    name:
        Path label stamped on trace records (e.g. ``"uplink"``).
    """

    def __init__(
        self,
        loop: EventLoop,
        rate_fn: RateFn,
        receive: ReceiveFn,
        *,
        base_delay: float = 0.025,
        jitter_std: float = 0.001,
        loss_model: LossModel | None = None,
        buffer_bytes: int = 3_000_000,
        rng: np.random.Generator | None = None,
        jitter: BatchedNormal | None = None,
        obs: NullRecorder = NULL_RECORDER,
        name: str = "",
    ) -> None:
        self._loop = loop
        self._receive = receive
        self.loss_model = loss_model if loss_model is not None else NoLoss()
        self.lost_packets = 0
        self.sent_packets = 0
        self.obs = obs
        self.name = name
        self._burst_packets = 0
        self._burst_t0 = 0.0
        self._burst_t1 = 0.0
        if jitter_std > 0 and rng is None and jitter is None:
            raise ValueError(
                "rng is required when jitter_std > 0; derive one from the "
                "scenario RngStreams (e.g. streams.derive('jitter-up'))"
            )
        self.delay_line = DelayLine(
            loop,
            self._on_delivered,
            base_delay=base_delay,
            jitter_std=jitter_std,
            rng=rng,
            jitter=jitter,
        )
        self.capacity_link = CapacityLink(
            loop,
            rate_fn,
            self._after_radio,
            buffer_bytes=buffer_bytes,
        )

    def send(self, datagram: Datagram) -> None:
        """Inject ``datagram`` at the sender side of the path."""
        datagram.sent_at = self._loop.now
        self.sent_packets += 1
        self.capacity_link.send(datagram)

    def _after_radio(self, datagram: Datagram) -> None:
        if self.loss_model.should_drop():
            self.lost_packets += 1
            if self.obs.enabled:
                if self._burst_packets == 0:
                    self._burst_t0 = self._loop.now
                self._burst_packets += 1
                self._burst_t1 = self._loop.now
            return
        if self.obs.enabled and self._burst_packets:
            self._close_burst()
        self.delay_line.send(datagram)

    def _close_burst(self) -> None:
        self.obs.span_at(
            "loss.burst",
            self._burst_t0,
            self._burst_t1,
            packets=self._burst_packets,
            path=self.name,
        )
        self.obs.count("net/loss_bursts", **({"path": self.name}
                                             if self.name else {}))
        self._burst_packets = 0

    def finish_obs(self) -> None:
        """Flush a loss burst still open at session teardown."""
        if self.obs.enabled and self._burst_packets:
            self._close_burst()

    def _on_delivered(self, datagram: Datagram) -> None:
        datagram.received_at = self._loop.now
        self._receive(datagram)

    def set_up(self, up: bool) -> None:
        """Propagate radio outage state to the capacity link."""
        self.capacity_link.set_up(up)

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets dropped by the loss gate so far."""
        if self.sent_packets == 0:
            return 0.0
        return self.lost_packets / self.sent_packets

    @property
    def queued_bytes(self) -> int:
        """Bytes waiting in the radio buffer."""
        return self.capacity_link.queued_bytes
