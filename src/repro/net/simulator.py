"""Discrete-event simulation core.

Everything in the reproduction runs on one :class:`EventLoop`: the
encoder ticks, packet departures and arrivals, RTCP feedback timers,
handover state transitions and the player clock are all events. The
loop keeps a priority queue of ``(time, sequence, callback)`` entries;
the monotonically increasing sequence number makes execution order
deterministic for simultaneous events.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    time: float
    order: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventLoop.call_at` allowing cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    @property
    def when(self) -> float:
        """Scheduled firing time in simulated seconds."""
        return self._event.time


class EventLoop:
    """A minimal, deterministic discrete-event loop.

    Examples
    --------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.call_at(1.5, lambda: fired.append(loop.now))
    >>> loop.run_until(2.0)
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._order = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def call_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling in the past raises ``ValueError`` — it always
        indicates a component bug rather than a meaningful request.
        """
        if math.isnan(when):
            raise ValueError("cannot schedule event at NaN time")
        if when < self._now:
            raise ValueError(
                f"cannot schedule event at {when:.6f}s before now ({self._now:.6f}s)"
            )
        event = _Event(when, next(self._order), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def call_later(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, callback)

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``.

        The clock is left at ``end_time`` even when the queue drains
        earlier, so periodic components can be restarted consistently.
        """
        if self._running:
            raise RuntimeError("event loop is already running")
        self._running = True
        try:
            while self._queue and self._queue[0].time <= end_time:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
            self._now = max(self._now, end_time)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the event queue is exhausted."""
        if self._running:
            raise RuntimeError("event loop is already running")
        self._running = True
        try:
            while self._queue:
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)


class PeriodicTimer:
    """Repeatedly invokes a callback at a fixed period on an event loop.

    The timer re-arms itself after each tick until :meth:`stop` is
    called. Used for encoder frame ticks, RTCP feedback intervals and
    the modem's 1-second RSSI reports.
    """

    def __init__(
        self,
        loop: EventLoop,
        period: float,
        callback: Callable[[], None],
        *,
        start_at: float | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._loop = loop
        self.period = period
        self._callback = callback
        self._handle: EventHandle | None = None
        self._stopped = False
        first = loop.now + period if start_at is None else start_at
        self._handle = loop.call_at(first, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._handle = self._loop.call_later(self.period, self._tick)

    def stop(self) -> None:
        """Cancel the timer; no further ticks will fire."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped
