"""Discrete-event simulation core.

Everything in the reproduction runs on one :class:`EventLoop`: the
encoder ticks, packet departures and arrivals, RTCP feedback timers,
handover state transitions and the player clock are all events. The
loop keeps a priority queue of ``(time, sequence, callback, event)``
entries; the monotonically increasing sequence number makes execution
order deterministic for simultaneous events.

Fast-path design
----------------
A 60 s congestion-controlled flight pushes several hundred thousand
events through this loop, so the queue representation is tuned for
CPython:

* heap entries are plain tuples — ``heapq`` then compares the
  ``(time, order)`` prefix in C instead of calling a generated
  dataclass ``__lt__`` per sift step (orders are unique, so the
  comparison never reaches the callback);
* cancellation stays lazy (cancelled entries are dropped when popped),
  but cancellable events carry a tiny ``__slots__`` marker object
  rather than a dataclass;
* :meth:`EventLoop.schedule_at` / :meth:`EventLoop.schedule_later`
  are allocation-free fast paths for the per-packet hot paths that
  never cancel: no marker object and no :class:`EventHandle` are
  created;
* :meth:`EventLoop.pending` is O(1): a live counter is maintained at
  push, pop and cancel time instead of scanning the queue.
"""

from __future__ import annotations

import heapq
from typing import Callable


class _Event:
    """Cancellation marker for one scheduled callback.

    The heap entry itself is a plain tuple; this object only carries
    the mutable state an :class:`EventHandle` needs (lazy-deletion
    flag plus the fired flag that keeps the live-event counter exact
    when ``cancel`` is called after the callback already ran).
    """

    __slots__ = ("time", "cancelled", "finished")

    def __init__(self, time: float) -> None:
        self.time = time
        self.cancelled = False
        self.finished = False


class EventHandle:
    """Handle returned by :meth:`EventLoop.call_at` allowing cancellation."""

    __slots__ = ("_event", "_loop")

    def __init__(self, event: _Event, loop: "EventLoop") -> None:
        self._event = event
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        event = self._event
        if not event.cancelled and not event.finished:
            event.cancelled = True
            self._loop._live -= 1

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    @property
    def when(self) -> float:
        """Scheduled firing time in simulated seconds."""
        return self._event.time


class EventLoop:
    """A minimal, deterministic discrete-event loop.

    Examples
    --------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.call_at(1.5, lambda: fired.append(loop.now))
    >>> loop.run_until(2.0)
    >>> fired
    [1.5]
    """

    def __init__(self) -> None:
        #: Heap of ``(time, order, callback, event-or-None)`` tuples.
        self._queue: list[tuple[float, int, Callable[[], None], _Event | None]] = []
        self._order = 0
        self._live = 0
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def _check_time(self, when: float) -> None:
        if when != when:  # faster inline NaN test than math.isnan
            raise ValueError("cannot schedule event at NaN time")
        if when < self._now:
            raise ValueError(
                f"cannot schedule event at {when:.6f}s before now ({self._now:.6f}s)"
            )

    def call_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when``.

        Scheduling in the past raises ``ValueError`` — it always
        indicates a component bug rather than a meaningful request.
        """
        self._check_time(when)
        event = _Event(when)
        order = self._order
        self._order = order + 1
        heapq.heappush(self._queue, (when, order, callback, event))
        self._live += 1
        return EventHandle(event, self)

    def call_later(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Allocation-free :meth:`call_at` for events that never cancel.

        No :class:`EventHandle` (and no cancellation marker) is
        created, which saves two object allocations per event on the
        per-packet hot paths. Use :meth:`call_at` whenever the caller
        might need to cancel.
        """
        self._check_time(when)
        order = self._order
        self._order = order + 1
        heapq.heappush(self._queue, (when, order, callback, None))
        self._live += 1

    def schedule_later(self, delay: float, callback: Callable[[], None]) -> None:
        """Allocation-free :meth:`call_later` for events that never cancel."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule_at(self._now + delay, callback)

    def run_until(self, end_time: float) -> None:
        """Run events up to and including ``end_time``.

        The clock is left at ``end_time`` even when the queue drains
        earlier, so periodic components can be restarted consistently.
        """
        if self._running:
            raise RuntimeError("event loop is already running")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue and queue[0][0] <= end_time:
                when, _, callback, event = pop(queue)
                if event is not None:
                    if event.cancelled:
                        continue
                    event.finished = True
                self._live -= 1
                self._now = when
                callback()
            self._now = max(self._now, end_time)
        finally:
            self._running = False

    def run(self) -> None:
        """Run until the event queue is exhausted."""
        if self._running:
            raise RuntimeError("event loop is already running")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                when, _, callback, event = pop(queue)
                if event is not None:
                    if event.cancelled:
                        continue
                    event.finished = True
                self._live -= 1
                self._now = when
                callback()
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (O(1))."""
        return self._live


class PeriodicTimer:
    """Repeatedly invokes a callback at a fixed period on an event loop.

    The timer re-arms itself after each tick until :meth:`stop` is
    called. Used for encoder frame ticks, RTCP feedback intervals and
    the modem's 1-second RSSI reports.

    Ticks are anchored: tick ``k`` fires at ``first + k * period``
    rather than ``previous + period``, so floating-point error does not
    accumulate over long runs (a 30 FPS encoder re-armed cumulatively
    loses a tick over a 600 s flight; the anchored form fires exactly
    ``600 * fps`` times).
    """

    def __init__(
        self,
        loop: EventLoop,
        period: float,
        callback: Callable[[], None],
        *,
        start_at: float | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._loop = loop
        self.period = period
        self._callback = callback
        self._handle: EventHandle | None = None
        self._stopped = False
        first = loop.now + period if start_at is None else start_at
        self._anchor = first
        self._ticks = 0
        self._handle = loop.call_at(first, self._tick)

    def _tick(self) -> None:
        if self._stopped:
            return
        self._ticks += 1
        self._callback()
        if not self._stopped:
            self._handle = self._loop.call_at(
                self._anchor + self._ticks * self.period, self._tick
            )

    def stop(self) -> None:
        """Cancel the timer; no further ticks will fire."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped
