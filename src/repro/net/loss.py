"""Packet-loss processes.

The paper observes a very low residual packet error rate over LTE
(0.06-0.07 %) because HARQ and deep buffers absorb most radio errors,
and notes that the drops that do surface arrive in consecutive bursts.
A two-state Gilbert-Elliott process reproduces exactly that: long
loss-free stretches punctuated by short bursts of back-to-back drops.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import BatchedUniform


class LossModel:
    """Interface: decide, per packet, whether it is dropped."""

    def should_drop(self) -> bool:
        """Return ``True`` when the next packet must be dropped."""
        raise NotImplementedError


class NoLoss(LossModel):
    """A lossless channel."""

    def should_drop(self) -> bool:
        return False


class BernoulliLoss(LossModel):
    """Independent per-packet loss with fixed probability."""

    def __init__(self, probability: float, rng: np.random.Generator) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self.probability = probability
        self._uniform = BatchedUniform(rng)

    def should_drop(self) -> bool:
        return self._uniform.random() < self.probability


class GilbertElliottLoss(LossModel):
    """Bursty loss from a two-state (good/bad) Markov chain.

    Parameters
    ----------
    p_good_to_bad:
        Per-packet probability of entering the bad state.
    p_bad_to_good:
        Per-packet probability of leaving the bad state. The mean
        burst length is ``1 / p_bad_to_good`` packets.
    loss_in_bad:
        Drop probability while in the bad state (1.0 gives strictly
        consecutive losses, as the paper reports).
    loss_in_good:
        Drop probability while in the good state (usually 0).

    The stationary loss rate is
    ``pi_bad * loss_in_bad + pi_good * loss_in_good`` with
    ``pi_bad = p_gb / (p_gb + p_bg)``.
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        rng: np.random.Generator | None,
        *,
        loss_in_bad: float = 1.0,
        loss_in_good: float = 0.0,
        uniform: BatchedUniform | None = None,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_in_bad", loss_in_bad),
            ("loss_in_good", loss_in_good),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if p_bad_to_good == 0.0 and p_good_to_bad > 0.0:
            raise ValueError("bad state would be absorbing (p_bad_to_good == 0)")
        if rng is None and uniform is None:
            raise ValueError("either rng or uniform is required")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_in_bad = loss_in_bad
        self.loss_in_good = loss_in_good
        #: Per-packet draws come from a block-refilled buffer: one
        #: scalar Generator.random() call per packet is ~20x the cost
        #: of a block draw, and the values are bit-identical. A
        #: seed-sweep batch passes ``uniform`` preloaded for the whole
        #: run (same stream, one refill per sweep).
        self._uniform = uniform if uniform is not None else BatchedUniform(rng)
        self._in_bad_state = False

    @classmethod
    def from_rate_and_burst(
        cls,
        loss_rate: float,
        mean_burst: float,
        rng: np.random.Generator | None,
        *,
        uniform: BatchedUniform | None = None,
    ) -> "GilbertElliottLoss":
        """Construct from a target stationary loss rate and burst length.

        ``mean_burst`` is the expected number of consecutive drops per
        loss event (must be >= 1).
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if mean_burst < 1.0:
            raise ValueError(f"mean_burst must be >= 1, got {mean_burst}")
        p_bg = 1.0 / mean_burst
        # pi_bad = loss_rate (loss_in_bad=1) => p_gb = loss_rate*p_bg/(1-loss_rate)
        p_gb = loss_rate * p_bg / (1.0 - loss_rate) if loss_rate > 0 else 0.0
        return cls(p_gb, p_bg, rng, uniform=uniform)

    @property
    def in_bad_state(self) -> bool:
        """Whether the chain currently sits in the bursty bad state.

        Exposed so tests and the loss-burst tracer can assert burst
        boundaries without reaching into private state.
        """
        return self._in_bad_state

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run fraction of packets dropped by this process."""
        total = self.p_good_to_bad + self.p_bad_to_good
        if total == 0.0:
            return self.loss_in_good
        pi_bad = self.p_good_to_bad / total
        return pi_bad * self.loss_in_bad + (1.0 - pi_bad) * self.loss_in_good

    def should_drop(self) -> bool:
        if self._in_bad_state:
            if self._uniform.random() < self.p_bad_to_good:
                self._in_bad_state = False
        else:
            if self._uniform.random() < self.p_good_to_bad:
                self._in_bad_state = True
        loss_p = self.loss_in_bad if self._in_bad_state else self.loss_in_good
        if loss_p <= 0.0:
            return False
        if loss_p >= 1.0:
            return True
        return self._uniform.random() < loss_p
