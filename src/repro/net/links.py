"""Link primitives: capacity-limited queues and propagation delay.

A cellular uplink is modelled as the composition (see
:mod:`repro.net.path`) of

* a :class:`CapacityLink` — a deep drop-tail FIFO drained at the radio
  link's time-varying rate. LTE operators run large buffers
  ("bufferbloat"), so congestion shows up as delay long before it
  shows up as loss, exactly as the paper observes;
* a :class:`DelayLine` — fixed WAN/core propagation plus random jitter
  (the ~35-50 ms floor between Munich and the AWS London region);
* a loss gate (see :mod:`repro.net.loss`) for the rare residual drops.

The capacity link also exposes :meth:`CapacityLink.set_up` so the
handover manager can silence the radio during handover execution.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from repro.net.packet import Datagram
from repro.net.simulator import EventLoop
from repro.util.rng import BatchedNormal
from repro.util.units import bytes_to_bits

DeliverFn = Callable[[Datagram], None]
RateFn = Callable[[float], float]


class LinkStats:
    """Counters shared by the link primitives."""

    def __init__(self) -> None:
        self.enqueued = 0
        self.delivered = 0
        self.dropped_overflow = 0
        self.bytes_delivered = 0

    def as_dict(self) -> dict[str, int]:
        """Snapshot of the counters for reporting."""
        return {
            "enqueued": self.enqueued,
            "delivered": self.delivered,
            "dropped_overflow": self.dropped_overflow,
            "bytes_delivered": self.bytes_delivered,
        }


class CapacityLink:
    """Drop-tail FIFO drained at a time-varying rate.

    Parameters
    ----------
    loop:
        Event loop driving the simulation.
    rate_fn:
        Callable mapping simulated time to the instantaneous link rate
        in bits/s. Sampled at the start of each packet transmission.
    buffer_bytes:
        Drop-tail queue limit. Cellular uplinks use deep buffers; the
        default corresponds to roughly 1.5 s at 16 Mbps.
    deliver:
        Downstream callback invoked when a packet finishes serializing.
    min_rate_bps:
        Floor applied to ``rate_fn`` output to avoid division blow-ups
        when the channel model reports a dead zone; genuine outages
        should use :meth:`set_up` instead.
    """

    def __init__(
        self,
        loop: EventLoop,
        rate_fn: RateFn,
        deliver: DeliverFn,
        *,
        buffer_bytes: int = 3_000_000,
        min_rate_bps: float = 10_000.0,
    ) -> None:
        if buffer_bytes <= 0:
            raise ValueError(f"buffer_bytes must be positive, got {buffer_bytes}")
        self._loop = loop
        self._rate_fn = rate_fn
        self._deliver = deliver
        self.buffer_bytes = buffer_bytes
        self.min_rate_bps = min_rate_bps
        self._queue: deque[Datagram] = deque()
        self._queued_bytes = 0
        self._busy = False
        self._up = True
        #: The single datagram currently serializing (``_busy`` guards
        #: exclusivity), kept on the instance so the per-packet finish
        #: event is a bound method instead of a fresh closure.
        self._inflight: Datagram | None = None
        self.stats = LinkStats()

    @property
    def queued_bytes(self) -> int:
        """Bytes currently waiting in the buffer (excludes in-flight)."""
        return self._queued_bytes

    @property
    def queue_length(self) -> int:
        """Packets currently waiting in the buffer."""
        return len(self._queue)

    @property
    def is_up(self) -> bool:
        """Whether the radio is currently able to transmit."""
        return self._up

    def queuing_delay_estimate(self) -> float:
        """Approximate sojourn time of a packet entering the queue now."""
        rate = max(self._rate_fn(self._loop.now), self.min_rate_bps)
        return bytes_to_bits(self._queued_bytes) / rate

    def set_up(self, up: bool) -> None:
        """Raise or silence the link (handover execution windows).

        Packets already being serialized complete; queued packets wait
        until the link comes back up.
        """
        was_up = self._up
        self._up = up
        if up and not was_up:
            self._maybe_start()

    def send(self, datagram: Datagram) -> None:
        """Enqueue ``datagram``, dropping it if the buffer is full."""
        self.stats.enqueued += 1
        if self._queued_bytes + datagram.size_bytes > self.buffer_bytes:
            self.stats.dropped_overflow += 1
            return
        self._queue.append(datagram)
        self._queued_bytes += datagram.size_bytes
        self._maybe_start()

    def _maybe_start(self) -> None:
        if self._busy or not self._up or not self._queue:
            return
        datagram = self._queue.popleft()
        self._queued_bytes -= datagram.size_bytes
        rate = max(self._rate_fn(self._loop.now), self.min_rate_bps)
        duration = bytes_to_bits(datagram.size_bytes) / rate
        self._busy = True
        self._inflight = datagram
        self._loop.schedule_later(duration, self._finish)

    def _finish(self) -> None:
        datagram = self._inflight
        self._inflight = None
        self._busy = False
        self.stats.delivered += 1
        self.stats.bytes_delivered += datagram.size_bytes
        self._deliver(datagram)
        self._maybe_start()


class DelayLine:
    """Fixed propagation delay plus optional random jitter.

    Delivery order is enforced FIFO: jitter can stretch gaps between
    packets but never reorders them, matching the in-order delivery of
    a single LTE bearer plus WAN path. Because arrivals are monotone,
    in-flight datagrams live in a FIFO deque and every delivery event
    is the same bound method — no per-packet closure — and the jitter
    draws come from a :class:`~repro.util.rng.BatchedNormal` block
    buffer (bit-identical to scalar draws on the same stream).
    """

    def __init__(
        self,
        loop: EventLoop,
        deliver: DeliverFn,
        *,
        base_delay: float,
        jitter_std: float = 0.0,
        rng: np.random.Generator | None = None,
        jitter: BatchedNormal | None = None,
    ) -> None:
        if base_delay < 0:
            raise ValueError(f"base_delay must be non-negative, got {base_delay}")
        if jitter_std < 0:
            raise ValueError(f"jitter_std must be non-negative, got {jitter_std}")
        if jitter_std > 0 and rng is None and jitter is None:
            raise ValueError("rng is required when jitter_std > 0")
        self._loop = loop
        self._deliver = deliver
        self.base_delay = base_delay
        self.jitter_std = jitter_std
        # ``jitter`` lets a seed-sweep batch hand in a draw buffer
        # preloaded for the whole run (one block refill per sweep,
        # same stream, same values — see SweepDrawPlan).
        if jitter is not None:
            self._jitter = jitter
        else:
            self._jitter = BatchedNormal(rng) if rng is not None else None
        self._inflight: deque[Datagram] = deque()
        self._last_delivery = -1.0
        self.stats = LinkStats()

    def send(self, datagram: Datagram) -> None:
        """Deliver ``datagram`` after the propagation delay."""
        self.stats.enqueued += 1
        delay = self.base_delay
        if self.jitter_std > 0 and self._jitter is not None:
            # half-normal jitter: the floor is the physical minimum
            delay += abs(self._jitter.normal(0.0, self.jitter_std))
        arrival = max(self._loop.now + delay, self._last_delivery)
        self._last_delivery = arrival
        self._inflight.append(datagram)
        self._loop.schedule_at(arrival, self._finish)

    def _finish(self) -> None:
        datagram = self._inflight.popleft()
        self.stats.delivered += 1
        self.stats.bytes_delivered += datagram.size_bytes
        self._deliver(datagram)
