"""Transport-level datagram abstraction.

The simulator moves :class:`Datagram` objects instead of raw bytes: a
datagram records its size (which drives serialization and queueing
delay), the time it entered the network, and an opaque payload — an
RTP packet, an RTCP feedback packet, or a probe. Components along the
path annotate the datagram so that end-host metrics can be derived
without global state.

:class:`Datagram` is a hand-rolled ``__slots__`` class rather than a
dataclass: one instance is allocated per packet (10^5-10^6 per run),
so the per-instance ``__dict__`` and the ``default_factory`` call of
the dataclass version were measurable. Unique ids come from a plain
module counter that :func:`reset_datagram_ids` rewinds at session
start, so uid-based logs are identical between a fresh interpreter
and a warm campaign worker.
"""

from __future__ import annotations

from typing import Any

#: Overhead added on the wire on top of the application payload:
#: 20 (IP) + 8 (UDP) bytes. RTP header overhead is accounted for by the
#: packetizer, which sizes RTP packets explicitly.
IP_UDP_OVERHEAD_BYTES = 28

_next_uid = 0


def reset_datagram_ids() -> None:
    """Rewind the uid counter (called at the start of every session).

    Uids are only required to be unique *within* one simulated
    session. Resetting per session keeps uid-based logs reproducible
    in long-lived processes: a warm campaign worker that has already
    simulated hundreds of runs hands out the same uids as a fresh
    interpreter.
    """
    global _next_uid
    _next_uid = 0


class Datagram:
    """A single UDP datagram in flight.

    Attributes
    ----------
    size_bytes:
        On-the-wire size including IP/UDP headers.
    payload:
        Opaque upper-layer object (e.g. :class:`repro.rtp.RtpPacket`).
    sent_at:
        Simulated time the sender handed the datagram to the network.
    received_at:
        Filled in on delivery; ``None`` while in flight or when lost.
    uid:
        Monotone unique id (per session), handy for logging and loss
        accounting.
    """

    __slots__ = ("size_bytes", "payload", "sent_at", "received_at", "uid")

    def __init__(
        self,
        size_bytes: int,
        payload: Any = None,
        sent_at: float = 0.0,
        received_at: float | None = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"datagram size must be positive, got {size_bytes}")
        global _next_uid
        _next_uid += 1
        self.uid = _next_uid
        self.size_bytes = size_bytes
        self.payload = payload
        self.sent_at = sent_at
        self.received_at = received_at

    @property
    def one_way_delay(self) -> float:
        """Network one-way delay in seconds; ``nan`` until delivered."""
        if self.received_at is None:
            return float("nan")
        return self.received_at - self.sent_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Datagram(uid={self.uid}, size_bytes={self.size_bytes}, "
            f"sent_at={self.sent_at}, received_at={self.received_at}, "
            f"payload={self.payload!r})"
        )
