"""Transport-level datagram abstraction.

The simulator moves :class:`Datagram` objects instead of raw bytes: a
datagram records its size (which drives serialization and queueing
delay), the time it entered the network, and an opaque payload — an
RTP packet, an RTCP feedback packet, or a probe. Components along the
path annotate the datagram so that end-host metrics can be derived
without global state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_DATAGRAM_IDS = itertools.count(1)

#: Overhead added on the wire on top of the application payload:
#: 20 (IP) + 8 (UDP) bytes. RTP header overhead is accounted for by the
#: packetizer, which sizes RTP packets explicitly.
IP_UDP_OVERHEAD_BYTES = 28


@dataclass
class Datagram:
    """A single UDP datagram in flight.

    Attributes
    ----------
    size_bytes:
        On-the-wire size including IP/UDP headers.
    payload:
        Opaque upper-layer object (e.g. :class:`repro.rtp.RtpPacket`).
    sent_at:
        Simulated time the sender handed the datagram to the network.
    received_at:
        Filled in on delivery; ``None`` while in flight or when lost.
    uid:
        Monotone unique id, handy for logging and loss accounting.
    """

    size_bytes: int
    payload: Any
    sent_at: float = 0.0
    received_at: float | None = None
    uid: int = field(default_factory=lambda: next(_DATAGRAM_IDS))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"datagram size must be positive, got {self.size_bytes}")

    @property
    def one_way_delay(self) -> float:
        """Network one-way delay in seconds; ``nan`` until delivered."""
        if self.received_at is None:
            return float("nan")
        return self.received_at - self.sent_at
