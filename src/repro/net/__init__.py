"""Discrete-event engine and generic network-path primitives."""

from repro.net.simulator import EventLoop, EventHandle, PeriodicTimer
from repro.net.packet import Datagram, IP_UDP_OVERHEAD_BYTES
from repro.net.links import CapacityLink, DelayLine, LinkStats
from repro.net.loss import (
    LossModel,
    NoLoss,
    BernoulliLoss,
    GilbertElliottLoss,
)
from repro.net.path import NetworkPath

__all__ = [
    "EventLoop",
    "EventHandle",
    "PeriodicTimer",
    "Datagram",
    "IP_UDP_OVERHEAD_BYTES",
    "CapacityLink",
    "DelayLine",
    "LinkStats",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "GilbertElliottLoss",
    "NetworkPath",
]
