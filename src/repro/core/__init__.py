"""Public API: scenario configuration and session execution."""

from repro.core.config import (
    ScenarioConfig,
    Environment,
    Platform,
    CcAlgorithm,
    STATIC_BITRATE,
    MIN_BITRATE,
    MAX_BITRATE,
)
from repro.core.sender import VideoSender, SenderStats
from repro.core.receiver import VideoReceiver, PacketLogEntry
from repro.core.session import (
    SessionHandles,
    SessionResult,
    build_controller,
    build_session,
    run_session,
)
from repro.core.fleet import FleetConfig, FleetResult, run_fleet

__all__ = [
    "ScenarioConfig",
    "Environment",
    "Platform",
    "CcAlgorithm",
    "STATIC_BITRATE",
    "MIN_BITRATE",
    "MAX_BITRATE",
    "VideoSender",
    "SenderStats",
    "VideoReceiver",
    "PacketLogEntry",
    "SessionHandles",
    "SessionResult",
    "run_session",
    "build_session",
    "build_controller",
    "FleetConfig",
    "FleetResult",
    "run_fleet",
]
