"""Multi-session fleet engine: N RPAVs sharing one cellular layout.

The paper measured a single UAV that had every cell to itself; this
module hosts N sender/receiver sessions on **one** event loop, over
**one** cell layout, attached to **one** shared-cell PRB scheduler
(:class:`repro.cellular.cell.CellContention`) — so fleet members
compete for the same radio resources, crowded cells shed UEs through
load-balancing offsets, and per-session QoE degrades with fleet
density (the "what if everyone flew one of these" axis the
measurement study could not reach).

Determinism and the PR-4 bit-identity discipline:

* session ``i`` runs with seed ``base.seed + i * seed_stride``, so
  session 0 of a fleet draws exactly the random streams of the
  single-session path;
* the shared layout is derived from the base seed's ``"layout"``
  stream — the same layout ``run_session(base)`` builds;
* a fleet of N=1 leaves every scheduler share at exactly 1.0 and
  every load-balancing offset at 0.0, making :func:`run_fleet`
  packet-for-packet identical to :func:`repro.core.session.run_session`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.cellular.batch import install_fleet_plans
from repro.cellular.cell import (
    CellCapacityConfig,
    CellContention,
    ScalarCellContention,
    normalize_cell_map,
)
from repro.cellular.channel import MEASUREMENT_PERIOD
from repro.cellular.operators import get_profile
from repro.core.config import ScenarioConfig
from repro.core.session import (
    SessionHandles,
    SessionResult,
    build_session,
    build_trajectory,
)
from repro.flight.trajectory import TranslatedTrajectory
from repro.net.packet import reset_datagram_ids
from repro.net.simulator import EventLoop
from repro.obs import (
    NULL_RECORDER,
    FleetMetricsPlane,
    NullRecorder,
    ObsLevel,
    Recorder,
    diagnose,
    trace_to_dicts,
)
from repro.util.rng import RngStreams


@dataclass(frozen=True)
class FleetConfig:
    """One fleet run: N sessions sharing a layout and PRB budgets.

    Parameters
    ----------
    base:
        Scenario of session 0 (and, seed/placement aside, of every
        session). Duration, operator, environment, CC, bitrates are
        fleet-wide.
    num_sessions:
        Fleet size N.
    seed_stride:
        Seed spacing between sessions (session ``i`` uses
        ``base.seed + i * seed_stride``).
    spread_radius:
        Horizontal radius (m) of the deterministic ring that offsets
        the trajectories of sessions 1..N-1 around session 0's route.
        Small radii keep the fleet inside one serving cell (maximum
        contention); session 0 always flies the unmodified route.
    cell_capacity:
        Shared per-cell PRB budget / admission / load-balancing knobs.
    trace_members:
        Member indices sampled for **full tracing**: each listed
        member runs with its own :class:`~repro.obs.Recorder` on
        per-tick scalar draws (the reference code path a diagnose
        trace expects to observe), while the rest of the fleet stays
        on the vectorized plan. Bit-identity is preserved — the
        shared ticker still fires every member in session order —
        and the sampled traces land in
        ``result.extra["member_traces"]``.
    """

    base: ScenarioConfig
    num_sessions: int = 2
    seed_stride: int = 1000
    spread_radius: float = 150.0
    cell_capacity: CellCapacityConfig = field(default_factory=CellCapacityConfig)
    trace_members: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.num_sessions < 1:
            raise ValueError("num_sessions must be >= 1")
        if self.seed_stride < 1:
            raise ValueError("seed_stride must be >= 1")
        if self.spread_radius < 0.0:
            raise ValueError("spread_radius must be >= 0")
        members = tuple(sorted(set(int(m) for m in self.trace_members)))
        for member in members:
            if not 0 <= member < self.num_sessions:
                raise ValueError(
                    f"trace_members index {member} out of range for a "
                    f"{self.num_sessions}-session fleet"
                )
        object.__setattr__(self, "trace_members", members)


@dataclass
class FleetResult:
    """Artifacts of one fleet run."""

    config: FleetConfig
    #: Per-session datasets, in session order (session 0 == base seed).
    sessions: list[SessionResult]
    #: Final attached-session count per occupied cell.
    occupancy: dict[int, int]
    #: Highest concurrent attachment count ever seen per cell.
    peak_occupancy: dict[int, int]
    #: Simulated seconds each session spent PRB-share-congested.
    congestion_time: list[float]
    #: Fleet-wide merged snapshot (``metrics`` / ``diagnosis`` when a
    #: recorder was attached) — shaped like ``SessionResult.extra`` so
    #: campaign runners merge fleet results exactly like session ones.
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Cell-id maps may arrive from a JSON round-trip (report
        # exports, history artifacts) with stringified int keys;
        # normalize on construction so merges never double-count.
        self.occupancy = normalize_cell_map(self.occupancy)
        self.peak_occupancy = normalize_cell_map(self.peak_occupancy)

    @property
    def max_sessions_per_cell(self) -> int:
        """Peak contention actually reached anywhere in the layout."""
        return max(self.peak_occupancy.values(), default=0)


def _declare_fleet_obs_names(obs) -> None:
    """RPL008 declaration twin for names written via the registry.

    ``run_fleet`` emits these gauges at collect time — registry writes
    on the trace tier, hand-built snapshot records on the plane tiers
    (there is no live recorder there) — so the static trace-schema
    scan cannot see them at the real write sites. Never called.
    """
    obs.gauge("fleet/occupancy", 0.0)
    obs.gauge("fleet/peak_occupancy", 0.0)


def _ring_offset(index: int, count: int, radius: float) -> tuple[float, float]:
    """Deterministic placement of fleet member ``index`` (1-based ring)."""
    if index == 0 or radius == 0.0 or count <= 1:
        return 0.0, 0.0
    angle = 2.0 * math.pi * (index - 1) / (count - 1)
    return radius * math.cos(angle), radius * math.sin(angle)


def run_fleet(
    config: FleetConfig,
    *,
    recorder: NullRecorder | None = None,
    obs: "ObsLevel | str | bool | None" = None,
    fast: bool = True,
) -> FleetResult:
    """Execute one fleet run and collect every session's dataset.

    All sessions share a single event loop, the base seed's cell
    layout, and one :class:`CellContention`.

    Observability is tiered through ``obs`` (an
    :class:`~repro.obs.ObsLevel` or its string/bool spellings):

    * ``off`` — nothing recorded, zero overhead (the default).
    * ``metrics`` — the **fast-path tier**: sessions stay completely
      uninstrumented (packet logs bit-identical to ``off``) and a
      :class:`~repro.obs.FleetMetricsPlane` accumulates per-member
      goodput/PRB-share/SINR histograms and congestion counters from
      the shared ticker's struct-of-arrays state, one vectorized
      ingest per tick. The folded registry snapshot lands in
      ``result.extra["metrics"]`` alongside per-cell occupancy gauges
      and the ``obs_overhead`` self-accounting.
    * ``trace`` — the legacy full tier: one shared
      :class:`~repro.obs.Recorder` bound to the loop sees every
      session's spans, and the fleet-wide diagnosis lands in
      ``result.extra["diagnosis"]`` exactly like a session's would.

    Passing a ``recorder`` explicitly keeps its historical meaning
    (the instance is shared by every session and wins over ``obs``).
    Independently, ``config.trace_members`` samples k members for
    diagnose-quality tracing from inside a vectorized fleet: each
    sampled member runs a private recorder on per-tick scalar draws
    while the rest keep their plans (see
    :func:`~repro.cellular.batch.install_fleet_plans`), and the
    sampled traces land in ``result.extra["member_traces"]``.
    ``trace_members`` cannot combine with the ``trace`` tier — the
    shared recorder already covers every member.

    ``fast`` selects the fleet-scale fast path (the default): the
    vectorized struct-of-arrays :class:`CellContention` plus
    whole-horizon tick plans shared across members
    (:func:`~repro.cellular.batch.install_fleet_plans` — one block RNG
    refill per stream instead of per-tick draws, translated-trajectory
    geometry shared through the base-position cache). ``fast=False``
    runs the reference path — the dict/loop
    :class:`ScalarCellContention` and per-tick draws — which the
    fingerprint suite pins packet-for-packet equal to the fast path
    and ``benchmarks/test_fleet_scale.py`` uses as the speedup
    baseline. The metrics plane ingests the identical per-tick rows
    on both arms (live channel state vs. recorded samples), so even
    the metrics snapshots are bit-identical across ``fast``. Ring
    members fly :class:`~repro.flight.trajectory.TranslatedTrajectory`
    copies of the base route in either mode (the translation applies
    after interpolation), and member 0 always flies the unmodified
    route, so an N=1 fleet stays bit-identical to
    :func:`repro.core.session.run_session` on both arms.
    """
    level = ObsLevel.coerce(obs)
    if recorder is not None:
        shared: NullRecorder = recorder
        level = getattr(recorder, "level", ObsLevel.TRACE)
    elif level is ObsLevel.TRACE:
        shared = Recorder(measure_overhead=True)
    else:
        # metrics tier: sessions stay uninstrumented — the plane
        # carries the per-member metrics off the SoA tick state.
        shared = NULL_RECORDER
    if config.trace_members and level is ObsLevel.TRACE:
        raise ValueError(
            "trace_members cannot combine with trace-level fleet obs: "
            "the shared recorder already traces every member"
        )
    obs_active = level is not ObsLevel.OFF or bool(config.trace_members)
    if obs_active:
        # Wall-clock self-accounting only (obs.overhead); never
        # reaches sim state.
        timer = time.perf_counter  # repro-lint: ignore[RPL001]  # overhead self-metric
        wall_start = timer()
    reset_datagram_ids()
    loop = EventLoop()
    if isinstance(shared, Recorder):
        shared.bind(loop)
    base = config.base
    profile = get_profile(base.operator, base.environment.value)
    layout = profile.build_layout(RngStreams(base.seed).derive("layout"))
    contention_cls = CellContention if fast else ScalarCellContention
    contention = contention_cls(len(layout), config.cell_capacity)
    plane = (
        FleetMetricsPlane(
            config.num_sessions,
            congestion_share=config.cell_capacity.congestion_share,
            tick_period=MEASUREMENT_PERIOD,
        )
        if level is ObsLevel.METRICS
        else None
    )

    member_recorders: dict[int, Recorder] = {}
    handles: list[SessionHandles] = []
    for index in range(config.num_sessions):
        session_config = base.with_overrides(
            seed=base.seed + index * config.seed_stride
        )
        trajectory = build_trajectory(
            session_config, RngStreams(session_config.seed)
        )
        dx, dy = _ring_offset(
            index, config.num_sessions, config.spread_radius
        )
        if dx != 0.0 or dy != 0.0:
            trajectory = TranslatedTrajectory(trajectory, dx, dy)
        session_obs = shared
        if index in config.trace_members:
            _obs = Recorder(measure_overhead=True)
            _obs.bind(loop)
            _obs.event(
                "fleet.member_sample",
                t=0.0,
                member=index,
                seed=session_config.seed,
            )
            member_recorders[index] = _obs
            session_obs = _obs
        handles.append(
            build_session(
                loop,
                session_config,
                obs=session_obs,
                layout=layout,
                trajectory=trajectory,
                contention=contention,
                ue_id=index,
            )
        )

    channels = [handle.channel for handle in handles]
    if fast:
        install_fleet_plans(
            channels,
            base.duration,
            exclude=config.trace_members,
            plane=plane,
        )
    for handle in handles:
        handle.start()
    if fast and plane is not None:
        # Tick 0 ran synchronously inside start(); the ticker only
        # fires from tick 1, so the plane ingests the first tick here.
        plane.observe_channels(channels)
    loop.run_until(base.duration)
    for handle in handles:
        handle.stop()
    for handle in handles:
        handle.finish(loop.now)
    if not fast and plane is not None:
        # Scalar arm: replay the recorded samples through the same
        # per-tick ingest op, so the snapshot is bit-identical to the
        # live arm's.
        plane.observe_samples([ch.samples for ch in channels])

    sessions = [handle.collect() for handle in handles]
    extra: dict = {}
    if obs_active:
        recording_s = plane.overhead_s if plane is not None else 0.0
        if isinstance(shared, Recorder):
            recording_s += shared.overhead_s
            registry = shared.registry
            if plane is not None:
                plane.fold_into(registry)
            for cell, count in sorted(contention.occupancy().items()):
                registry.gauge("fleet/occupancy", cell=cell).set(count)
            for cell, count in sorted(contention.peak_attached.items()):
                registry.gauge("fleet/peak_occupancy", cell=cell).set(count)
            metrics_records = registry.snapshot()
        else:
            # Fast collect for the plane tiers: the registry here would
            # hold nothing but the plane fold plus the occupancy gauges,
            # so build the snapshot records directly (same format, same
            # sort) and skip the fold + re-snapshot round trip — it is
            # pure fixed cost on the hot campaign path.
            metrics_records = plane.snapshot() if plane is not None else []
            for name, counts in (
                ("fleet/occupancy", contention.occupancy()),
                ("fleet/peak_occupancy", dict(contention.peak_attached)),
            ):
                for cell, count in sorted(counts.items()):
                    metrics_records.append({
                        "kind": "gauge", "name": name,
                        "labels": {"cell": cell}, "value": float(count),
                        "max": float(count), "updates": 1,
                    })
            metrics_records.sort(
                key=lambda r: (r["name"], sorted(r["labels"].items()))
            )
        if member_recorders:
            extra["trace_members"] = list(member_recorders)
            extra["member_traces"] = {}
            for index, member_recorder in member_recorders.items():
                recording_s += member_recorder.overhead_s
                extra["member_traces"][str(index)] = {
                    "trace": trace_to_dicts(member_recorder.trace),
                    "metrics": member_recorder.registry.snapshot(),
                    "diagnosis": diagnose(
                        member_recorder.trace, member_recorder.registry
                    ).to_dict(),
                }
        # The overhead share is wall-clock and therefore run-dependent;
        # it travels only in ``extra`` — never in the registry, whose
        # snapshots must merge identically whatever the worker count.
        wall_s = timer() - wall_start
        share = recording_s / wall_s if wall_s > 0.0 else 0.0
        extra["metrics"] = metrics_records
        if isinstance(shared, Recorder) and shared.level is ObsLevel.TRACE:
            extra["diagnosis"] = diagnose(shared.trace, shared.registry).to_dict()
        extra["obs_overhead"] = {
            "recording_s": recording_s,
            "wall_s": wall_s,
            "share": share,
        }
    return FleetResult(
        config=config,
        sessions=sessions,
        occupancy=contention.occupancy(),
        peak_occupancy=dict(contention.peak_attached),
        congestion_time=[h.channel.congestion_time for h in handles],
        extra=extra,
    )
