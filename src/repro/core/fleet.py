"""Multi-session fleet engine: N RPAVs sharing one cellular layout.

The paper measured a single UAV that had every cell to itself; this
module hosts N sender/receiver sessions on **one** event loop, over
**one** cell layout, attached to **one** shared-cell PRB scheduler
(:class:`repro.cellular.cell.CellContention`) — so fleet members
compete for the same radio resources, crowded cells shed UEs through
load-balancing offsets, and per-session QoE degrades with fleet
density (the "what if everyone flew one of these" axis the
measurement study could not reach).

Determinism and the PR-4 bit-identity discipline:

* session ``i`` runs with seed ``base.seed + i * seed_stride``, so
  session 0 of a fleet draws exactly the random streams of the
  single-session path;
* the shared layout is derived from the base seed's ``"layout"``
  stream — the same layout ``run_session(base)`` builds;
* a fleet of N=1 leaves every scheduler share at exactly 1.0 and
  every load-balancing offset at 0.0, making :func:`run_fleet`
  packet-for-packet identical to :func:`repro.core.session.run_session`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cellular.batch import install_fleet_plans
from repro.cellular.cell import (
    CellCapacityConfig,
    CellContention,
    ScalarCellContention,
    normalize_cell_map,
)
from repro.cellular.operators import get_profile
from repro.core.config import ScenarioConfig
from repro.core.session import (
    SessionHandles,
    SessionResult,
    build_session,
    build_trajectory,
)
from repro.flight.trajectory import TranslatedTrajectory
from repro.net.packet import reset_datagram_ids
from repro.net.simulator import EventLoop
from repro.obs import NULL_RECORDER, NullRecorder, Recorder, diagnose
from repro.util.rng import RngStreams


@dataclass(frozen=True)
class FleetConfig:
    """One fleet run: N sessions sharing a layout and PRB budgets.

    Parameters
    ----------
    base:
        Scenario of session 0 (and, seed/placement aside, of every
        session). Duration, operator, environment, CC, bitrates are
        fleet-wide.
    num_sessions:
        Fleet size N.
    seed_stride:
        Seed spacing between sessions (session ``i`` uses
        ``base.seed + i * seed_stride``).
    spread_radius:
        Horizontal radius (m) of the deterministic ring that offsets
        the trajectories of sessions 1..N-1 around session 0's route.
        Small radii keep the fleet inside one serving cell (maximum
        contention); session 0 always flies the unmodified route.
    cell_capacity:
        Shared per-cell PRB budget / admission / load-balancing knobs.
    """

    base: ScenarioConfig
    num_sessions: int = 2
    seed_stride: int = 1000
    spread_radius: float = 150.0
    cell_capacity: CellCapacityConfig = field(default_factory=CellCapacityConfig)

    def __post_init__(self) -> None:
        if self.num_sessions < 1:
            raise ValueError("num_sessions must be >= 1")
        if self.seed_stride < 1:
            raise ValueError("seed_stride must be >= 1")
        if self.spread_radius < 0.0:
            raise ValueError("spread_radius must be >= 0")


@dataclass
class FleetResult:
    """Artifacts of one fleet run."""

    config: FleetConfig
    #: Per-session datasets, in session order (session 0 == base seed).
    sessions: list[SessionResult]
    #: Final attached-session count per occupied cell.
    occupancy: dict[int, int]
    #: Highest concurrent attachment count ever seen per cell.
    peak_occupancy: dict[int, int]
    #: Simulated seconds each session spent PRB-share-congested.
    congestion_time: list[float]
    #: Fleet-wide merged snapshot (``metrics`` / ``diagnosis`` when a
    #: recorder was attached) — shaped like ``SessionResult.extra`` so
    #: campaign runners merge fleet results exactly like session ones.
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Cell-id maps may arrive from a JSON round-trip (report
        # exports, history artifacts) with stringified int keys;
        # normalize on construction so merges never double-count.
        self.occupancy = normalize_cell_map(self.occupancy)
        self.peak_occupancy = normalize_cell_map(self.peak_occupancy)

    @property
    def max_sessions_per_cell(self) -> int:
        """Peak contention actually reached anywhere in the layout."""
        return max(self.peak_occupancy.values(), default=0)


def _ring_offset(index: int, count: int, radius: float) -> tuple[float, float]:
    """Deterministic placement of fleet member ``index`` (1-based ring)."""
    if index == 0 or radius == 0.0 or count <= 1:
        return 0.0, 0.0
    angle = 2.0 * math.pi * (index - 1) / (count - 1)
    return radius * math.cos(angle), radius * math.sin(angle)


def run_fleet(
    config: FleetConfig,
    *,
    recorder: NullRecorder | None = None,
    fast: bool = True,
) -> FleetResult:
    """Execute one fleet run and collect every session's dataset.

    All sessions share a single event loop, the base seed's cell
    layout, and one :class:`CellContention`. An optional
    :class:`~repro.obs.Recorder` is bound to the shared loop and sees
    every session's spans (handover executions, capacity dips,
    ``cell.congestion`` episodes); the fleet-wide diagnosis lands in
    ``result.extra["diagnosis"]`` exactly like a session's would.

    ``fast`` selects the fleet-scale fast path (the default): the
    vectorized struct-of-arrays :class:`CellContention` plus
    whole-horizon tick plans shared across members
    (:func:`~repro.cellular.batch.install_fleet_plans` — one block RNG
    refill per stream instead of per-tick draws, translated-trajectory
    geometry shared through the base-position cache). ``fast=False``
    runs the reference path — the dict/loop
    :class:`ScalarCellContention` and per-tick draws — which the
    fingerprint suite pins packet-for-packet equal to the fast path
    and ``benchmarks/test_fleet_scale.py`` uses as the speedup
    baseline. Ring members fly
    :class:`~repro.flight.trajectory.TranslatedTrajectory` copies of
    the base route in either mode (the translation applies after
    interpolation), and member 0 always flies the unmodified route, so
    an N=1 fleet stays bit-identical to
    :func:`repro.core.session.run_session` on both arms.
    """
    obs = recorder if recorder is not None else NULL_RECORDER
    reset_datagram_ids()
    loop = EventLoop()
    if isinstance(obs, Recorder):
        obs.bind(loop)
    base = config.base
    profile = get_profile(base.operator, base.environment.value)
    layout = profile.build_layout(RngStreams(base.seed).derive("layout"))
    contention_cls = CellContention if fast else ScalarCellContention
    contention = contention_cls(len(layout), config.cell_capacity)

    handles: list[SessionHandles] = []
    for index in range(config.num_sessions):
        session_config = base.with_overrides(
            seed=base.seed + index * config.seed_stride
        )
        trajectory = build_trajectory(
            session_config, RngStreams(session_config.seed)
        )
        dx, dy = _ring_offset(
            index, config.num_sessions, config.spread_radius
        )
        if dx != 0.0 or dy != 0.0:
            trajectory = TranslatedTrajectory(trajectory, dx, dy)
        handles.append(
            build_session(
                loop,
                session_config,
                obs=obs,
                layout=layout,
                trajectory=trajectory,
                contention=contention,
                ue_id=index,
            )
        )

    if fast:
        install_fleet_plans(
            [handle.channel for handle in handles], base.duration
        )
    for handle in handles:
        handle.start()
    loop.run_until(base.duration)
    for handle in handles:
        handle.stop()
    for handle in handles:
        handle.finish(loop.now)

    sessions = [handle.collect() for handle in handles]
    extra: dict = {}
    if isinstance(obs, Recorder):
        extra["metrics"] = obs.registry.snapshot()
        extra["diagnosis"] = diagnose(obs.trace, obs.registry).to_dict()
    return FleetResult(
        config=config,
        sessions=sessions,
        occupancy=contention.occupancy(),
        peak_occupancy=dict(contention.peak_attached),
        congestion_time=[h.channel.congestion_time for h in handles],
        extra=extra,
    )
