"""Remote-pilot-side receiver: jitter buffer, decoder, player, feedback.

Mirrors the paper's AWS-hosted GStreamer player: incoming RTP packets
pass a 150 ms jitter buffer, are reassembled into frames, decoded and
played by the adaptive-speed player. In parallel, the transport layer
records per-packet arrivals and generates the RTCP feedback the
active congestion controller needs (TWCC for GCC every ~50 ms, RFC
8888 CCFB for SCReAM every 10 ms), shipped back over the downlink.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cc.base import CongestionController, FeedbackKind
from repro.net.packet import Datagram, IP_UDP_OVERHEAD_BYTES
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop, PeriodicTimer
from repro.obs import NULL_RECORDER, NullRecorder
from repro.obs.detect import EwmaZScore, WindowedStats
from repro.util.units import to_ms
from repro.rtp.ccfb import CcfbRecorder
from repro.rtp.jitter_buffer import JitterBuffer
from repro.rtp.packetizer import FrameAssembler
from repro.rtp.packets import RtpPacket
from repro.rtp.rtcp import ReceiverReport, RtcpAccountant, SenderReport
from repro.rtp.twcc import TwccRecorder

#: Interval between RFC 3550 receiver reports.
RECEIVER_REPORT_INTERVAL = 1.0
#: Sampling stride of the streaming OWD anomaly detector, seconds.
OWD_SAMPLE_INTERVAL = 0.05
from repro.video.decoder import DecoderModel
from repro.video.player import Player


@dataclass(slots=True)
class PacketLogEntry:
    """Per-packet transport log (the tcpdump equivalent)."""

    sequence: int
    sent_at: float
    received_at: float
    size_bytes: int
    frame_id: int


class VideoReceiver:
    """Receiver pipeline and RTCP feedback generator."""

    def __init__(
        self,
        loop: EventLoop,
        controller: CongestionController,
        downlink: NetworkPath,
        *,
        ssrc: int = 0x1234,
        fps: float = 30.0,
        jitter_buffer_latency: float = 0.150,
        drop_on_latency: bool = False,
        decoder: DecoderModel | None = None,
        scream_ack_window: int = 64,
        obs: NullRecorder = NULL_RECORDER,
    ) -> None:
        self._loop = loop
        self.obs = obs
        self.controller = controller
        self.downlink = downlink
        self.decoder = decoder if decoder is not None else DecoderModel()
        self.player = Player(loop, fps=fps, obs=obs)
        #: Per-second delivery bins (bytes/packets -> goodput) and a
        #: streaming OWD-inflation detector (bufferbloat evidence for
        #: the attribution engine).
        self._window = WindowedStats(
            obs, "receiver.window",
            sums=("bytes", "packets"), maxes=("owd_max_ms",),
        )
        self._owd_anomaly = EwmaZScore(
            obs, "receiver.owd_anomaly", min_delta=50.0,
        )
        #: Next sim time at which the OWD anomaly detector samples.
        #: OWD inflation episodes last hundreds of milliseconds, so a
        #: 50 ms stride loses no detection power while cutting the
        #: per-packet traced cost to one float compare.
        self._owd_sample_at = 0.0
        self.assembler = FrameAssembler()
        self.jitter_buffer = JitterBuffer(
            loop,
            self._on_packet_released,
            latency=jitter_buffer_latency,
            drop_on_latency=drop_on_latency,
            obs=obs,
        )
        self.packet_log: list[PacketLogEntry] = []
        self._twcc: TwccRecorder | None = None
        self._ccfb: CcfbRecorder | None = None
        if controller.feedback_kind is FeedbackKind.TWCC:
            self._twcc = TwccRecorder()
        elif controller.feedback_kind is FeedbackKind.CCFB:
            self._ccfb = CcfbRecorder(ssrc, ack_window=scream_ack_window)
        self._feedback_timer: PeriodicTimer | None = None
        self.feedback_sent = 0
        self.accountant = RtcpAccountant(ssrc)
        self._rr_timer: PeriodicTimer | None = None
        #: Set by the session to route RFC 3550 RRs to the sender.
        self.on_receiver_report = None

    def start(self) -> None:
        """Arm the feedback and RFC 3550 report timers."""
        if self._rr_timer is not None:
            raise RuntimeError("receiver already started")
        self._rr_timer = PeriodicTimer(
            self._loop, RECEIVER_REPORT_INTERVAL, self._send_receiver_report
        )
        if self.controller.feedback_kind is FeedbackKind.NONE:
            return
        self._feedback_timer = PeriodicTimer(
            self._loop, self.controller.feedback_interval, self._send_feedback
        )

    def stop(self) -> None:
        """Stop generating feedback and reports; drain the pipeline.

        Flushing the jitter buffer cancels its scheduled release
        events, so a stopped receiver leaves the event loop clean.
        """
        if self._feedback_timer is not None:
            self._feedback_timer.stop()
        if self._rr_timer is not None:
            self._rr_timer.stop()
        self.jitter_buffer.flush()
        if self.obs.enabled:
            now = self._loop.now
            self.player.finish(now)
            self._window.finish(now)
            self._owd_anomaly.finish(now)

    def _send_receiver_report(self) -> None:
        if self.accountant.expected == 0:
            return
        report = ReceiverReport(
            ssrc=self.accountant.ssrc + 1,
            blocks=[self.accountant.build_block(self._loop.now)],
        )
        self.downlink.send(
            Datagram(
                size_bytes=report.wire_size + IP_UDP_OVERHEAD_BYTES,
                payload=report,
            )
        )

    # ------------------------------------------------------------------
    # uplink receive path
    # ------------------------------------------------------------------
    def on_datagram(self, datagram: Datagram) -> None:
        """Entry point wired to the uplink :class:`NetworkPath`."""
        packet = datagram.payload
        if isinstance(packet, SenderReport):
            self.accountant.on_sender_report(packet, self._loop.now)
            return
        if not isinstance(packet, RtpPacket):
            raise TypeError(f"unexpected payload {type(packet)!r}")
        now = self._loop.now
        self.accountant.on_packet(packet.sequence, packet.timestamp, now)
        self.packet_log.append(
            PacketLogEntry(
                sequence=packet.sequence,
                sent_at=datagram.sent_at,
                received_at=now,
                size_bytes=packet.wire_size,
                frame_id=packet.frame_id,
            )
        )
        if self._twcc is not None and packet.transport_seq is not None:
            self._twcc.on_packet(packet.transport_seq, now)
        if self._ccfb is not None:
            self._ccfb.on_packet(packet.sequence, now)
        if self.obs.enabled:
            owd_ms = to_ms(now - datagram.sent_at)
            self.obs.count("receiver/packets")
            self.obs.count("receiver/bytes", packet.wire_size)
            self.obs.observe("receiver/owd_ms", owd_ms)
            self._window.add(now, (float(packet.wire_size), 1.0), (owd_ms,))
            if now >= self._owd_sample_at:
                self._owd_anomaly.update(now, owd_ms)
                self._owd_sample_at = now + OWD_SAMPLE_INTERVAL
        self.jitter_buffer.push(packet, now)

    def _on_packet_released(self, packet: RtpPacket, when: float) -> None:
        for assembled in self.assembler.push(packet, when):
            decoded = self.decoder.decode(assembled, self._loop.now)
            self.player.push(decoded)

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def _send_feedback(self) -> None:
        now = self._loop.now
        payload = None
        if self._twcc is not None:
            payload = self._twcc.build_feedback()
        elif self._ccfb is not None:
            payload = self._ccfb.build_report(now)
        if payload is None:
            return
        self.feedback_sent += 1
        if self.obs.enabled:
            self.obs.count("receiver/feedback_sent")
        self.downlink.send(
            Datagram(
                size_bytes=payload.wire_size + IP_UDP_OVERHEAD_BYTES,
                payload=payload,
            )
        )

    def on_feedback_delivered(self, datagram: Datagram) -> None:
        """Entry point wired to the downlink path (sender side)."""
        payload = datagram.payload
        if isinstance(payload, ReceiverReport):
            if self.on_receiver_report is not None:
                self.on_receiver_report(payload, self._loop.now)
            return
        self.controller.on_feedback(payload, self._loop.now)
