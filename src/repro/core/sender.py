"""UAV-side sender pipeline: source -> encoder -> packetizer -> pacer.

Mirrors the paper's GStreamer sender: the source video is re-encoded
in real time at the target bitrate the congestion controller dictates,
split into RTP packets and sent over the LTE uplink. The pacer drains
the RTP send queue at the controller's pacing rate, subject to the
controller's window (SCReAM's cwnd); SCReAM additionally discards the
whole send queue when its head-of-line delay exceeds 100 ms — the
behaviour the paper credits for SCReAM's fast playback-latency
recovery *and* blames for the receiver-side sequence jumps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cc.base import CongestionController, SentPacket
from repro.net.packet import Datagram, IP_UDP_OVERHEAD_BYTES
from repro.net.path import NetworkPath
from repro.net.simulator import EventHandle, EventLoop, PeriodicTimer
from repro.obs import NULL_RECORDER, NullRecorder
from repro.obs.detect import EwmaZScore
from repro.util.units import bytes_to_bits, to_ms
from repro.rtp.packetizer import Packetizer
from repro.rtp.packets import RtpPacket, timestamp_for
from repro.rtp.rtcp import ReceiverReport, SenderReport, rtt_from_block
from repro.video.encoder import EncoderModel
from repro.video.source import SourceVideo

#: Interval between RTCP sender reports (RFC 3550 scaled for video).
SENDER_REPORT_INTERVAL = 1.0


@dataclass
class SenderStats:
    """Counters exposed for analysis and tests."""

    frames_encoded: int = 0
    packets_sent: int = 0
    bytes_sent: int = 0
    queue_discards: int = 0
    packets_discarded: int = 0


class VideoSender:
    """Encoder + RTP send queue + pacer, driven by a congestion controller."""

    def __init__(
        self,
        loop: EventLoop,
        source: SourceVideo,
        encoder: EncoderModel,
        controller: CongestionController,
        uplink: NetworkPath,
        *,
        ssrc: int = 0x1234,
        obs: NullRecorder = NULL_RECORDER,
    ) -> None:
        self._loop = loop
        self.obs = obs
        self.source = source
        self.encoder = encoder
        self.controller = controller
        self.uplink = uplink
        self.packetizer = Packetizer(
            ssrc,
            use_transport_seq=controller.uses_transport_seq,
        )
        self.ssrc = ssrc
        #: (packet, enqueue_time) FIFO awaiting pacing.
        self._queue: deque[tuple[RtpPacket, float]] = deque()
        self._queued_bytes = 0
        self._pacer_busy = False
        self.stats = SenderStats()
        self._frame_timer: PeriodicTimer | None = None
        self._sr_timer: PeriodicTimer | None = None
        #: Encode-latency events in flight, cancelled on stop so
        #: teardown leaves the event loop clean (cf. JitterBuffer).
        self._pending_events: set[EventHandle] = set()
        #: The pacer is strictly sequential (one outstanding
        #: ``_send_next`` at a time), so its event — by far the
        #: hottest in the sender — is a single reused handle and a
        #: bound method instead of a per-event closure in the tracked
        #: set above.
        self._pacer_handle: EventHandle | None = None
        #: (time, rtt) samples from RFC 3550 LSR/DLSR round trips —
        #: available for every workload, including static runs.
        self.rtt_samples: list[tuple[float, float]] = []
        #: Streaming detector for self-induced send-queue growth
        #: (queue-bloat evidence for the attribution engine).
        self._queue_anomaly = EwmaZScore(
            obs, "sender.queue_anomaly", min_delta=50.0,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin producing frames at the source frame rate."""
        if self._frame_timer is not None:
            raise RuntimeError("sender already started")
        self._frame_timer = PeriodicTimer(
            self._loop, self.source.frame_interval, self._on_frame_tick
        )
        self._sr_timer = PeriodicTimer(
            self._loop, SENDER_REPORT_INTERVAL, self._send_sender_report
        )

    def stop(self) -> None:
        """Stop frame production and cancel in-flight pacer/encode events.

        A stopped sender leaves the event loop clean, so
        ``EventLoop.pending()`` stays meaningful after teardown.
        """
        if self._frame_timer is not None:
            self._frame_timer.stop()
        if self._sr_timer is not None:
            self._sr_timer.stop()
        for handle in self._pending_events:
            handle.cancel()
        self._pending_events.clear()
        if self._pacer_handle is not None:
            self._pacer_handle.cancel()
            self._pacer_handle = None
        if self.obs.enabled:
            self._queue_anomaly.finish(self._loop.now)

    def _call_later(self, delay: float, callback) -> None:
        """Schedule ``callback``, tracking the handle for teardown."""
        handle: EventHandle

        def fire() -> None:
            self._pending_events.discard(handle)
            callback()

        handle = self._loop.call_later(delay, fire)
        self._pending_events.add(handle)

    def _send_sender_report(self) -> None:
        now = self._loop.now
        report = SenderReport(
            ssrc=self.ssrc,
            ntp_time=now,
            rtp_timestamp=timestamp_for(now),
            packet_count=self.stats.packets_sent,
            octet_count=self.stats.bytes_sent,
        )
        self.uplink.send(
            Datagram(
                size_bytes=report.wire_size + IP_UDP_OVERHEAD_BYTES,
                payload=report,
            )
        )

    def on_receiver_report(self, report: ReceiverReport, now: float) -> None:
        """Fold an RFC 3550 RR into the sender's RTT log."""
        for block in report.blocks:
            if block.ssrc != self.ssrc:
                continue
            rtt = rtt_from_block(block, now)
            if rtt is not None:
                self.rtt_samples.append((now, rtt))

    # ------------------------------------------------------------------
    # queue state
    # ------------------------------------------------------------------
    @property
    def queue_delay(self) -> float:
        """Age of the oldest queued RTP packet in seconds."""
        if not self._queue:
            return 0.0
        return self._loop.now - self._queue[0][1]

    @property
    def queued_bytes(self) -> int:
        """Bytes waiting in the RTP send queue."""
        return self._queued_bytes

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def _on_frame_tick(self) -> None:
        now = self._loop.now
        self.encoder.set_target_bitrate(self.controller.target_bitrate(now))
        frame = self.source.next_frame(now)
        encoded = self.encoder.encode(frame)
        self.stats.frames_encoded += 1
        if self.obs.enabled:
            self.obs.count("sender/frames_encoded")
            self.obs.gauge("sender/encoder_target_bps", self.encoder.target_bitrate)
        # The encoded frame becomes available after the encode latency.
        self._call_later(
            encoded.encode_latency, lambda: self._enqueue_frame_packets(encoded)
        )

    def _enqueue_frame_packets(self, encoded) -> None:
        now = self._loop.now
        self._maybe_discard_queue(now)
        for packet in self.packetizer.packetize(encoded, now):
            self._queue.append((packet, now))
            self._queued_bytes += packet.wire_size
        if self.obs.enabled:
            # Queue growth is a frame-timescale signal; sampling the
            # anomaly detector here (~fps Hz) instead of per sent
            # packet keeps the traced hot path cheap.
            self._queue_anomaly.update(now, to_ms(self.queue_delay))
        self._report_queue_state(now)
        self._pump()

    def _maybe_discard_queue(self, now: float) -> None:
        threshold = getattr(self.controller, "rtp_queue_discard_threshold", None)
        if threshold is None or not self._queue:
            return
        if now - self._queue[0][1] > threshold:
            self.stats.queue_discards += 1
            self.stats.packets_discarded += len(self._queue)
            if self.obs.enabled:
                self.obs.event(
                    "sender.queue_discard",
                    t=now,
                    packets=len(self._queue),
                    queued_bytes=self._queued_bytes,
                    head_age_ms=to_ms(now - self._queue[0][1]),
                )
                self.obs.count("sender/queue_discards")
                self.obs.count("sender/packets_discarded", len(self._queue))
            self._queue.clear()
            self._queued_bytes = 0

    def _report_queue_state(self, now: float) -> None:
        self.controller.on_queue_state(self.queue_delay, self._queued_bytes, now)

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self._pacer_busy:
            return
        self._send_next()

    def _schedule_send(self, delay: float) -> None:
        self._pacer_busy = True
        self._pacer_handle = self._loop.call_later(delay, self._send_next)

    def _send_next(self) -> None:
        self._pacer_handle = None
        self._pacer_busy = False
        if not self._queue:
            return
        now = self._loop.now
        packet, _ = self._queue[0]
        in_flight = getattr(self.controller, "bytes_in_flight", 0)
        if not self.controller.can_send(in_flight, packet.wire_size, now):
            # Window-blocked: poll again shortly (feedback will open it).
            self._schedule_send(0.002)
            return
        self._queue.popleft()
        self._queued_bytes -= packet.wire_size
        datagram = Datagram(
            size_bytes=packet.wire_size + IP_UDP_OVERHEAD_BYTES,
            payload=packet,
        )
        self.uplink.send(datagram)
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.wire_size
        if self.obs.enabled:
            self.obs.count("sender/packets_sent")
            self.obs.count("sender/bytes_sent", packet.wire_size)
            self.obs.observe("sender/queue_delay_ms", to_ms(self.queue_delay))
        self.controller.on_packet_sent(
            SentPacket(
                sequence=packet.sequence,
                transport_seq=packet.transport_seq,
                size_bytes=packet.wire_size,
                send_time=now,
                frame_id=packet.frame_id,
            ),
            now,
        )
        self._report_queue_state(now)
        rate = self.controller.pacing_rate(now)
        if rate == float("inf"):
            delay = 0.0
        else:
            delay = bytes_to_bits(packet.wire_size) / max(rate, 1e4)
        self._schedule_send(delay)
