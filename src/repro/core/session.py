"""Session assembly: build a full measurement run and execute it.

``run_session(config)`` is the library's main entry point. It wires

  trajectory -> cellular channel -> uplink/downlink paths
  source -> encoder -> packetizer -> pacer -> uplink
  uplink -> jitter buffer -> assembler -> decoder -> player
  receiver feedback -> downlink -> congestion controller

runs the event loop for the configured duration, and returns a
:class:`SessionResult` holding every log the paper's dataset contains
(per-packet transport log, per-frame playback records, CC state log,
RRC handover events, 1 Hz RSSI reports, capacity samples).

The assembly step is exposed separately as :func:`build_session`,
which returns live :class:`SessionHandles` without running the loop —
that is what lets :mod:`repro.core.fleet` host several sessions on
one shared event loop (shared cell layout, shared PRB scheduler)
while ``run_session`` stays the classic single-UE path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cc.base import CongestionController, StaticBitrateController
from repro.cc.gcc import GccController
from repro.cc.scream import ScreamController
from repro.cellular.cell import CellContention, fleet_demand_bps
from repro.cellular.channel import CapacitySample, CellularChannel, ChannelConfig, RssiReport
from repro.cellular.handover import HandoverEvent
from repro.cellular.layout import CellLayout
from repro.cellular.operators import get_profile
from repro.cellular.propagation import PropagationConfig
from repro.core.config import CcAlgorithm, Environment, Platform, ScenarioConfig
from repro.core.receiver import PacketLogEntry, VideoReceiver
from repro.core.sender import SenderStats, VideoSender
from repro.flight.trajectory import (
    WaypointTrajectory,
    ground_trajectory,
    paper_flight_trajectory,
)
from repro.net.loss import GilbertElliottLoss
from repro.net.packet import reset_datagram_ids
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop
from repro.obs import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    ObsLevel,
    Recorder,
    diagnose,
)
from repro.util.rng import RngStreams
from repro.video.encoder import EncoderModel
from repro.video.player import PlaybackRecord
from repro.video.source import SourceVideo


@dataclass
class SessionResult:
    """All artifacts of one simulated measurement run."""

    config: ScenarioConfig
    duration: float
    packet_log: list[PacketLogEntry]
    playback: list[PlaybackRecord]
    handovers: list[HandoverEvent]
    capacity_samples: list[CapacitySample]
    rssi_log: list[RssiReport]
    sender_stats: SenderStats
    cc_log: list = field(default_factory=list)
    cells_seen: int = 0
    packets_sent: int = 0
    packets_lost_radio: int = 0
    packets_dropped_buffer: int = 0
    frames_decoded: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def packet_loss_rate(self) -> float:
        """End-to-end fraction of sent packets that never arrived."""
        if self.packets_sent == 0:
            return 0.0
        delivered = len(self.packet_log)
        return max(0.0, 1.0 - delivered / self.packets_sent)


def build_controller(config: ScenarioConfig) -> CongestionController:
    """Instantiate the bitrate controller the config asks for."""
    if config.cc is CcAlgorithm.STATIC:
        return StaticBitrateController(config.effective_static_bitrate)
    if config.cc is CcAlgorithm.GCC:
        return GccController(
            initial_bitrate=config.min_bitrate,
            min_bitrate=config.min_bitrate,
            max_bitrate=config.max_bitrate,
        )
    if config.cc is CcAlgorithm.SCREAM:
        return ScreamController(
            initial_bitrate=config.min_bitrate,
            min_bitrate=config.min_bitrate,
            max_bitrate=config.max_bitrate,
        )
    raise ValueError(f"unknown cc {config.cc!r}")


def build_trajectory(
    config: ScenarioConfig, streams: RngStreams
) -> WaypointTrajectory:
    """Instantiate the platform trajectory for a run."""
    if config.platform is Platform.AIR:
        return paper_flight_trajectory()
    return ground_trajectory(
        duration=config.duration,
        rng=streams.derive("ground-route"),
    )


def build_channel_config(config: ScenarioConfig) -> ChannelConfig:
    """Channel behaviour knobs per environment, honouring overrides."""
    if config.environment is Environment.URBAN:
        channel_config = ChannelConfig(
            propagation=PropagationConfig.urban(),
            fading_std_air_db=1.5,
        )
    else:
        # Rural: fewer, more distant cells fluctuate less against each
        # other, so the aerial side-lobe churn is milder -> the lower
        # handover frequency of Fig. 4(a)'s rural boxplots. Capacity
        # fluctuations are slower (shadowing-scale) but proportionally
        # large at the low rural SNR.
        channel_config = ChannelConfig(
            propagation=PropagationConfig.rural(),
            air_fastfade_std_db=2.0,
            fading_std_air_db=1.8,
            fading_corr_time=0.6,
        )
    a3 = config.extra.get("a3")
    if a3 is not None:
        channel_config.a3 = a3
    het = config.extra.get("het")
    if het is not None:
        channel_config.het = het
    if config.extra.get("make_before_break"):
        channel_config.make_before_break = True
    return channel_config


@dataclass
class SessionHandles:
    """Live components of one assembled (but not yet run) session.

    Returned by :func:`build_session`; the owner drives the shared
    event loop and calls :meth:`start` / :meth:`stop` /
    :meth:`finish` / :meth:`collect` around it. ``run_session`` wraps
    exactly this sequence for the single-session case.
    """

    config: ScenarioConfig
    channel: CellularChannel
    uplink: NetworkPath
    downlink: NetworkPath
    sender: VideoSender
    receiver: VideoReceiver
    controller: CongestionController
    obs: NullRecorder

    def start(self) -> None:
        """Start channel ticks, sender pacing and receiver playback."""
        self.channel.start()
        self.sender.start()
        self.receiver.start()

    def stop(self) -> None:
        """Stop the media pipeline (after the loop has drained)."""
        self.sender.stop()
        self.receiver.stop()

    def finish(self, now: float) -> None:
        """Close streaming detectors / open spans at teardown."""
        if self.obs.enabled:
            self.uplink.finish_obs()
            self.downlink.finish_obs()
            self.channel.capacity_dip.finish(now)
            self.channel.finish_congestion(now)

    def collect(self) -> SessionResult:
        """Assemble the run's dataset into a :class:`SessionResult`.

        The per-run metrics/diagnosis snapshot is *not* attached here
        (a fleet diagnoses its shared recorder once); ``run_session``
        adds it for the single-session path.
        """
        channel = self.channel
        receiver = self.receiver
        sender = self.sender
        controller = self.controller
        extra: dict = {}
        if isinstance(controller, ScreamController):
            extra["false_loss_candidates"] = controller.false_loss_candidates
            extra["detected_losses"] = controller.detected_losses
        if isinstance(controller, GccController):
            extra["overuse_events"] = controller.overuse_events
        extra["ping_pong_handovers"] = channel.engine.ping_pong_count()
        extra["jitter_dropped_late"] = receiver.jitter_buffer.dropped_late_packets
        extra["rtt_samples"] = list(sender.rtt_samples)
        return SessionResult(
            config=self.config,
            duration=self.config.duration,
            packet_log=receiver.packet_log,
            playback=receiver.player.records,
            handovers=list(channel.engine.events),
            capacity_samples=channel.samples,
            rssi_log=channel.rssi_log,
            sender_stats=sender.stats,
            cc_log=controller.log,
            cells_seen=len(channel.cells_seen),
            packets_sent=sender.stats.packets_sent,
            packets_lost_radio=self.uplink.lost_packets,
            packets_dropped_buffer=self.uplink.capacity_link.stats.dropped_overflow,
            frames_decoded=receiver.decoder.frames_decoded,
            extra=extra,
        )


def build_session(
    loop: EventLoop,
    config: ScenarioConfig,
    *,
    obs: NullRecorder = NULL_RECORDER,
    layout: CellLayout | None = None,
    trajectory: WaypointTrajectory | None = None,
    contention: CellContention | None = None,
    ue_id: int = 0,
    draws: "dict | None" = None,
) -> SessionHandles:
    """Assemble one full sender/receiver session on ``loop``.

    ``layout`` / ``trajectory`` override the config-derived defaults
    (a fleet shares one layout and spreads trajectories);
    ``contention`` attaches the session's channel to a shared-cell
    PRB scheduler as UE ``ue_id``. With every override left at its
    default this builds exactly the classic single-session pipeline —
    :class:`~repro.util.rng.RngStreams` is stateless per label, so
    deriving the layout stream externally or not does not perturb any
    other stream.

    ``draws`` optionally maps the session's per-packet/per-frame
    stream labels (``"jitter-up"``, ``"jitter-down"``, ``"loss-up"``,
    ``"loss-down"``, ``"encoder"``) to pre-built draw buffers —
    typically the preloaded wrappers of a
    :class:`~repro.util.rng.SweepDrawPlan`, which refills all seeds
    of a sweep in one struct-of-arrays block per stream. Each wrapper
    serves the exact values the per-label derived stream would have
    produced, so a run with ``draws`` is bit-identical to one
    without.
    """
    if isinstance(obs, Recorder):
        # The diagnosis layer self-configures from the trace alone, so
        # the operating point travels inside it: SLO thresholds
        # (target bitrate, source fps) resolve identically whether the
        # trace is consumed live or re-imported from JSONL.
        obs.event(
            "session.config",
            t=0.0,
            label=config.label(),
            cc=config.cc.value,
            seed=config.seed,
            fps=config.fps,
            duration=config.duration,
            target_bps=(
                config.effective_static_bitrate
                if config.cc is CcAlgorithm.STATIC
                else config.min_bitrate
            ),
        )
    streams = RngStreams(config.seed)
    profile = get_profile(config.operator, config.environment.value)
    if layout is None:
        layout = profile.build_layout(streams.derive("layout"))
    if trajectory is None:
        trajectory = build_trajectory(config, streams)
    uplink_demand: float | None = None
    if contention is not None:
        uplink_demand = fleet_demand_bps(
            config.max_bitrate, config.effective_static_bitrate
        )
    channel = CellularChannel(
        loop,
        layout,
        profile,
        trajectory,
        streams.child("channel"),
        config=build_channel_config(config),
        horizon=config.duration,
        obs=obs,
        contention=contention,
        ue_id=ue_id,
        uplink_demand_bps=uplink_demand,
    )

    controller = build_controller(config)
    controller.obs = obs
    if config.cc is CcAlgorithm.SCREAM and "ramp_up_speed" in config.extra:
        controller.rate.ramp_up_speed = config.extra["ramp_up_speed"]

    receiver_holder: list[VideoReceiver] = []

    if draws is None:
        draws = {}
    jitter_up = draws.get("jitter-up")
    jitter_down = draws.get("jitter-down")
    uplink = NetworkPath(
        loop,
        channel.uplink_rate,
        lambda datagram: receiver_holder[0].on_datagram(datagram),
        base_delay=config.base_owd,
        jitter_std=config.owd_jitter_std,
        loss_model=GilbertElliottLoss.from_rate_and_burst(
            config.loss_rate,
            config.loss_mean_burst,
            None if "loss-up" in draws else streams.derive("loss-up"),
            uniform=draws.get("loss-up"),
        ),
        buffer_bytes=config.uplink_buffer_bytes,
        rng=None if jitter_up is not None else streams.derive("jitter-up"),
        jitter=jitter_up,
        obs=obs,
        name="uplink",
    )
    downlink = NetworkPath(
        loop,
        channel.downlink_rate,
        lambda datagram: receiver_holder[0].on_feedback_delivered(datagram),
        base_delay=config.base_owd,
        jitter_std=config.owd_jitter_std,
        loss_model=GilbertElliottLoss.from_rate_and_burst(
            config.loss_rate,
            config.loss_mean_burst,
            None if "loss-down" in draws else streams.derive("loss-down"),
            uniform=draws.get("loss-down"),
        ),
        buffer_bytes=config.downlink_buffer_bytes,
        rng=None if jitter_down is not None else streams.derive("jitter-down"),
        jitter=jitter_down,
        obs=obs,
        name="downlink",
    )
    channel.attach_path(uplink)
    channel.attach_path(downlink)

    source = SourceVideo(streams.derive("source"), fps=config.fps)
    encoder = EncoderModel(
        None if "encoder" in draws else streams.derive("encoder"),
        fps=config.fps,
        min_bitrate=config.min_bitrate,
        max_bitrate=config.max_bitrate,
        initial_bitrate=controller.target_bitrate(0.0),
        normal=draws.get("encoder"),
    )
    sender = VideoSender(loop, source, encoder, controller, uplink, obs=obs)
    receiver = VideoReceiver(
        loop,
        controller,
        downlink,
        fps=config.fps,
        jitter_buffer_latency=config.jitter_buffer_latency,
        drop_on_latency=config.jitter_buffer_drop_on_latency,
        scream_ack_window=config.scream_ack_window,
        obs=obs,
    )
    receiver_holder.append(receiver)
    receiver.on_receiver_report = sender.on_receiver_report
    return SessionHandles(
        config=config,
        channel=channel,
        uplink=uplink,
        downlink=downlink,
        sender=sender,
        receiver=receiver,
        controller=controller,
        obs=obs,
    )


def run_session(
    config: ScenarioConfig,
    *,
    recorder: NullRecorder | None = None,
    obs: "ObsLevel | str | bool | None" = None,
    draws: "dict | None" = None,
) -> SessionResult:
    """Execute one measurement run and collect its dataset.

    ``obs`` selects the observability tier (an
    :class:`~repro.obs.ObsLevel` or its string/bool spellings):
    ``metrics`` instruments the run with a
    :class:`~repro.obs.MetricsRecorder` — counters/gauges/histograms
    in ``result.extra["metrics"]``, no trace, no diagnosis pass, and
    the unit stays batchable in the campaign planner — while
    ``trace`` attaches a full :class:`~repro.obs.Recorder` (trace +
    metrics + the ``diagnosis`` extra). Either way the simulated
    outcome is bit-identical to an untraced run (recorders draw no
    random numbers and schedule no events), and the run's
    recording-time share lands in ``result.extra["obs_overhead"]``.
    Passing a ``recorder`` instance explicitly keeps its historical
    meaning and wins over ``obs``. ``draws`` forwards sweep-preloaded
    draw buffers to :func:`build_session` (bit-identical either way).
    """
    level = ObsLevel.coerce(obs)
    if recorder is not None:
        obs = recorder
    elif level is ObsLevel.TRACE:
        obs = Recorder(measure_overhead=True)
    elif level is ObsLevel.METRICS:
        obs = MetricsRecorder(measure_overhead=True)
    else:
        obs = NULL_RECORDER
    if obs.enabled:
        # Wall-clock self-accounting only (obs.overhead); never
        # reaches sim state.
        timer = time.perf_counter  # repro-lint: ignore[RPL001]  # overhead self-metric
        wall_start = timer()
    reset_datagram_ids()
    loop = EventLoop()
    if isinstance(obs, Recorder):
        obs.bind(loop)
    handles = build_session(loop, config, obs=obs, draws=draws)

    handles.start()
    loop.run_until(config.duration)
    handles.stop()
    handles.finish(loop.now)

    result = handles.collect()
    if isinstance(obs, Recorder):
        wall_s = timer() - wall_start
        if obs._timer is not None:
            # Overhead self-accounting rides only on recorders built
            # with measure_overhead=True (the ObsLevel tiers above) —
            # an explicitly passed legacy recorder keeps its exact
            # historical trace and extras.
            # Wall-clock and therefore run-dependent: the share stays
            # out of the registry (whose snapshots must merge
            # identically whatever the worker count) and travels via
            # ``extra`` and the trace event only.
            recording_s = obs.overhead_s
            share = recording_s / wall_s if wall_s > 0.0 else 0.0
            if obs.level is ObsLevel.TRACE:
                # The self-metric also lands on the trace, so exported
                # JSONL carries the run's recording cost with it.
                obs.event(
                    "obs.overhead",
                    t=config.duration,
                    recording_s=recording_s,
                    wall_s=wall_s,
                    share=share,
                )
            result.extra["obs_overhead"] = {
                "recording_s": recording_s,
                "wall_s": wall_s,
                "share": share,
            }
        # Per-run metric snapshot travels with the result record, so
        # campaign caches serve it without re-simulating and the
        # parent-side runner can merge registries across processes.
        result.extra["metrics"] = obs.registry.snapshot()
        if obs.level is ObsLevel.TRACE:
            # SLO violations + root-cause attributions, computed once
            # per run (post-loop, so zero in-loop cost) and shipped as
            # plain data: campaign runners merge the embedded summary
            # without re-running detection.
            result.extra["diagnosis"] = diagnose(
                obs.trace, obs.registry
            ).to_dict()
    return result
