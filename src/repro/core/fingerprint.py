"""Canonical run fingerprints for bit-identity gates.

The batched execution paths (:mod:`repro.cellular.batch`,
:mod:`repro.runner.batch`) promise *packet-for-packet* reproduction of
the scalar simulator — not statistical agreement, equality of every
logged float. These helpers reduce a run to a hashable tuple of
exactly the artifacts that promise covers, so equivalence tests and
CI gates compare one value instead of re-deriving field lists:

* :func:`session_fingerprint` — the full measurement dataset of a
  :class:`~repro.core.session.SessionResult` (per-packet transport
  log, playback records, handovers, capacity samples, counters);
* :func:`probe_fingerprint` — the channel-only dataset of a
  :class:`~repro.experiments.probes.ChannelProbeSeed`.

Floats are compared exactly (no tolerance): two runs either consumed
identical random draws through identical arithmetic or they did not.
"""

from __future__ import annotations

from typing import Any


def _handover_tuples(handovers: "list[Any]") -> tuple:
    return tuple(
        (
            event.time,
            event.source_cell,
            event.target_cell,
            event.execution_time,
            event.altitude,
        )
        for event in handovers
    )


def session_fingerprint(result: Any) -> tuple:
    """Exact-equality digest of one :class:`SessionResult`."""
    return (
        result.packets_sent,
        result.frames_decoded,
        result.cells_seen,
        result.packets_lost_radio,
        result.packets_dropped_buffer,
        tuple(
            (entry.sequence, entry.sent_at, entry.received_at, entry.size_bytes)
            for entry in result.packet_log
        ),
        tuple(
            (
                record.frame_id,
                record.play_time,
                record.encode_time,
                record.ssim,
                record.complete,
            )
            for record in result.playback
        ),
        _handover_tuples(result.handovers),
        tuple(
            (sample.time, sample.uplink_bps, sample.downlink_bps)
            for sample in result.capacity_samples
        ),
        result.extra.get("ping_pong_handovers"),
    )


def probe_fingerprint(probe: Any) -> tuple:
    """Exact-equality digest of one :class:`ChannelProbeSeed`."""
    return (
        tuple(probe.uplink_samples),
        tuple(probe.altitudes),
        _handover_tuples(probe.handovers),
        probe.cells_seen,
        probe.ping_pong,
    )
