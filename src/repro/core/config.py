"""Scenario configuration — the public entry point's vocabulary.

A :class:`ScenarioConfig` describes one measurement run the way the
paper parameterizes them: environment (urban/rural), platform (air =
UAV flight, ground = motorbike), operator (P1/P2), bitrate-control
method (gcc/scream/static) and a seed. Everything else has paper-
matched defaults but stays overridable for ablations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any


class Environment(enum.Enum):
    """Measurement area."""

    URBAN = "urban"
    RURAL = "rural"


class Platform(enum.Enum):
    """Whether the UE flies the Fig. 11 trajectory or drives on the ground."""

    AIR = "air"
    GROUND = "ground"


class CcAlgorithm(enum.Enum):
    """Bitrate-control method of the video workload."""

    GCC = "gcc"
    SCREAM = "scream"
    STATIC = "static"


#: Static bitrates the paper hand-picked per environment (Section 3.2).
STATIC_BITRATE = {
    Environment.URBAN: 25e6,
    Environment.RURAL: 8e6,
}

#: Encoder operating range (Section 3.2: 2-25 Mbps H.264).
MIN_BITRATE = 2e6
MAX_BITRATE = 25e6


@dataclass
class ScenarioConfig:
    """Full description of one simulated measurement run.

    Attributes mirror the paper's setup; see DESIGN.md for the
    mapping. ``extra`` carries ad-hoc overrides for ablation benches
    (e.g. A3 parameters) without widening this signature.
    """

    environment: Environment = Environment.URBAN
    platform: Platform = Platform.AIR
    operator: str = "P1"
    cc: CcAlgorithm = CcAlgorithm.STATIC
    seed: int = 1
    duration: float = 360.0  # one flight, ~6 min air time
    fps: float = 30.0
    static_bitrate: float | None = None  # default: paper value per env
    min_bitrate: float = MIN_BITRATE
    max_bitrate: float = MAX_BITRATE
    jitter_buffer_latency: float = 0.150
    jitter_buffer_drop_on_latency: bool = False
    scream_ack_window: int = 256  # the paper's mitigated setting
    base_owd: float = 0.018  # one-way WAN/core delay to AWS (s)
    owd_jitter_std: float = 0.0005
    uplink_buffer_bytes: int = 8_000_000  # deep LTE buffers (bufferbloat)
    # LTE downlink schedulers drain to the UE without the uplink's deep
    # bufferbloated queues; the feedback path only needs a shallow buffer.
    downlink_buffer_bytes: int = 3_000_000
    loss_rate: float = 0.00065  # paper: PER 0.06-0.07 %
    loss_mean_burst: float = 3.0  # drops arrive consecutively
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if isinstance(self.environment, str):
            self.environment = Environment(self.environment)
        if isinstance(self.platform, str):
            self.platform = Platform(self.platform)
        if isinstance(self.cc, str):
            self.cc = CcAlgorithm(self.cc)
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if self.operator.upper() not in ("P1", "P2"):
            raise ValueError(f"operator must be P1 or P2, got {self.operator}")
        self.operator = self.operator.upper()

    @property
    def effective_static_bitrate(self) -> float:
        """Static-mode bitrate: explicit value or paper default."""
        if self.static_bitrate is not None:
            return self.static_bitrate
        return STATIC_BITRATE[self.environment]

    def with_overrides(self, **changes: Any) -> "ScenarioConfig":
        """Return a copy with ``changes`` applied."""
        return replace(self, **changes)

    def label(self) -> str:
        """Human-readable run label for reports."""
        return (
            f"{self.cc.value}-{self.environment.value}-"
            f"{self.platform.value}-{self.operator}-s{self.seed}"
        )
