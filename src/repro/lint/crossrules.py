"""The cross-module dataflow rules (RPL007-RPL010).

These rules run over a :class:`~repro.lint.project.ProjectIndex`
rather than one AST, so they can see both ends of a call: the unit
suffix of a parameter defined in another package, the trace names a
consumer string-matches, the RNG labels a callee derives from the
factory it was handed, the wall-clock taint a helper's return value
carries.

Rule catalogue
--------------

RPL007 *unit-dimension inference*
    Infers physical dimensions from ``_s``/``_ms``/``_bps``/``_bytes``
    suffixes on parameters, variables and function names, plus the
    known return units of :mod:`repro.util.units` conversions, and
    flags: a call-site argument whose unit differs from the callee
    parameter's (``send(timeout_s=x_ms)``), ``+``/``-`` arithmetic
    mixing units, a call return of one unit assigned to a slot
    suffixed with another, and a numeric-constant (dimensionless)
    return flowing into a unit-suffixed parameter.

RPL008 *trace-schema contracts*
    Every statically-known trace/metric name emitted through a
    recorder must be registered in the generated
    ``repro/obs/schema.py``; every name a consumer in ``repro.obs``
    string-matches against ``record.name`` must be emitted somewhere;
    registered names nothing emits are stale. A typo on either side of
    the emit/consume contract (``span("cell.congested")``) therefore
    fails the lint instead of silently zeroing an attribution share.

RPL009 *RNG stream aliasing*
    One component per stream: the same ``RngStreams`` object must not
    ``derive``/``child`` the same label twice (directly, or once
    locally and once inside a callee the factory is passed to), a
    derived generator variable must not be handed to more than one
    component, and ``derive``/``child`` at module scope captures a
    stream before any scenario seed is bound.

RPL010 *sim-time/wall-time taint*
    A value read from the wall clock (``time.time``,
    ``perf_counter``, ... — directly, via locals, or via a function
    whose return is wall-derived) must not reach event-loop
    scheduling calls, trace timestamps or metric values: those are
    sim-time domains, and wall time silently breaks bit-identical
    replay.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.lint.findings import Finding
from repro.lint.project import ProjectIndex, scope_to_key

#: Rule id -> (title, one-line description) for --list-rules and SARIF.
CROSS_RULE_INFO: dict[str, tuple[str, str]] = {
    "RPL007": (
        "unit-dimension inference",
        "call/assignment/arithmetic flows must agree on inferred "
        "physical units (_s/_ms/_bps/_bytes suffixes, units helpers)",
    ),
    "RPL008": (
        "trace-schema contracts",
        "emitted trace/metric names must be registered in "
        "repro/obs/schema.py and matched consumer names must be emitted",
    ),
    "RPL009": (
        "RNG stream aliasing",
        "one component per RngStreams label: no duplicate derives, no "
        "shared generator objects, no import-time stream capture",
    ),
    "RPL010": (
        "sim-time/wall-time taint",
        "wall-clock values must not reach event-loop scheduling, trace "
        "timestamps or metrics",
    ),
}

#: Module whose ``TRACE_NAMES``/``METRIC_NAMES`` sets are the schema.
SCHEMA_MODULE = "repro.obs.schema"

#: Modules whose ``.name`` string matches are trace-schema consumers.
CONSUMER_PREFIX = "repro.obs"


def CrossFinding(
    path: str, line: int, end_line: int, rule_id: str, message: str
) -> Finding:
    """A finding spanning ``line``..``end_line`` (multi-line calls)."""
    return Finding(
        path=path, line=line, col=1, rule_id=rule_id, message=message,
        end_line=end_line,
    )


def _finding(
    path: str, fact: dict[str, Any], rule_id: str, message: str
) -> Finding:
    return CrossFinding(
        path=path,
        line=fact["line"],
        end_line=fact.get("end", fact["line"]),
        rule_id=rule_id,
        message=message,
    )


def _pretty(unit: str) -> str:
    """``time:ms`` -> ``ms (time)`` for messages."""
    family, _, name = unit.partition(":")
    return f"{name} ({family})"


# ----------------------------------------------------------------------
# RPL007 — unit-dimension inference
# ----------------------------------------------------------------------
def check_units(index: ProjectIndex) -> Iterator[CrossFinding]:
    """Yield every cross-module unit-dimension mismatch."""
    from repro.lint.project import unit_of

    for path, facts in index.files.items():
        for call in facts["calls"]:
            info = index.symbols.get(call["callee"])
            if info is None:
                continue
            callee_leaf = call["callee"].rsplit(".", 1)[-1]
            pairs: list[tuple[str, dict[str, Any], bool]] = []
            params = info["params"]
            for position, desc in enumerate(call["args"]):
                if position < len(params):
                    pairs.append((params[position], desc, False))
            named = set(params) | set(info["kwonly"])
            for keyword, desc in call["kwargs"].items():
                if keyword in named:
                    pairs.append((keyword, desc, True))
            for param, desc, via_keyword in pairs:
                param_unit = unit_of(param)
                if param_unit is None:
                    continue
                arg_unit = index.desc_unit(desc)
                if (
                    via_keyword
                    and desc.get("call") is None
                    and desc.get("unit") is not None
                    and arg_unit is not None
                    and arg_unit.partition(":")[0]
                    == param_unit.partition(":")[0]
                ):
                    # Same-family keyword mismatch on a bare name is
                    # RPL002's per-file check; don't report it twice.
                    continue
                if arg_unit is not None and arg_unit != param_unit:
                    yield _finding(
                        path, call, "RPL007",
                        f"argument of unit {_pretty(arg_unit)} passed to "
                        f"parameter '{param}' of '{callee_leaf}' expecting "
                        f"{_pretty(param_unit)}; convert via repro.util.units",
                    )
                elif (
                    arg_unit is None
                    and desc.get("call")
                    and index.symbols.get(desc["call"], {}).get(
                        "unitless_const"
                    )
                ):
                    yield _finding(
                        path, call, "RPL007",
                        f"dimensionless return of "
                        f"'{desc['call'].rsplit('.', 1)[-1]}' flows into "
                        f"unit-suffixed parameter '{param}' of "
                        f"'{callee_leaf}'; suffix the helper or convert "
                        "explicitly",
                    )
        for assign in facts["assigns"]:
            target_unit = unit_of(assign["target"])
            desc = assign["desc"]
            if target_unit is None or (
                desc.get("unit") is not None and not desc.get("call")
            ):
                # Suffix-to-suffix flows are RPL002's (per-file) call;
                # this rule adds what needs the symbol table: returns.
                continue
            value_unit = index.desc_unit(desc)
            if value_unit is not None and value_unit != target_unit:
                yield _finding(
                    path, assign, "RPL007",
                    f"'{assign['target']}' ({_pretty(target_unit)}) "
                    f"assigned from call returning "
                    f"{_pretty(value_unit)}; convert via repro.util.units",
                )
        for binop in facts["binops"]:
            left = index.desc_unit(binop["left"])
            right = index.desc_unit(binop["right"])
            if left is not None and right is not None and left != right:
                yield _finding(
                    path, binop, "RPL007",
                    f"'{binop['op']}' mixes {_pretty(left)} and "
                    f"{_pretty(right)}; convert one side via "
                    "repro.util.units",
                )


# ----------------------------------------------------------------------
# RPL008 — trace-schema contracts
# ----------------------------------------------------------------------
def _registry_sets(
    index: ProjectIndex,
) -> tuple[dict[str, set[str]], str | None, dict[str, int]]:
    """Registered names by kind, schema path, registry line by kind."""
    path = index.modules.get(SCHEMA_MODULE)
    if path is None:
        return {}, None, {}
    registry = index.files[path].get("registry", {})
    names = {
        kind: set(entry["names"]) for kind, entry in registry.items()
    }
    lines = {kind: entry["line"] for kind, entry in registry.items()}
    return names, path, lines


def emitted_names(index: ProjectIndex) -> dict[str, set[str]]:
    """Statically-known emitted names by kind (``trace``/``metric``)."""
    emitted: dict[str, set[str]] = {"trace": set(), "metric": set()}
    for facts in index.files.values():
        for emit in facts["emits"]:
            if not emit["dynamic"] and emit["name"]:
                emitted[emit["kind"]].add(emit["name"])
    return emitted


def check_trace_schema(index: ProjectIndex) -> Iterator[CrossFinding]:
    """Yield every trace-schema contract violation."""
    registered, schema_path, registry_lines = _registry_sets(index)
    emitted = emitted_names(index)
    all_emitted = emitted["trace"] | emitted["metric"]
    have_registry = bool(registered)
    for path, facts in index.files.items():
        for emit in facts["emits"]:
            if emit["dynamic"] or not emit["name"]:
                continue
            if not have_registry:
                continue
            kind_names = registered.get(emit["kind"], set())
            if emit["name"] not in kind_names:
                yield _finding(
                    path, emit, "RPL008",
                    f"emit of unregistered {emit['kind']} name "
                    f"'{emit['name']}'; regenerate the schema with "
                    "'python -m repro.lint --write-trace-schema'",
                )
        if not facts["module"].startswith(CONSUMER_PREFIX):
            continue
        for consume in facts["consumes"]:
            if consume["name"] not in all_emitted:
                yield _finding(
                    path, consume, "RPL008",
                    f"consumer matches trace name '{consume['name']}' "
                    "that no instrumentation site emits — typo on one "
                    "side of the contract silently drops the signal",
                )
    if schema_path is not None:
        for kind, names in registered.items():
            for name in sorted(names - emitted[kind]):
                yield CrossFinding(
                    path=schema_path,
                    line=registry_lines.get(kind, 1),
                    end_line=registry_lines.get(kind, 1),
                    rule_id="RPL008",
                    message=(
                        f"registered {kind} name '{name}' is no longer "
                        "emitted; regenerate the schema with "
                        "'python -m repro.lint --write-trace-schema'"
                    ),
                )


SCHEMA_HEADER = '''"""Trace/metric name registry — GENERATED, do not edit by hand.

Regenerate with ``python -m repro.lint --write-trace-schema`` whenever
an instrumentation site is added, renamed or removed; RPL008 fails the
lint when this file and the emit sites disagree. The
:class:`repro.obs.recorder.Recorder` can cross-check names against
this registry at runtime (``warn_unregistered=True``), keeping the
static and dynamic views of the schema in sync.
"""

from __future__ import annotations

'''


def render_trace_schema(index: ProjectIndex) -> str:
    """Render ``repro/obs/schema.py`` from the project's emit sites."""
    emitted = emitted_names(index)

    def block(title: str, names: set[str]) -> str:
        if not names:
            return f"{title} = frozenset()\n"
        body = "".join(f'    "{name}",\n' for name in sorted(names))
        return f"{title} = frozenset({{\n{body}}})\n"

    return (
        SCHEMA_HEADER
        + "#: Every statically-known trace record name (events + spans).\n"
        + block("TRACE_NAMES", emitted["trace"])
        + "\n#: Every statically-known metric name "
        + "(counters/gauges/histograms).\n"
        + block("METRIC_NAMES", emitted["metric"])
        + "\n#: Union view used by the runtime registry check.\n"
        + "ALL_NAMES = TRACE_NAMES | METRIC_NAMES\n"
    )


# ----------------------------------------------------------------------
# RPL009 — RNG stream aliasing
# ----------------------------------------------------------------------
def _callee_rng_objects(
    index: ProjectIndex, callee: str
) -> tuple[str, dict[str, Any]] | None:
    """(path, rng-objects) of a callee's scope, or ``None``."""
    path = index.defined_in.get(callee)
    if path is None:
        return None
    facts = index.files[path]
    module = facts["module"]
    qualname = callee[len(module) + 1:] if callee.startswith(module) else None
    if qualname is None:
        return None
    for candidate in (qualname, f"{qualname}.__init__"):
        scope = facts["rng"].get(f"{module}:{candidate}")
        if scope is not None:
            return path, scope["objects"]
    return None


def _param_name(index: ProjectIndex, callee: str, slot: Any) -> str | None:
    info = index.symbols.get(callee)
    if info is None:
        return None
    if isinstance(slot, int):
        params = info["params"]
        return params[slot] if slot < len(params) else None
    return slot if slot in (set(info["params"]) | set(info["kwonly"])) else None


def _propagated_derives(
    index: ProjectIndex,
    callee: str,
    param: str,
    depth: int = 0,
    seen: frozenset[tuple[str, str]] = frozenset(),
) -> list[tuple[str, str]]:
    """Labels the callee (transitively) derives from one parameter."""
    if depth > 8 or (callee, param) in seen:
        return []
    resolved = _callee_rng_objects(index, callee)
    if resolved is None:
        return []
    _, objects = resolved
    obj = objects.get(param)
    if obj is None:
        return []
    labels = [
        (record[0], callee.rsplit(".", 1)[-1]) for record in obj["derives"]
    ]
    for onward_callee, slot, _line, _end in obj["passes"]:
        if onward_callee is None:
            continue
        onward_param = _param_name(index, onward_callee, slot)
        if onward_param is not None:
            labels.extend(
                _propagated_derives(
                    index, onward_callee, onward_param, depth + 1,
                    seen | {(callee, param)},
                )
            )
    return labels


def check_rng_streams(index: ProjectIndex) -> Iterator[CrossFinding]:
    """Yield every RNG stream-discipline violation."""
    for path, facts in index.files.items():
        for scope, table in facts["rng"].items():
            for obj_name, obj in table["objects"].items():
                # Import-time capture: derive/child outside any function.
                for kind in ("derives", "childs"):
                    for label, line, end, where in obj[kind]:
                        if where == "module":
                            yield CrossFinding(
                                path, line, end, "RPL009",
                                f"'{obj_name}.{kind[:-1]}(\"{label}\")' at "
                                "module scope captures a stream at import "
                                "time, before any scenario seed is bound",
                            )
                # Duplicate labels on one object (direct).
                for kind in ("derives", "childs"):
                    seen_labels: dict[str, int] = {}
                    for label, line, end, _where in obj[kind]:
                        if label in seen_labels:
                            yield CrossFinding(
                                path, line, end, "RPL009",
                                f"label '{label}' {kind[:-1]}d twice from "
                                f"'{obj_name}' (first at line "
                                f"{seen_labels[label]}); the two streams "
                                "are bit-identical, not independent",
                            )
                        else:
                            seen_labels[label] = line
                # Duplicate labels via passes into callees.
                local_labels = {record[0] for record in obj["derives"]}
                claimed: dict[str, str] = {
                    label: "here" for label in local_labels
                }
                for callee, slot, line, end in obj["passes"]:
                    if callee is None:
                        continue
                    param = _param_name(index, callee, slot)
                    if param is None:
                        continue
                    for label, owner in _propagated_derives(
                        index, callee, param
                    ):
                        if label in claimed:
                            yield CrossFinding(
                                path, line, end, "RPL009",
                                f"passing '{obj_name}' to "
                                f"'{callee.rsplit('.', 1)[-1]}' derives "
                                f"label '{label}' already derived "
                                f"{claimed[label]}; two components would "
                                "share one stream",
                            )
                        else:
                            claimed[label] = f"in '{owner}'"
            for gen_name, gen in table["gens"].items():
                if len(gen["uses"]) > 1:
                    first = gen["uses"][0]
                    for callee, line, end in gen["uses"][1:]:
                        yield CrossFinding(
                            path, line, end, "RPL009",
                            f"generator '{gen_name}' (stream "
                            f"'{gen['label']}') already handed to "
                            f"'{first[0]}' at line {first[1]}; sharing "
                            "one stream couples the components' draws",
                        )


# ----------------------------------------------------------------------
# RPL010 — sim-time/wall-time taint
# ----------------------------------------------------------------------
def check_wall_taint(index: ProjectIndex) -> Iterator[CrossFinding]:
    """Yield every wall-clock-into-sim-time flow."""
    wall_fns = index.wall_returns()
    for path, facts in index.files.items():
        for scope, flows in facts["taint"].items():
            locals_tainted = ProjectIndex.tainted_locals(flows, wall_fns)
            for sink in flows["sinks"]:
                if ProjectIndex.desc_tainted(
                    sink["desc"], locals_tainted, wall_fns
                ):
                    key = scope_to_key(scope)
                    yield CrossFinding(
                        path, sink["line"], sink["end"], "RPL010",
                        f"wall-clock value reaches '{sink['detail']}' in "
                        f"'{key.rsplit('.', 1)[-1]}'; sim-time sinks must "
                        "be fed from the event-loop clock (EventLoop.now)",
                    )


#: All cross-module checks in catalogue order.
CROSS_CHECKS = (
    ("RPL007", check_units),
    ("RPL008", check_trace_schema),
    ("RPL009", check_rng_streams),
    ("RPL010", check_wall_taint),
)


def run_cross_rules(
    index: ProjectIndex, rule_ids: set[str] | None = None
) -> list[CrossFinding]:
    """Run the selected cross-module rules over the index."""
    findings: list[CrossFinding] = []
    for rule_id, check in CROSS_CHECKS:
        if rule_ids is not None and rule_id not in rule_ids:
            continue
        findings.extend(check(index))
    return findings
