"""Whole-program analysis engine for :mod:`repro.lint`.

The per-file rules (RPL001-006) see one AST at a time; the dataflow
rules (RPL007-010) need to know what the *other* side of a call looks
like — the unit suffix of a parameter defined two packages away, the
trace names a consumer in ``repro.obs`` string-matches against, which
RNG stream labels a callee derives from the factory it was handed.

This module builds that project-wide view in two phases:

1. **Extraction** (:func:`extract_facts`): one AST walk per file
   produces a JSON-able *facts* dict — module name, import map,
   function/class signatures with unit-suffix hints, call sites whose
   arguments carry inferable units, trace emit/consume sites, RNG
   stream flows and wall-clock taint seeds. Facts are content-hash
   cached (:class:`FactsCache`), so a warm re-run re-parses only the
   files whose bytes changed.

2. **Indexing** (:class:`ProjectIndex`): facts from every file are
   folded into a symbol table (global key -> signature) and an
   import/call graph that the cross-module rules in
   :mod:`repro.lint.crossrules` query.

Facts schema (per file)
-----------------------

``module``
    Dotted module name derived from the path (``src/`` stripped, so
    ``src/repro/net/path.py`` -> ``repro.net.path``; scripts keep
    their directory prefix: ``tools/cc_bench.py`` -> ``tools.cc_bench``).
``imports``
    Local name -> dotted target (``{"to_ms": "repro.util.units.to_ms"}``).
``functions``
    Global key -> ``{"params": [...], "kwonly": [...], "vararg": bool,
    "kwarg": bool, "line": int, "name_unit": "family:unit" | None,
    "returns": [valuedesc], "unitless_const": bool}``. Methods are
    keyed ``module.Class.method``; a class's constructor signature is
    also exposed under the bare class key so constructor calls check
    like plain calls.
``calls``
    Call sites with a project-resolvable callee and at least one
    unit-bearing argument: ``{"callee", "line", "end", "args":
    [valuedesc], "kwargs": {name: valuedesc}}``.
``assigns``
    Unit-suffixed targets assigned from a unit-bearing value.
``binops``
    ``+``/``-`` expressions whose two operands both carry a unit or a
    resolvable call.
``emits`` / ``consumes``
    Trace/metric names produced (``obs.event("x.y")``,
    ``WindowedStats(obs, "x.y")``, ...) and names string-matched
    against a ``.name`` attribute.
``rng``
    Per-scope RNG stream flows: factory objects with their
    ``derive``/``child`` labels and onward passes, and derived
    generator variables with their argument uses.
``taint``
    Per-function wall-clock flows: assignments (with referenced names
    / calls / direct clock reads), sim-time sinks and return flows.

A *valuedesc* describes one expression: ``{"unit": "family:unit" |
None, "call": global-key | None, "calls": [...], "names": [...],
"wall": bool, "num": bool}``. ``call`` is the *unit-relevant* callee
(a direct call, or one surviving unit-preserving ``+``/``-``);
``calls`` collects every resolved callee in the expression for taint
propagation, where ``wall * 1000`` stays wall-derived even though the
multiplication destroyed the unit. ``num`` marks a bare numeric
literal.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable

from repro.lint.rules import _CLOCK_CALLS, _suffix_unit, dotted_name

#: Bump to invalidate every cached facts record (schema or extraction
#: logic change).
ENGINE_VERSION = 1

#: Prefixes of global keys that can resolve inside the project.
PROJECT_PREFIXES = ("repro.", "tools.", "examples.", "benchmarks.")

#: Return units of the repro.util.units helpers (the conversion
#: functions are the one sanctioned way to change unit within a
#: family, so their returns are trusted ground truth).
UNITS_HELPER_RETURNS: dict[str, str] = {
    "repro.util.units.bytes_to_bits": "size:bits",
    "repro.util.units.bits_to_bytes": "size:bytes",
    "repro.util.units.mbps": "rate:bps",
    "repro.util.units.to_mbps": "rate:mbps",
    "repro.util.units.to_megabytes": "size:mb",
    "repro.util.units.ms": "time:s",
    "repro.util.units.to_ms": "time:ms",
}

#: Attribute names that schedule a callback at/after a sim time.
SCHEDULE_ATTRS = ("call_at", "call_later", "schedule_at", "schedule_later")

#: Receiver leaf names treated as a trace recorder.
RECORDER_NAMES = ("obs", "recorder", "_obs", "_recorder")

#: Emitting method names on a recorder (trace + metric halves).
TRACE_EMIT_ATTRS = ("event", "span", "span_at")
METRIC_EMIT_ATTRS = ("count", "gauge", "observe")

#: Detector constructors that emit their ``name`` argument as trace
#: events/spans (see repro.obs.detect); EwmaZScore additionally bumps
#: a derived ``component/name_episodes`` counter on episode close.
DETECTOR_CLASSES = ("WindowedStats", "EwmaZScore")


def unit_of(name: str | None) -> str | None:
    """``family:unit`` string for a suffixed name, else ``None``."""
    family_unit = _suffix_unit(name)
    if family_unit is None:
        return None
    return f"{family_unit[0]}:{family_unit[1]}"


def module_name_for(path: str | Path, root: str | Path | None = None) -> str:
    """Dotted module name for ``path`` (relative to ``root``/CWD)."""
    path = Path(path)
    for base in (root, os.getcwd()):
        if base is None:
            continue
        try:
            rel = path.resolve().relative_to(Path(base).resolve())
            break
        except ValueError:
            continue
    else:
        rel = Path(path.name)
    parts = list(rel.parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        parts = [path.stem]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1] or [path.parent.name]
    return ".".join(parts)


def content_hash(source: str) -> str:
    """Cache key for one file's content under the current engine."""
    digest = hashlib.sha256()
    digest.update(f"v{ENGINE_VERSION}:".encode("ascii"))
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
class _FactExtractor(ast.NodeVisitor):
    """Single-pass fact extraction over one module AST."""

    def __init__(self, module: str) -> None:
        self.module = module
        self.imports: dict[str, str] = {}
        self.functions: dict[str, dict[str, Any]] = {}
        self.calls: list[dict[str, Any]] = []
        self.assigns: list[dict[str, Any]] = []
        self.binops: list[dict[str, Any]] = []
        self.emits: list[dict[str, Any]] = []
        self.consumes: list[dict[str, Any]] = []
        self.rng_scopes: dict[str, dict[str, Any]] = {}
        self.taint: dict[str, dict[str, Any]] = {}
        self.registry: dict[str, dict[str, Any]] = {}
        self._class_stack: list[str] = []
        self._func_stack: list[str] = []
        self._module_defs: set[str] = set()

    # -- scope bookkeeping ---------------------------------------------
    @property
    def _scope(self) -> str:
        """Current scope key (``<module>`` or ``<module>:<qualname>``)."""
        if self._func_stack:
            return f"{self.module}:{'.'.join(self._func_stack)}"
        return self.module

    def _global_key(self, name: str) -> str:
        """Global key for a definition at the current nesting."""
        prefix = ".".join(self._class_stack)
        if prefix:
            return f"{self.module}.{prefix}.{name}"
        return f"{self.module}.{name}"

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            self.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # Resolve ``from .x import y`` against this module's package.
            package = self.module.split(".")
            package = package[: len(package) - node.level]
            base = ".".join(package + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.imports[local] = f"{base}.{alias.name}" if base else alias.name

    # -- name resolution -----------------------------------------------
    def _resolve(self, node: ast.AST) -> str | None:
        """Global key for a callee expression (``None`` if opaque).

        Handles plain imported names, dotted chains through imported
        modules, same-module definitions and ``self.method`` calls.
        """
        name = dotted_name(node)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        if head == "self" and self._class_stack:
            if rest and "." not in rest:
                return f"{self.module}.{'.'.join(self._class_stack)}.{rest}"
            return None
        if head in self.imports:
            target = self.imports[head]
            return f"{target}.{rest}" if rest else target
        if not rest and head in self._module_defs:
            return f"{self.module}.{head}"
        if not rest and head in DETECTOR_CLASSES:
            return f"repro.obs.detect.{head}"
        return None

    def _is_wall_call(self, node: ast.Call) -> bool:
        name = dotted_name(node.func)
        if name in _CLOCK_CALLS:
            return True
        resolved = self._resolve(node.func)
        return resolved in _CLOCK_CALLS

    # -- value descriptors ---------------------------------------------
    def _desc(self, node: ast.AST) -> dict[str, Any]:
        """Valuedesc for one expression (see module docstring)."""
        desc: dict[str, Any] = {
            "unit": None, "call": None, "calls": [], "names": [],
            "wall": False, "num": False,
        }
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                node.value, bool
            ):
                desc["num"] = True
            return desc
        if isinstance(node, (ast.Name, ast.Attribute)):
            name = dotted_name(node)
            if name is not None:
                desc["names"] = [name]
                desc["unit"] = unit_of(name)
            return desc
        if isinstance(node, ast.Call):
            resolved = self._resolve(node.func)
            if self._is_wall_call(node):
                desc["wall"] = True
            elif resolved is not None:
                desc["call"] = resolved
                desc["calls"].append(resolved)
                desc["unit"] = UNITS_HELPER_RETURNS.get(resolved)
            # Fold argument flows in so taint through e.g.
            # ``min(wall, x)`` or ``to_ms(t)`` is not lost.
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                inner = self._desc(arg)
                desc["names"].extend(inner["names"])
                desc["calls"].extend(inner["calls"])
                desc["wall"] = desc["wall"] or inner["wall"]
            return desc
        if isinstance(node, ast.BinOp):
            left = self._desc(node.left)
            right = self._desc(node.right)
            desc["names"] = left["names"] + right["names"]
            desc["calls"] = left["calls"] + right["calls"]
            desc["wall"] = left["wall"] or right["wall"]
            if isinstance(node.op, (ast.Add, ast.Sub)):
                # Only +/- preserve dimension; a call's return unit
                # must not survive * or / (bits / seconds is a rate,
                # not bits).
                if left["unit"] is not None and left["unit"] == right["unit"]:
                    desc["unit"] = left["unit"]
                for side in (left, right):
                    if side["call"] is not None and desc["call"] is None:
                        desc["call"] = side["call"]
            return desc
        if isinstance(node, (ast.UnaryOp,)):
            return self._desc(node.operand)
        if isinstance(node, ast.IfExp):
            body = self._desc(node.body)
            orelse = self._desc(node.orelse)
            body["names"] += orelse["names"]
            body["calls"] += orelse["calls"]
            body["wall"] = body["wall"] or orelse["wall"]
            if body["unit"] != orelse["unit"]:
                body["unit"] = None
            return body
        return desc

    @staticmethod
    def _interesting(desc: dict[str, Any]) -> bool:
        """Whether a desc can contribute to a unit judgement."""
        return desc["unit"] is not None or desc["call"] is not None

    # -- definitions ---------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self._module_defs.add(stmt.name)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()
        # Expose the constructor under the bare class key so
        # ``Channel(...)`` call sites resolve like plain calls.
        init_key = f"{self.module}.{'.'.join(self._class_stack + [node.name])}.__init__"
        if init_key in self.functions:
            class_key = init_key.rsplit(".", 1)[0]
            self.functions[class_key] = self.functions[init_key]

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def _handle_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if self._class_stack and params and params[0] in ("self", "cls"):
            params = params[1:]
        if not self._func_stack:
            # Only top-level functions and methods enter the symbol
            # table; nested defs are closures, invisible to callers.
            returns: list[dict[str, Any]] = []
            numeric_only = True
            saw_return = False
            for sub in ast.walk(node):
                if isinstance(sub, ast.Return) and sub.value is not None:
                    saw_return = True
                    desc = self._desc(sub.value)
                    if not desc["num"]:
                        numeric_only = False
                    if self._interesting(desc) or desc["wall"] or desc["names"]:
                        returns.append(desc)
            self.functions[self._global_key(node.name)] = {
                "params": params,
                "kwonly": [a.arg for a in args.kwonlyargs],
                "vararg": args.vararg is not None,
                "kwarg": args.kwarg is not None,
                "line": node.lineno,
                "name_unit": unit_of(node.name),
                "returns": returns,
                "unitless_const": saw_return and numeric_only,
            }
        self._func_stack.append(
            ".".join(self._class_stack + [node.name])
            if self._class_stack
            else node.name
        )
        # Parameters that look like stream factories seed the RNG
        # object table, so pure pass-through flows are tracked too.
        for param in params + [a.arg for a in args.kwonlyargs]:
            if "streams" in param:
                self._rng_object(param, origin="param")
        self.generic_visit(node)
        self._func_stack.pop()

    # -- statements ----------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        value_desc = self._desc(node.value)
        for target in node.targets:
            self._note_assign(target, node.value, value_desc, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            value_desc = self._desc(node.value)
            self._note_assign(node.target, node.value, value_desc, node)
        self.generic_visit(node)

    def _note_assign(
        self,
        target: ast.AST,
        value: ast.AST,
        desc: dict[str, Any],
        node: ast.stmt,
    ) -> None:
        target_name = dotted_name(target)
        if target_name is None:
            return
        leaf = target_name.rsplit(".", 1)[-1]
        # RNG flows: ``x = streams.derive("lbl")`` / ``x = streams.child("lbl")``
        # create a generator / sub-factory; ``x = RngStreams(seed)`` a root.
        if isinstance(value, ast.Call):
            if isinstance(value.func, ast.Attribute):
                attr = value.func.attr
                if attr in ("derive", "child") and value.args:
                    label = value.args[0]
                    owner = dotted_name(value.func.value)
                    if isinstance(label, ast.Constant) and isinstance(
                        label.value, str
                    ):
                        if attr == "child" and owner is not None:
                            self._rng_object(
                                target_name, origin=f"child:{owner}"
                            )
                        elif attr == "derive" and owner is not None:
                            self._rng_gen(target_name, label.value, node)
            ctor = dotted_name(value.func)
            if ctor is not None and ctor.rsplit(".", 1)[-1] == "RngStreams":
                self._rng_object(target_name, origin="ctor")
        # Generated trace-name registry (repro/obs/schema.py).
        if target_name in ("TRACE_NAMES", "METRIC_NAMES") and not self._func_stack:
            names = _literal_names(value)
            if names is not None:
                self.registry[
                    "trace" if target_name == "TRACE_NAMES" else "metric"
                ] = {"names": names, "line": node.lineno}
        # Wall-clock taint seeds and propagation edges.
        if self._func_stack and (
            desc["wall"] or desc["names"] or desc["calls"]
        ):
            self._taint_record("assigns", node, target=leaf, desc=desc)
        # Unit flow into a suffixed target.
        if unit_of(target_name) is not None and self._interesting(desc):
            self.assigns.append({
                "target": target_name,
                "desc": desc,
                "line": node.lineno,
                "end": getattr(node, "end_lineno", node.lineno),
                "scope": self._scope,
            })

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left = self._desc(node.left)
            right = self._desc(node.right)
            if self._interesting(left) and self._interesting(right):
                self.binops.append({
                    "op": "+" if isinstance(node.op, ast.Add) else "-",
                    "left": left,
                    "right": right,
                    "line": node.lineno,
                    "end": getattr(node, "end_lineno", node.lineno),
                })
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        self._note_consume(node)
        self.generic_visit(node)

    def _note_consume(self, node: ast.Compare) -> None:
        """Record trace names string-matched against a ``.name``."""
        sides = [node.left] + list(node.comparators)
        has_name_attr = any(
            isinstance(side, ast.Attribute) and side.attr == "name"
            for side in sides
        )
        if not has_name_attr:
            return
        for side in sides:
            literals: list[tuple[str, int]] = []
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                literals.append((side.value, side.lineno))
            elif isinstance(side, (ast.Tuple, ast.List, ast.Set)):
                for element in side.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        literals.append((element.value, element.lineno))
            for value, line in literals:
                if "." in value or "/" in value:
                    self.consumes.append({
                        "name": value,
                        "line": line,
                        "end": getattr(node, "end_lineno", line),
                    })

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._note_emit(node)
        self._note_rng_call(node)
        self._note_sinks(node)
        resolved = self._resolve(node.func)
        if resolved is not None and resolved.startswith(PROJECT_PREFIXES):
            args = [self._desc(arg) for arg in node.args]
            kwargs = {
                kw.arg: self._desc(kw.value)
                for kw in node.keywords
                if kw.arg is not None
            }
            if any(self._interesting(d) for d in args) or any(
                self._interesting(d) for d in kwargs.values()
            ):
                self.calls.append({
                    "callee": resolved,
                    "line": node.lineno,
                    "end": getattr(node, "end_lineno", node.lineno),
                    "args": args,
                    "kwargs": kwargs,
                })
        self.generic_visit(node)

    def _note_emit(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            receiver = dotted_name(func.value)
            receiver_leaf = (
                receiver.rsplit(".", 1)[-1] if receiver is not None else ""
            )
            if receiver_leaf in RECORDER_NAMES and func.attr in (
                TRACE_EMIT_ATTRS + METRIC_EMIT_ATTRS
            ):
                kind = "metric" if func.attr in METRIC_EMIT_ATTRS else "trace"
                self._append_emit(node, kind, via=func.attr)
                return
        resolved = self._resolve(func)
        leaf = resolved.rsplit(".", 1)[-1] if resolved else ""
        if leaf in DETECTOR_CLASSES:
            name_node: ast.AST | None = None
            if len(node.args) >= 2:
                name_node = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "name":
                        name_node = kw.value
            if isinstance(name_node, ast.Constant) and isinstance(
                name_node.value, str
            ):
                name = name_node.value
                entry = {
                    "name": name,
                    "kind": "trace",
                    "via": leaf,
                    "line": node.lineno,
                    "end": getattr(node, "end_lineno", node.lineno),
                    "dynamic": False,
                }
                self.emits.append(entry)
                if leaf == "EwmaZScore":
                    # Episode close bumps a derived counter (see
                    # EwmaZScore._close).
                    self.emits.append({
                        **entry,
                        "name": name.replace(".", "/", 1) + "_episodes",
                        "kind": "metric",
                    })

    def _append_emit(self, node: ast.Call, kind: str, via: str) -> None:
        name_node = node.args[0] if node.args else None
        dynamic = not (
            isinstance(name_node, ast.Constant)
            and isinstance(name_node.value, str)
        )
        self.emits.append({
            "name": None if dynamic else name_node.value,  # type: ignore[union-attr]
            "kind": kind,
            "via": via,
            "line": node.lineno,
            "end": getattr(node, "end_lineno", node.lineno),
            "dynamic": dynamic,
        })

    # -- RNG flows -----------------------------------------------------
    def _rng_scope(self) -> dict[str, Any]:
        return self.rng_scopes.setdefault(
            self._scope, {"objects": {}, "gens": {}}
        )

    def _rng_object(self, name: str, origin: str) -> dict[str, Any]:
        objects = self._rng_scope()["objects"]
        return objects.setdefault(
            name,
            {"origin": origin, "derives": [], "childs": [], "passes": []},
        )

    def _rng_gen(self, name: str, label: str, node: ast.stmt) -> None:
        self._rng_scope()["gens"][name] = {
            "label": label,
            "line": node.lineno,
            "end": getattr(node, "end_lineno", node.lineno),
            "uses": [],
        }

    def _note_rng_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in ("derive", "child"):
            owner = dotted_name(func.value)
            label_node = node.args[0] if node.args else None
            if owner is not None and isinstance(label_node, ast.Constant) and (
                isinstance(label_node.value, str)
            ):
                obj = self._rng_object(
                    owner,
                    origin="param" if self._func_stack else "module",
                )
                record = [
                    label_node.value,
                    node.lineno,
                    getattr(node, "end_lineno", node.lineno),
                    "module" if not self._func_stack else "function",
                ]
                if func.attr == "derive":
                    obj["derives"].append(record)
                else:
                    obj["childs"].append(record)
        # Argument uses: a streams object or a derived generator handed
        # to a callee.
        callee = self._resolve(node.func)
        scope = self.rng_scopes.get(self._scope)
        if scope is None:
            return
        positional = list(enumerate(node.args))
        keyword = [(kw.arg, kw.value) for kw in node.keywords if kw.arg]
        for slot, value in positional + keyword:  # type: ignore[operator]
            name = dotted_name(value)
            if name is None and isinstance(value, ast.Call) and isinstance(
                value.func, ast.Attribute
            ) and value.func.attr == "child":
                # Inline ``obj.child("x")`` pass: label is recorded via
                # _note_rng_call on the inner call; the callee derives
                # land in a fresh namespace, so nothing to track here.
                continue
            if name is None:
                continue
            if name in scope["objects"]:
                scope["objects"][name]["passes"].append([
                    callee, slot, node.lineno,
                    getattr(node, "end_lineno", node.lineno),
                ])
            if name in scope["gens"]:
                scope["gens"][name]["uses"].append([
                    callee or dotted_name(node.func) or "<call>",
                    node.lineno,
                    getattr(node, "end_lineno", node.lineno),
                ])

    # -- wall-clock sinks ----------------------------------------------
    def _taint_record(self, kind: str, node: ast.AST, **payload: Any) -> None:
        entry = self.taint.setdefault(
            self._scope, {"assigns": [], "sinks": [], "returns": []}
        )
        payload["line"] = node.lineno
        payload["end"] = getattr(node, "end_lineno", node.lineno)
        entry[kind].append(payload)

    def _note_sinks(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        receiver = dotted_name(func.value)
        receiver_leaf = receiver.rsplit(".", 1)[-1] if receiver else ""
        sink_exprs: list[tuple[str, ast.AST]] = []
        if func.attr in SCHEDULE_ATTRS and node.args:
            sink_exprs.append((f"{func.attr} time", node.args[0]))
        elif receiver_leaf in RECORDER_NAMES:
            if func.attr in TRACE_EMIT_ATTRS:
                if func.attr == "span_at":
                    for position in (1, 2):
                        if len(node.args) > position:
                            sink_exprs.append(
                                ("span_at bound", node.args[position])
                            )
                for kw in node.keywords:
                    if kw.arg in ("t", "t0", "t1"):
                        sink_exprs.append((f"{func.attr} {kw.arg}=", kw.value))
            elif func.attr in METRIC_EMIT_ATTRS and len(node.args) > 1:
                sink_exprs.append((f"{func.attr} value", node.args[1]))
        for detail, expr in sink_exprs:
            desc = self._desc(expr)
            if desc["wall"] or desc["names"] or desc["calls"]:
                self._taint_record("sinks", node, detail=detail, desc=desc)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and self._func_stack:
            desc = self._desc(node.value)
            if desc["wall"] or desc["names"] or desc["calls"]:
                self._taint_record("returns", node, desc=desc)
        self.generic_visit(node)


def extract_facts(source: str, path: str, module: str) -> dict[str, Any]:
    """Extract the cross-module facts of one file.

    Raises :class:`SyntaxError` for unparseable sources — the caller
    turns that into an RPL000 finding exactly like the per-file path.
    """
    tree = ast.parse(source, filename=path)
    extractor = _FactExtractor(module)
    extractor.visit(tree)
    return {
        "module": module,
        "imports": extractor.imports,
        "functions": extractor.functions,
        "calls": extractor.calls,
        "assigns": extractor.assigns,
        "binops": extractor.binops,
        "emits": extractor.emits,
        "consumes": extractor.consumes,
        "rng": extractor.rng_scopes,
        "taint": extractor.taint,
        "registry": extractor.registry,
    }


def _literal_names(node: ast.AST) -> list[str] | None:
    """String elements of a literal ``frozenset({...})``/set/tuple."""
    if isinstance(node, ast.Call) and node.args:
        callee = dotted_name(node.func)
        if callee is not None and callee.rsplit(".", 1)[-1] == "frozenset":
            node = node.args[0]
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        names = [
            element.value
            for element in node.elts
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]
        return names
    return None


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class FactsCache:
    """Content-hash cache of per-file analysis records.

    One JSON file maps source path -> ``{"sha": ..., "record": ...}``,
    where the record holds whatever the caller computed per file (the
    runner stores facts + per-file findings + pragma lines). A record
    is reused only when the stored hash matches the current content
    hash (which folds in :data:`ENGINE_VERSION`), so both file edits
    and engine upgrades invalidate naturally.
    """

    def __init__(self, cache_dir: str | Path = ".repro-cache") -> None:
        self.path = Path(cache_dir) / "lint" / "facts.json"
        self._records: dict[str, dict[str, Any]] = {}
        self._loaded_hashes: dict[str, str] = {}
        self.hits = 0
        self.misses = 0
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            if data.get("engine") == ENGINE_VERSION:
                self._records = data.get("files", {})
        except (OSError, ValueError):
            self._records = {}
        self._loaded_hashes = {
            key: record.get("sha", "") for key, record in self._records.items()
        }

    def get(self, path: str, sha: str) -> dict[str, Any] | None:
        """Cached record for ``path`` at content hash ``sha``."""
        record = self._records.get(path)
        if record is not None and record.get("sha") == sha:
            self.hits += 1
            return record["record"]
        self.misses += 1
        return None

    def put(self, path: str, sha: str, record: dict[str, Any]) -> None:
        """Store a freshly computed per-file record."""
        self._records[path] = {"sha": sha, "record": record}

    def save(self, linted_paths: Iterable[str] | None = None) -> None:
        """Persist the cache (pruned to the linted file set)."""
        if linted_paths is not None:
            keep = set(linted_paths)
            self._records = {
                key: record
                for key, record in self._records.items()
                if key in keep
            }
        if {
            key: record.get("sha", "") for key, record in self._records.items()
        } == self._loaded_hashes:
            return  # nothing changed; skip the write
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"engine": ENGINE_VERSION, "files": self._records}
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self.path)


# ----------------------------------------------------------------------
# project index
# ----------------------------------------------------------------------
class ProjectIndex:
    """Symbol table + fact store over every linted file.

    ``files`` maps path -> facts; derived lookups are precomputed once
    so rule passes stay O(project).
    """

    def __init__(self, files: dict[str, dict[str, Any]]) -> None:
        self.files = files
        #: Global key -> function signature record.
        self.symbols: dict[str, dict[str, Any]] = {}
        #: Global key -> defining path (for diagnostics).
        self.defined_in: dict[str, str] = {}
        #: Module name -> path.
        self.modules: dict[str, str] = {}
        for path, facts in files.items():
            self.modules[facts["module"]] = path
            for key, info in facts["functions"].items():
                self.symbols[key] = info
                self.defined_in[key] = path
        self._return_units: dict[str, str | None] = {}
        self._wall_returns: dict[str, bool] | None = None

    # -- unit inference ------------------------------------------------
    def return_unit(self, key: str, _depth: int = 0) -> str | None:
        """Inferred ``family:unit`` of a function's return value.

        Priority: units-helper table, unit suffix on the function name,
        then agreement across unit-bearing return statements (following
        call chains to a small depth). ``None`` when unknown or mixed.
        """
        if key in UNITS_HELPER_RETURNS:
            return UNITS_HELPER_RETURNS[key]
        if key in self._return_units:
            return self._return_units[key]
        if _depth > 8 or key not in self.symbols:
            return None
        self._return_units[key] = None  # cycle guard
        info = self.symbols[key]
        unit = info.get("name_unit")
        if unit is None:
            seen: set[str] = set()
            conflicting = False
            for desc in info.get("returns", ()):
                candidate = desc.get("unit")
                if candidate is None and desc.get("call"):
                    candidate = self.return_unit(desc["call"], _depth + 1)
                if candidate is not None:
                    seen.add(candidate)
                elif desc.get("names") or desc.get("call"):
                    conflicting = True  # a return we cannot judge
            if len(seen) == 1 and not conflicting:
                unit = seen.pop()
        self._return_units[key] = unit
        return unit

    def desc_unit(self, desc: dict[str, Any]) -> str | None:
        """Unit of a valuedesc, following call returns."""
        if desc.get("unit") is not None:
            return desc["unit"]
        if desc.get("call"):
            return self.return_unit(desc["call"])
        return None

    # -- wall-clock taint ----------------------------------------------
    def wall_returns(self) -> dict[str, bool]:
        """Function keys whose return value carries wall-clock time.

        Fixed point over return flows: a function is tainted when any
        return expression reads the clock directly, references a local
        assigned from the clock, or calls a tainted function.
        """
        if self._wall_returns is not None:
            return self._wall_returns
        tainted: dict[str, bool] = {}
        changed = True
        passes = 0
        while changed and passes < 16:
            changed = False
            passes += 1
            for path, facts in self.files.items():
                for scope, flows in facts.get("taint", {}).items():
                    key = scope_to_key(scope)
                    locals_tainted = self.tainted_locals(flows, tainted)
                    is_tainted = any(
                        self.desc_tainted(ret["desc"], locals_tainted, tainted)
                        for ret in flows.get("returns", ())
                    )
                    if is_tainted and not tainted.get(key, False):
                        tainted[key] = True
                        changed = True
        self._wall_returns = tainted
        return tainted

    @staticmethod
    def desc_tainted(
        desc: dict[str, Any],
        locals_tainted: set[str],
        wall_fns: dict[str, bool],
    ) -> bool:
        """Whether a valuedesc carries wall-clock taint."""
        if desc.get("wall"):
            return True
        if any(
            name.split(".", 1)[0] in locals_tainted or name in locals_tainted
            for name in desc.get("names", ())
        ):
            return True
        call = desc.get("call")
        if call and wall_fns.get(call, False):
            return True
        return any(
            wall_fns.get(callee, False) for callee in desc.get("calls", ())
        )

    @classmethod
    def tainted_locals(
        cls, flows: dict[str, Any], wall_fns: dict[str, bool]
    ) -> set[str]:
        """Fixed-point local taint set for one function's flows."""
        tainted: set[str] = set()
        changed = True
        while changed:
            changed = False
            for assign in flows.get("assigns", ()):
                if assign["target"] in tainted:
                    continue
                if cls.desc_tainted(assign["desc"], tainted, wall_fns):
                    tainted.add(assign["target"])
                    changed = True
        return tainted


def scope_to_key(scope: str) -> str:
    """Global key for a scope string (``mod:Class.fn`` -> ``mod.Class.fn``)."""
    return scope.replace(":", ".", 1)


def build_project(
    sources: dict[str, str],
    *,
    root: str | Path | None = None,
    cache: FactsCache | None = None,
) -> tuple[ProjectIndex, list[tuple[str, SyntaxError]]]:
    """Build the project index over ``{path: source}``.

    Returns the index plus the files that failed to parse (reported as
    RPL000 by the runner). With a cache, unchanged files skip the AST
    walk entirely.
    """
    files: dict[str, dict[str, Any]] = {}
    errors: list[tuple[str, SyntaxError]] = []
    for path, source in sources.items():
        sha = content_hash(source)
        record = cache.get(path, sha) if cache is not None else None
        facts = record.get("facts") if record is not None else None
        if facts is None:
            try:
                facts = extract_facts(
                    source, path, module_name_for(path, root)
                )
            except SyntaxError as exc:
                errors.append((path, exc))
                continue
            if cache is not None:
                cache.put(path, sha, {"facts": facts})
        files[path] = facts
    return ProjectIndex(files), errors
