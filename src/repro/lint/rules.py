"""The invariant rules (RPL001–RPL006).

Each rule is an :class:`ast.NodeVisitor` instantiated per file. Rules
collect :class:`~repro.lint.findings.Finding` objects; suppression via
pragmas happens later in the runner, so rules stay oblivious to
comments.

Rule catalogue
--------------

RPL001 *nondeterminism*
    Calls that pull entropy or wall-clock state from outside the
    scenario seed: the stdlib ``random`` module, numpy's global RNG
    (``np.random.seed`` / ``np.random.<dist>``), unseeded
    ``default_rng()``, ``time.time``-family clocks, ``datetime.now``,
    ``os.urandom``, ``uuid.uuid1/uuid4`` and ``secrets``. Simulation
    code must draw from a ``numpy.random.Generator`` derived via
    ``RngStreams.derive``; wall-clock telemetry (e.g. the campaign
    engine) carries explicit pragmas.

RPL002 *unit safety*
    Ad-hoc unit arithmetic (``* 1e6``, ``/ 1e3``, ``* 8.0``, …)
    outside :mod:`repro.util.units`, and assignments/keywords that
    pipe a ``_s``-suffixed value into an ``_ms``-suffixed slot (or
    bytes into bits, bps into mbps) without conversion.

RPL003 *event-handle leaks*
    A discarded ``call_at``/``call_later`` result inside a class that
    also defines ``stop``/``flush``/``close``: the teardown method
    cannot cancel what was never kept — the JitterBuffer bug class.

RPL004 *picklability*
    Lambdas or nested functions handed to multiprocessing-style
    dispatch (``pool.submit``/``imap``/``apply_async``/…,
    ``Process(target=...)`` or campaign ``make_unit`` params): they
    break under ``multiprocessing`` — the ping-probe bug class.

RPL005 *seed-path hygiene*
    ``default_rng(<literal>)`` / ``RandomState(<literal>)`` with a
    hard-coded seed: two unrelated components silently sharing stream
    0 — the ``rng=None → default_rng(0)`` fallback bug class.

RPL006 *hot-path dataclass slots*
    A ``@dataclass`` without ``slots=True`` (and without a manual
    ``__slots__``) in the per-packet hot modules (``repro/net``,
    ``repro/rtp``, ``repro/cc``): every instance then carries a
    ``__dict__``, which is measurable at 10^5-10^6 allocations per
    run — the ``Datagram`` bug class. Only applies inside the listed
    directories; cold-path modules keep their plain dataclasses.
"""

from __future__ import annotations

import ast
from typing import ClassVar

from repro.lint.findings import Finding


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule(ast.NodeVisitor):
    """Base class: one rule, instantiated fresh per linted file."""

    rule_id: ClassVar[str] = "RPL000"
    title: ClassVar[str] = ""
    #: Path suffixes (``/``-normalised) this rule never applies to.
    exempt_suffixes: ClassVar[tuple[str, ...]] = ()
    #: When non-empty, the rule *only* runs on paths containing one of
    #: these (``/``-normalised) directory fragments.
    only_dirs: ClassVar[tuple[str, ...]] = ()

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []

    @classmethod
    def applies_to(cls, path: str) -> bool:
        """Whether this rule runs on ``path`` at all."""
        normalized = path.replace("\\", "/")
        if any(normalized.endswith(sfx) for sfx in cls.exempt_suffixes):
            return False
        if cls.only_dirs and not any(frag in normalized for frag in cls.only_dirs):
            return False
        return True

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule_id=self.rule_id,
                message=message,
            )
        )


# ----------------------------------------------------------------------
# RPL001 — nondeterminism
# ----------------------------------------------------------------------

_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
}
_ENTROPY_CALLS = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}
_DATETIME_ATTRS = {"now", "utcnow", "today"}
#: numpy.random members that *construct* seeded machinery (allowed).
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "RandomState",  # legacy but seedable; literal seeds are RPL005's call
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


class NondeterminismRule(Rule):
    """RPL001: entropy or wall clock outside the RngStreams seed path."""

    rule_id = "RPL001"
    title = "nondeterminism"

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            self._check_name(node, name)
        self.generic_visit(node)

    def _check_name(self, node: ast.Call, name: str) -> None:
        parts = name.split(".")
        if name.startswith("random."):
            self.report(
                node,
                f"call to stdlib '{name}' uses the global process RNG; "
                "draw from a numpy Generator derived via RngStreams.derive",
            )
            return
        if parts[0] in ("np", "numpy") and len(parts) >= 3 and parts[1] == "random":
            member = parts[2]
            if member == "seed":
                self.report(
                    node,
                    f"'{name}' reseeds numpy's global RNG; "
                    "use RngStreams for per-component streams",
                )
            elif (
                member in ("default_rng", "RandomState")
                and not node.args
                and not node.keywords
            ):
                self.report(
                    node,
                    f"'{member}()' without a seed draws OS entropy; "
                    "derive a Generator from RngStreams instead",
                )
            elif member not in _NP_RANDOM_OK:
                self.report(
                    node,
                    f"'{name}' draws from numpy's global RNG; "
                    "use a Generator derived via RngStreams.derive",
                )
            return
        if name == "default_rng" and not node.args and not node.keywords:
            self.report(
                node,
                "'default_rng()' without a seed draws OS entropy; "
                "derive a Generator from RngStreams instead",
            )
            return
        if name in _CLOCK_CALLS:
            self.report(
                node,
                f"'{name}' reads the wall clock; simulation code must use "
                "EventLoop.now (pragma wall-clock telemetry explicitly)",
            )
            return
        if (
            parts[0] in ("datetime", "date")
            and parts[-1] in _DATETIME_ATTRS
            and len(parts) >= 2
        ):
            self.report(
                node,
                f"'{name}' reads the wall clock; simulation code must use "
                "EventLoop.now (pragma wall-clock telemetry explicitly)",
            )
            return
        if name in _ENTROPY_CALLS or name.startswith("secrets."):
            self.report(
                node,
                f"'{name}' draws OS entropy; "
                "derive randomness from RngStreams instead",
            )


# ----------------------------------------------------------------------
# RPL002 — unit-suffix safety
# ----------------------------------------------------------------------

#: suffix -> (quantity family, unit). Longest suffix wins.
_UNIT_SUFFIXES: tuple[tuple[str, tuple[str, str]], ...] = (
    ("_mbps", ("rate", "mbps")),
    ("_kbps", ("rate", "kbps")),
    ("_bps", ("rate", "bps")),
    ("_ms", ("time", "ms")),
    ("_us", ("time", "us")),
    ("_seconds", ("time", "s")),
    ("_secs", ("time", "s")),
    ("_s", ("time", "s")),
    ("_bytes", ("size", "bytes")),
    ("_bits", ("size", "bits")),
)

#: Magic constants that mark ad-hoc unit conversions when they appear
#: as a direct ``*``/``/`` operand. ``8.0`` must be a float literal
#: (integer 8 is too common as an ordinary number); 1e-3/1e-6 are
#: deliberately absent because they routinely appear as epsilons.
_FLOAT_ONLY_CONSTANTS = (8.0,)
_UNIT_CONSTANTS = (1_000, 1_000_000)


def _suffix_unit(name: str | None) -> tuple[str, str] | None:
    if name is None:
        return None
    leaf = name.rsplit(".", 1)[-1]
    for suffix, family_unit in _UNIT_SUFFIXES:
        if leaf.endswith(suffix):
            return family_unit
    return None


def _bare_name(node: ast.AST) -> str | None:
    """Name of a plain variable/attribute reference, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return dotted_name(node)
    return None


def _is_unit_constant(node: ast.AST) -> bool:
    if not isinstance(node, ast.Constant):
        return False
    value = node.value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return False
    if isinstance(value, float) and any(value == c for c in _FLOAT_ONLY_CONSTANTS):
        return True
    return any(value == c for c in _UNIT_CONSTANTS)


class UnitSafetyRule(Rule):
    """RPL002: SI units at boundaries, conversions via util.units."""

    rule_id = "RPL002"
    title = "unit-suffix safety"
    exempt_suffixes = ("repro/util/units.py",)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Mult, ast.Div)):
            for operand in (node.left, node.right):
                if _is_unit_constant(operand):
                    literal = ast.unparse(operand)
                    self.report(
                        node,
                        f"ad-hoc unit arithmetic with literal {literal}; "
                        "use the repro.util.units helpers "
                        "(ms/to_ms, mbps/to_mbps, bytes_to_bits, ...)",
                    )
                    break
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_flow(node, _bare_name(target), node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_flow(node, _bare_name(node.target), node.value)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg is not None:
                self._check_flow(keyword.value, keyword.arg, keyword.value)
        self.generic_visit(node)

    def _check_flow(self, anchor: ast.AST, sink: str | None, source: ast.AST) -> None:
        sink_unit = _suffix_unit(sink)
        if sink_unit is None:
            return
        source_unit = _suffix_unit(_bare_name(source))
        if source_unit is None:
            return
        if sink_unit[0] == source_unit[0] and sink_unit[1] != source_unit[1]:
            self.report(
                anchor,
                f"'{sink}' ({sink_unit[1]}) assigned from "
                f"'{_bare_name(source)}' ({source_unit[1]}) without "
                "conversion; use the repro.util.units helpers",
            )


# ----------------------------------------------------------------------
# RPL003 — event-handle leaks
# ----------------------------------------------------------------------

_TEARDOWN_METHODS = {"stop", "flush", "close", "shutdown"}
_SCHEDULING_ATTRS = {"call_at", "call_later"}


class EventHandleRule(Rule):
    """RPL003: discarded EventHandle in a class with a teardown method."""

    rule_id = "RPL003"
    title = "event-handle leaks"

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._class_stack: list[bool] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        has_teardown = any(
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name in _TEARDOWN_METHODS
            for stmt in node.body
        )
        self._class_stack.append(has_teardown)
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_Expr(self, node: ast.Expr) -> None:
        if self._class_stack and self._class_stack[-1]:
            call = node.value
            if isinstance(call, ast.Call) and isinstance(call.func, ast.Attribute):
                if call.func.attr in _SCHEDULING_ATTRS:
                    self.report(
                        node,
                        f"result of '{call.func.attr}' discarded in a class "
                        "with a teardown method; keep the EventHandle and "
                        "cancel it on stop/flush/close",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# RPL004 — picklability
# ----------------------------------------------------------------------

_POOL_DISPATCH_ATTRS = {
    "submit",
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "apply",
    "apply_async",
    "starmap",
    "starmap_async",
}
_DISPATCH_NAMES = {"make_unit"}
_PROCESS_NAMES = {"Process", "Thread"}


class PicklabilityRule(Rule):
    """RPL004: only module-level callables cross the process boundary."""

    rule_id = "RPL004"
    title = "picklability"

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._function_depth = 0
        self._nested_defs: list[set[str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def _enter_function(self, node: ast.AST) -> None:
        if self._function_depth > 0:
            self._nested_defs[-1].add(node.name)  # type: ignore[attr-defined]
        self._function_depth += 1
        self._nested_defs.append(set())
        self.generic_visit(node)
        self._nested_defs.pop()
        self._function_depth -= 1

    def _is_nested_function(self, name: str) -> bool:
        return any(name in scope for scope in self._nested_defs)

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_dispatch(node):
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                self._check_payload(value)
        self.generic_visit(node)

    def _is_dispatch(self, node: ast.Call) -> bool:
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _POOL_DISPATCH_ATTRS:
                return True
        name = dotted_name(node.func)
        if name is None:
            return False
        leaf = name.rsplit(".", 1)[-1]
        if leaf in _DISPATCH_NAMES:
            return True
        if leaf in _PROCESS_NAMES:
            return any(kw.arg == "target" for kw in node.keywords)
        return False

    def _check_payload(self, value: ast.AST) -> None:
        if isinstance(value, ast.Lambda):
            self.report(
                value,
                "lambda passed to a multiprocessing dispatch call; lambdas "
                "cannot be pickled — use a module-level function",
            )
        elif isinstance(value, ast.Name) and self._is_nested_function(value.id):
            self.report(
                value,
                f"'{value.id}' is defined in a nested scope; closures cannot "
                "be pickled — hoist it to module level",
            )


# ----------------------------------------------------------------------
# RPL005 — seed-path hygiene
# ----------------------------------------------------------------------


class SeedHygieneRule(Rule):
    """RPL005: no hard-coded seed fallbacks in simulation components."""

    rule_id = "RPL005"
    title = "seed-path hygiene"

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            leaf = name.rsplit(".", 1)[-1]
            if leaf in ("default_rng", "RandomState") and node.args:
                first = node.args[0]
                if (
                    isinstance(first, ast.Constant)
                    and isinstance(first.value, int)
                    and not isinstance(first.value, bool)
                ):
                    self.report(
                        node,
                        f"'{leaf}({first.value})' hard-codes a seed — "
                        "unrelated components end up sharing one stream; "
                        "require an explicit Generator or derive from "
                        "RngStreams",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# RPL006 — hot-path dataclass slots
# ----------------------------------------------------------------------


class HotPathSlotsRule(Rule):
    """RPL006: per-packet dataclasses must opt into ``__slots__``."""

    rule_id = "RPL006"
    title = "hot-path dataclass slots"
    only_dirs = ("repro/net/", "repro/rtp/", "repro/cc/")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        decorator = self._dataclass_decorator(node)
        if (
            decorator is not None
            and not self._has_slots_keyword(decorator)
            and not self._defines_slots(node)
        ):
            self.report(
                node,
                f"dataclass '{node.name}' in a per-packet hot module "
                "without slots; use @dataclass(slots=True) (or define "
                "__slots__) to drop the per-instance __dict__",
            )
        self.generic_visit(node)

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = dotted_name(target)
            if name is not None and name.rsplit(".", 1)[-1] == "dataclass":
                return decorator
        return None

    @staticmethod
    def _has_slots_keyword(decorator: ast.expr) -> bool:
        if not isinstance(decorator, ast.Call):
            return False
        return any(
            kw.arg == "slots"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in decorator.keywords
        )

    @staticmethod
    def _defines_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False


#: Every shipped rule, in catalogue order.
ALL_RULES: tuple[type[Rule], ...] = (
    NondeterminismRule,
    UnitSafetyRule,
    EventHandleRule,
    PicklabilityRule,
    SeedHygieneRule,
    HotPathSlotsRule,
)
