"""Lint findings and suppression pragmas.

A :class:`Finding` pinpoints one invariant violation; a
:class:`PragmaIndex` records which lines of a file opted out of which
rules via ``# repro-lint: ignore[...]`` comments.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>skip-file|ignore)"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel rule set meaning "every rule is ignored on this line".
ALL = frozenset({"*"})


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at a specific source location.

    ``end_line`` extends the anchor over multi-line constructs (the
    cross-module rules report whole call expressions); it is excluded
    from ordering/equality so per-file and cross findings mix freely.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    end_line: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    def render(self) -> str:
        """GCC-style one-line rendering (clickable in most editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class PragmaIndex:
    """Per-line suppression pragmas extracted from one source file.

    Parameters
    ----------
    source:
        Full text of the file. Comments are located with
        :mod:`tokenize`, so pragmas inside string literals are inert.
    """

    def __init__(self, source: str) -> None:
        self.skip_file = False
        self._ignored: dict[int, frozenset[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                self._note_comment(token.start[0], token.string)
        except (tokenize.TokenError, IndentationError):
            # Unparseable files are reported by the runner; pragma
            # extraction just degrades to "no pragmas".
            pass

    def _note_comment(self, line: int, comment: str) -> None:
        match = _PRAGMA_RE.search(comment)
        if match is None:
            return
        if match.group("kind") == "skip-file":
            self.skip_file = True
            return
        rules = match.group("rules")
        if rules is None:
            ignored = ALL
        else:
            ignored = frozenset(
                name.strip().upper() for name in rules.split(",") if name.strip()
            )
        previous = self._ignored.get(line, frozenset())
        self._ignored[line] = previous | ignored

    def is_ignored(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` findings on ``line`` are suppressed."""
        ignored = self._ignored.get(line)
        if ignored is None:
            return False
        return "*" in ignored or rule_id.upper() in ignored

    def to_payload(self) -> dict[str, object]:
        """JSON-able snapshot (stored in the analysis cache)."""
        return {
            "skip_file": self.skip_file,
            "ignored": {
                str(line): sorted(rules)
                for line, rules in self._ignored.items()
            },
        }


def range_ignored(
    payload: dict[str, object], line: int, end_line: int, rule_id: str
) -> bool:
    """Whether a pragma anywhere on ``line``..``end_line`` suppresses.

    Cross-module findings anchor whole (possibly multi-line) call
    expressions, so an ``ignore[...]`` comment on *any* line of the
    call — typically the closing-paren line where black puts trailing
    comments — counts.
    """
    ignored = payload.get("ignored", {})
    rule = rule_id.upper()
    for candidate in range(line, end_line + 1):
        rules = ignored.get(str(candidate))  # type: ignore[union-attr]
        if rules and ("*" in rules or rule in rules):
            return True
    return False
