"""Lint findings and suppression pragmas.

A :class:`Finding` pinpoints one invariant violation; a
:class:`PragmaIndex` records which lines of a file opted out of which
rules via ``# repro-lint: ignore[...]`` comments.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>skip-file|ignore)"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: Sentinel rule set meaning "every rule is ignored on this line".
ALL = frozenset({"*"})


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """GCC-style one-line rendering (clickable in most editors)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


class PragmaIndex:
    """Per-line suppression pragmas extracted from one source file.

    Parameters
    ----------
    source:
        Full text of the file. Comments are located with
        :mod:`tokenize`, so pragmas inside string literals are inert.
    """

    def __init__(self, source: str) -> None:
        self.skip_file = False
        self._ignored: dict[int, frozenset[str]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                self._note_comment(token.start[0], token.string)
        except (tokenize.TokenError, IndentationError):
            # Unparseable files are reported by the runner; pragma
            # extraction just degrades to "no pragmas".
            pass

    def _note_comment(self, line: int, comment: str) -> None:
        match = _PRAGMA_RE.search(comment)
        if match is None:
            return
        if match.group("kind") == "skip-file":
            self.skip_file = True
            return
        rules = match.group("rules")
        if rules is None:
            ignored = ALL
        else:
            ignored = frozenset(
                name.strip().upper() for name in rules.split(",") if name.strip()
            )
        previous = self._ignored.get(line, frozenset())
        self._ignored[line] = previous | ignored

    def is_ignored(self, line: int, rule_id: str) -> bool:
        """Whether ``rule_id`` findings on ``line`` are suppressed."""
        ignored = self._ignored.get(line)
        if ignored is None:
            return False
        return "*" in ignored or rule_id.upper() in ignored
