"""Finding renderers (text/JSON/SARIF) and the findings baseline.

The machine-readable formats make the linter composable: ``--format
json`` for scripting, ``--format sarif`` for GitHub code scanning.
The :class:`Baseline` lets CI gate on *new* findings only — the
checked-in ``lint-baseline.json`` is expected to stay empty (the repo
lints clean), but the mechanism allows a finding to be grandfathered
deliberately instead of pragma'd when a rule is introduced before the
fix lands.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.lint.findings import Finding

#: Schema version of the JSON finding/baseline payloads.
JSON_VERSION = 1


def _finding_dict(finding: Finding) -> dict[str, Any]:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "end_line": finding.end_line,
        "rule": finding.rule_id,
        "message": finding.message,
    }


def finding_from_dict(payload: dict[str, Any]) -> Finding:
    """Inverse of the JSON finding encoding (used by the cache)."""
    return Finding(
        path=payload["path"],
        line=payload["line"],
        col=payload["col"],
        rule_id=payload["rule"],
        message=payload["message"],
        end_line=payload.get("end_line", 0),
    )


def render_text(
    findings: Sequence[Finding], summary: dict[str, Any] | None = None
) -> str:
    """GCC-style one-per-line rendering plus a summary line."""
    lines = [finding.render() for finding in findings]
    if summary is not None:
        checked = summary.get("files", 0)
        if findings:
            lines.append(f"{len(findings)} finding(s) in {checked} file(s)")
        else:
            lines.append(f"checked {checked} file(s): no findings")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], summary: dict[str, Any] | None = None
) -> str:
    """Stable machine-readable payload for scripting."""
    payload: dict[str, Any] = {
        "version": JSON_VERSION,
        "findings": [_finding_dict(finding) for finding in findings],
    }
    if summary is not None:
        payload["summary"] = summary
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(
    findings: Sequence[Finding],
    rule_info: Sequence[tuple[str, str, str]] = (),
) -> str:
    """Minimal SARIF 2.1.0 log (GitHub code-scanning compatible).

    ``rule_info`` rows are ``(rule_id, title, description)`` and become
    the driver's rule catalogue, so code-scanning shows titles instead
    of bare ids.
    """
    rules = [
        {
            "id": rule_id,
            "name": title.replace(" ", "-") or rule_id,
            "shortDescription": {"text": title or rule_id},
            "fullDescription": {"text": description or title or rule_id},
        }
        for rule_id, title, description in rule_info
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                            "endLine": finding.end_line,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    log = {
        "version": "2.1.0",
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


class Baseline:
    """Multiset of accepted finding fingerprints.

    A fingerprint is ``(path, rule, message)`` — deliberately excluding
    the line number, so unrelated edits that shift a grandfathered
    finding up or down do not resurface it. Multiplicity is kept: two
    identical findings with one baselined still reports one.
    """

    def __init__(self, fingerprints: Counter[tuple[str, str, str]]) -> None:
        self.fingerprints = fingerprints

    @staticmethod
    def _fingerprint(finding: Finding) -> tuple[str, str, str]:
        return (finding.path, finding.rule_id, finding.message)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(Counter(cls._fingerprint(f) for f in findings))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls(Counter())
        counts: Counter[tuple[str, str, str]] = Counter()
        for entry in payload.get("findings", []):
            key = (entry["path"], entry["rule"], entry["message"])
            counts[key] += int(entry.get("count", 1))
        return cls(counts)

    def save(self, path: str | Path) -> None:
        entries = [
            {"path": p, "rule": rule, "message": message, "count": count}
            for (p, rule, message), count in sorted(
                self.fingerprints.items()
            )
        ]
        payload = {"version": JSON_VERSION, "findings": entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def new_findings(self, findings: Sequence[Finding]) -> list[Finding]:
        """Findings exceeding their baselined multiplicity."""
        budget = Counter(self.fingerprints)
        fresh: list[Finding] = []
        for finding in findings:
            key = self._fingerprint(finding)
            if budget[key] > 0:
                budget[key] -= 1
            else:
                fresh.append(finding)
        return fresh
