"""``python -m repro.lint`` — run the invariant linter."""

import sys

from repro.lint.runner import run_cli

if __name__ == "__main__":
    sys.exit(run_cli())
