"""File walking, rule orchestration and the lint CLI.

Two entry layers live here:

* the per-file API (:func:`lint_source` / :func:`lint_file` /
  :func:`lint_paths`) — one AST, rules RPL001-006, used by tests and
  by editors that lint a buffer in isolation;
* the project API (:func:`lint_project`) — parses every file once,
  runs the per-file rules *and* extracts cross-module facts from the
  same AST, builds the :class:`~repro.lint.project.ProjectIndex` and
  runs RPL007-010 on top. Per-file results (findings + facts + pragma
  lines) are content-hash cached, so a warm re-run only re-analyzes
  changed files; the cross rules always re-run (they are cheap — the
  expensive part is the per-file AST work).

Exit codes of the CLI: ``0`` clean (or no new findings in baseline
check mode), ``1`` findings, ``2`` usage error, ``3`` internal
analysis error or exceeded ``--max-seconds`` budget.
"""

from __future__ import annotations

import ast
import os
import subprocess
import time
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.lint.findings import Finding, PragmaIndex, range_ignored
from repro.lint.rules import ALL_RULES, Rule

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".repro-cache", ".hypothesis"}

#: Default lint roots (the whole-program analysis scope).
DEFAULT_PATHS = ("src", "tools", "examples", "benchmarks")

#: Default baseline file (checked in; expected to stay empty).
DEFAULT_BASELINE = "lint-baseline.json"

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_INTERNAL = 3


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[type[Rule]] | None = None,
) -> list[Finding]:
    """Lint one source string; returns pragma-filtered findings."""
    if rules is None:
        rules = ALL_RULES
    pragmas = PragmaIndex(source)
    if pragmas.skip_file:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [_syntax_finding(path, exc)]
    return sorted(_file_findings(tree, path, pragmas, rules))


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        rule_id="RPL000",
        message=f"syntax error: {exc.msg}",
    )


def _file_findings(
    tree: ast.AST,
    path: str,
    pragmas: PragmaIndex,
    rules: Sequence[type[Rule]],
) -> list[Finding]:
    findings: list[Finding] = []
    for rule_cls in rules:
        if not rule_cls.applies_to(path):
            continue
        rule = rule_cls(path)
        rule.visit(tree)
        findings.extend(
            finding
            for finding in rule.findings
            if not pragmas.is_ignored(finding.line, finding.rule_id)
        )
    return findings


def lint_file(
    path: str | Path, rules: Sequence[type[Rule]] | None = None
) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), rules)


def iter_python_files(paths: Iterable[str | Path]) -> Iterable[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for root in paths:
        root = Path(root)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield Path(dirpath) / filename


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[type[Rule]] | None = None
) -> list[Finding]:
    """Lint every Python file under ``paths`` (per-file rules only)."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules))
    return findings


# ----------------------------------------------------------------------
# project mode
# ----------------------------------------------------------------------
def _analyze_one(
    source: str, path: str, module: str
) -> dict[str, Any]:
    """Per-file record: findings + cross-module facts + pragma lines.

    The AST is parsed exactly once and shared between the per-file
    rules and the fact extractor. ``skip-file`` sources keep their
    facts (the cross-module analysis must stay sound — a skipped file
    still *emits* trace names and *derives* RNG labels) but contribute
    no findings of their own.
    """
    from repro.lint.output import _finding_dict
    from repro.lint.project import extract_facts

    pragmas = PragmaIndex(source)
    record: dict[str, Any] = {
        "pragmas": pragmas.to_payload(),
        "findings": [],
        "facts": None,
    }
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        record["findings"] = [_finding_dict(_syntax_finding(path, exc))]
        return record
    if not pragmas.skip_file:
        record["findings"] = [
            _finding_dict(finding)
            for finding in _file_findings(tree, path, pragmas, ALL_RULES)
        ]
    record["facts"] = extract_facts(source, path, module)
    return record


def lint_project(
    paths: Iterable[str | Path] | None = None,
    *,
    sources: dict[str, str] | None = None,
    select: set[str] | None = None,
    cache: "Any | None" = None,
    root: str | Path | None = None,
) -> tuple[list[Finding], dict[str, Any]]:
    """Whole-program lint: per-file rules plus RPL007-010.

    Either ``paths`` (walked on disk) or ``sources`` (``{path:
    source}``, used by tests to lint synthetic projects) must be
    given. ``select`` filters *reported* rule ids only — the analysis
    always runs everything, so cached records stay select-independent.

    Returns ``(findings, summary)`` where the summary carries file and
    cache-hit counts for the CLI's closing line.
    """
    from repro.lint.crossrules import run_cross_rules
    from repro.lint.output import finding_from_dict
    from repro.lint.project import (
        ProjectIndex,
        content_hash,
        module_name_for,
    )

    if sources is None:
        if paths is None:
            raise ValueError("either paths or sources is required")
        sources = {
            str(file_path): file_path.read_text(encoding="utf-8")
            for file_path in iter_python_files(paths)
        }

    findings: list[Finding] = []
    facts_by_path: dict[str, dict[str, Any]] = {}
    pragmas_by_path: dict[str, dict[str, Any]] = {}
    for path, source in sources.items():
        sha = content_hash(source)
        record = cache.get(path, sha) if cache is not None else None
        if record is None or "pragmas" not in record:
            record = _analyze_one(source, path, module_name_for(path, root))
            if cache is not None:
                cache.put(path, sha, record)
        findings.extend(
            finding_from_dict(payload) for payload in record["findings"]
        )
        pragmas_by_path[path] = record["pragmas"]
        if record["facts"] is not None:
            facts_by_path[path] = record["facts"]

    index = ProjectIndex(facts_by_path)
    for finding in run_cross_rules(index):
        payload = pragmas_by_path.get(finding.path)
        if payload is not None and (
            payload.get("skip_file")
            or range_ignored(
                payload, finding.line, finding.end_line, finding.rule_id
            )
        ):
            continue
        findings.append(finding)

    if select is not None:
        findings = [f for f in findings if f.rule_id in select]
    findings.sort()
    summary: dict[str, Any] = {"files": len(sources)}
    if cache is not None:
        summary["cache_hits"] = cache.hits
        summary["cache_misses"] = cache.misses
    return findings, summary


def changed_files(base: str = "HEAD") -> set[str] | None:
    """Paths differing from ``base`` (tracked diffs + untracked files).

    Returns ``None`` when git is unavailable or the tree is not a
    repository — the caller then falls back to linting everything.
    """
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", base],
            capture_output=True, text=True, check=True, timeout=30,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True, text=True, check=True, timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    changed = set(diff.stdout.split()) | set(untracked.stdout.split())
    return {path for path in changed if path}


def rule_catalogue() -> list[tuple[str, str, str]]:
    """``(rule_id, title, description)`` rows for every rule."""
    from repro.lint.crossrules import CROSS_RULE_INFO

    rows = [
        (rule_cls.rule_id, rule_cls.title, (rule_cls.__doc__ or "").strip())
        for rule_cls in ALL_RULES
    ]
    rows.extend(
        (rule_id, title, description)
        for rule_id, (title, description) in sorted(CROSS_RULE_INFO.items())
    )
    return rows


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def add_lint_arguments(parser: "Any") -> None:
    """Register the lint options (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint "
        f"(default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to report (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report findings only in files differing from HEAD "
        "(analysis still covers the whole project)",
    )
    parser.add_argument(
        "--baseline",
        choices=("write", "check"),
        default=None,
        help="'write' records current findings as accepted; 'check' "
        "fails only on findings absent from the baseline",
    )
    parser.add_argument(
        "--baseline-file",
        default=DEFAULT_BASELINE,
        help=f"baseline path (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file analysis cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="analysis cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="fail (exit 3) if the whole run exceeds this wall-clock "
        "budget — the CI timing guard",
    )
    parser.add_argument(
        "--write-trace-schema",
        action="store_true",
        help="regenerate src/repro/obs/schema.py from the emit sites "
        "and exit",
    )


def run_with_args(args: "Any", parser: "Any") -> int:
    """Execute a parsed lint invocation (shared with ``repro lint``)."""
    from repro.lint.output import Baseline, render_json, render_sarif, render_text
    from repro.lint.project import FactsCache

    started = time.perf_counter()  # repro-lint: ignore[RPL001]  # CLI wall-clock budget, not sim time
    if args.list_rules:
        for rule_id, title, _description in rule_catalogue():
            print(f"{rule_id}  {title}")
        return EXIT_CLEAN

    select: set[str] | None = None
    if args.select is not None:
        select = {name.strip().upper() for name in args.select.split(",")}
        known = {rule_id for rule_id, _t, _d in rule_catalogue()}
        unknown = select - known
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    cache = None if args.no_cache else FactsCache(args.cache_dir)
    try:
        # Cross-module rules are only sound over the whole program: a
        # partial project would misread every out-of-scope emit site
        # as missing. Analyze the full default scope, then report only
        # findings inside the requested paths.
        requested = {str(p) for p in iter_python_files(args.paths)}
        scope = list(args.paths) + [
            p
            for p in DEFAULT_PATHS
            if p not in args.paths and Path(p).exists()
        ]
        sources = {
            str(file_path): file_path.read_text(encoding="utf-8")
            for file_path in iter_python_files(scope)
        }
        if args.write_trace_schema:
            return _write_trace_schema(sources, cache)
        findings, summary = lint_project(
            sources=sources, select=select, cache=cache
        )
        if cache is not None:
            cache.save(sources)
    except Exception as exc:  # noqa: BLE001 — the exit-3 contract
        print(f"repro.lint: internal error: {exc!r}")
        return EXIT_INTERNAL

    if requested != set(sources):
        findings = [f for f in findings if f.path in requested]
        summary["files"] = len(requested)
        summary["analyzed"] = len(sources)

    if args.changed:
        changed = changed_files()
        if changed is not None:
            findings = [f for f in findings if f.path in changed]
            summary["changed_only"] = True

    if args.baseline == "write":
        Baseline.from_findings(findings).save(args.baseline_file)
        print(
            f"wrote {len(findings)} finding(s) to {args.baseline_file}"
        )
        return EXIT_CLEAN
    if args.baseline == "check":
        findings = Baseline.load(args.baseline_file).new_findings(findings)

    if args.format == "json":
        print(render_json(findings, summary))
    elif args.format == "sarif":
        print(render_sarif(findings, rule_catalogue()))
    else:
        text = render_text(findings, summary)
        if text:
            print(text)

    elapsed = time.perf_counter() - started  # repro-lint: ignore[RPL001]  # CLI wall-clock budget, not sim time
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"repro.lint: exceeded --max-seconds budget "
            f"({elapsed:.2f}s > {args.max_seconds:.2f}s)"
        )
        return EXIT_INTERNAL
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _write_trace_schema(
    sources: dict[str, str], cache: "Any | None"
) -> int:
    from repro.lint.crossrules import render_trace_schema
    from repro.lint.project import build_project

    index, errors = build_project(sources, cache=cache)
    if errors:
        for path, exc in errors:
            print(f"repro.lint: cannot parse {path}: {exc.msg}")
        return EXIT_INTERNAL
    target = Path("src/repro/obs/schema.py")
    if not target.parent.is_dir():
        print(f"repro.lint: no such package directory: {target.parent}")
        return EXIT_INTERNAL
    target.write_text(render_trace_schema(index), encoding="utf-8")
    print(f"wrote {target}")
    return EXIT_CLEAN


def run_cli(argv: Sequence[str] | None = None) -> int:
    """Entry point shared by ``python -m repro.lint`` and ``repro lint``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Whole-program invariant linter for the reproduction "
        "(determinism, unit dimensions, trace-schema contracts, RNG "
        "stream discipline, wall-clock taint).",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    return run_with_args(args, parser)
