"""File walking and rule orchestration for :mod:`repro.lint`."""

from __future__ import annotations

import ast
import os
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.findings import Finding, PragmaIndex
from repro.lint.rules import ALL_RULES, Rule

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".repro-cache", ".hypothesis"}


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[type[Rule]] | None = None,
) -> list[Finding]:
    """Lint one source string; returns pragma-filtered findings."""
    if rules is None:
        rules = ALL_RULES
    pragmas = PragmaIndex(source)
    if pragmas.skip_file:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule_id="RPL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule_cls in rules:
        if not rule_cls.applies_to(path):
            continue
        rule = rule_cls(path)
        rule.visit(tree)
        findings.extend(
            finding
            for finding in rule.findings
            if not pragmas.is_ignored(finding.line, finding.rule_id)
        )
    return sorted(findings)


def lint_file(
    path: str | Path, rules: Sequence[type[Rule]] | None = None
) -> list[Finding]:
    """Lint one file on disk."""
    path = Path(path)
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), rules)


def iter_python_files(paths: Iterable[str | Path]) -> Iterable[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for root in paths:
        root = Path(root)
        if root.is_file():
            if root.suffix == ".py":
                yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield Path(dirpath) / filename


def lint_paths(
    paths: Iterable[str | Path], rules: Sequence[type[Rule]] | None = None
) -> list[Finding]:
    """Lint every Python file under ``paths``."""
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules))
    return findings


def run_cli(argv: Sequence[str] | None = None) -> int:
    """Entry point shared by ``python -m repro.lint`` and ``repro lint``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based invariant linter for the reproduction "
        "(determinism, unit safety, event-loop hygiene, picklability).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools", "examples"],
        help="files or directories to lint (default: src tools examples)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_cls in ALL_RULES:
            print(f"{rule_cls.rule_id}  {rule_cls.title}")
        return 0

    rules: Sequence[type[Rule]] | None = None
    if args.select is not None:
        wanted = {name.strip().upper() for name in args.select.split(",")}
        rules = [cls for cls in ALL_RULES if cls.rule_id in wanted]
        unknown = wanted - {cls.rule_id for cls in rules}
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(sorted(unknown))}")

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"no such path(s): {', '.join(missing)}")

    files = list(iter_python_files(args.paths))
    findings: list[Finding] = []
    for file_path in files:
        findings.extend(lint_file(file_path, rules))
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"{len(findings)} finding(s) in {len(files)} file(s)")
        return 1
    print(f"checked {len(files)} file(s): no findings")
    return 0
