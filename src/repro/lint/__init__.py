"""repro.lint — AST-based invariant linter for the reproduction.

The simulator's credibility rests on invariants the interpreter never
checks:

* **determinism** — every stochastic draw flows through
  :class:`repro.util.rng.RngStreams`, so one seed reproduces every
  figure bit-for-bit (RPL001, RPL005);
* **unit safety** — module boundaries speak SI base units (seconds,
  bytes, bits per second); conversions go through
  :mod:`repro.util.units` instead of ad-hoc ``* 1e6`` arithmetic
  (RPL002);
* **event-loop hygiene** — components with a teardown method never
  discard :class:`~repro.net.simulator.EventHandle` results, so a
  stopped component leaves the loop clean (RPL003);
* **picklability** — work handed to the multiprocessing campaign
  runner is module-level, never a closure or lambda (RPL004).

Run it as ``python -m repro.lint src tools examples`` or via the
``repro lint`` CLI subcommand. Suppress a deliberate violation with a
same-line pragma::

    start = time.time()  # repro-lint: ignore[RPL001]

``# repro-lint: ignore`` (no rule list) suppresses every rule on that
line; ``# repro-lint: skip-file`` excludes the whole file.
"""

from __future__ import annotations

from repro.lint.findings import Finding, PragmaIndex
from repro.lint.rules import ALL_RULES, Rule
from repro.lint.runner import lint_file, lint_paths, lint_source

__all__ = [
    "ALL_RULES",
    "Finding",
    "PragmaIndex",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
]
