"""repro.lint — AST-based invariant linter for the reproduction.

The simulator's credibility rests on invariants the interpreter never
checks:

* **determinism** — every stochastic draw flows through
  :class:`repro.util.rng.RngStreams`, so one seed reproduces every
  figure bit-for-bit (RPL001, RPL005);
* **unit safety** — module boundaries speak SI base units (seconds,
  bytes, bits per second); conversions go through
  :mod:`repro.util.units` instead of ad-hoc ``* 1e6`` arithmetic
  (RPL002);
* **event-loop hygiene** — components with a teardown method never
  discard :class:`~repro.net.simulator.EventHandle` results, so a
  stopped component leaves the loop clean (RPL003);
* **picklability** — work handed to the multiprocessing campaign
  runner is module-level, never a closure or lambda (RPL004).

On top of the per-file rules, a whole-program engine
(:mod:`repro.lint.project`) builds a symbol table and import/call
graph over the full tree and runs cross-module dataflow rules
(:mod:`repro.lint.crossrules`):

* **unit dimensions** — a ``*_ms`` value must not flow into a
  ``*_s`` parameter two packages away (RPL007);
* **trace-schema contracts** — every emitted trace/metric name is
  registered in the generated :mod:`repro.obs.schema`, and every name
  a consumer string-matches is actually emitted (RPL008);
* **RNG stream discipline** — one component per derived stream, no
  import-time capture (RPL009);
* **wall-clock taint** — ``time.time()`` values never reach sim-time
  sinks (RPL010).

Run it as ``python -m repro.lint`` or via the ``repro lint`` CLI
subcommand (``--format json|sarif``, ``--changed``, ``--baseline
write|check``). Suppress a deliberate violation with a same-line
pragma::

    start = time.time()  # repro-lint: ignore[RPL001]

``# repro-lint: ignore`` (no rule list) suppresses every rule on that
line; ``# repro-lint: skip-file`` excludes the whole file. For the
cross-module rules the pragma may sit on any line of a multi-line
call expression.
"""

from __future__ import annotations

from repro.lint.findings import Finding, PragmaIndex
from repro.lint.output import Baseline, render_json, render_sarif, render_text
from repro.lint.project import FactsCache, ProjectIndex, build_project
from repro.lint.rules import ALL_RULES, Rule
from repro.lint.runner import lint_file, lint_paths, lint_project, lint_source

__all__ = [
    "ALL_RULES",
    "Baseline",
    "FactsCache",
    "Finding",
    "PragmaIndex",
    "ProjectIndex",
    "Rule",
    "build_project",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "render_json",
    "render_sarif",
    "render_text",
]
