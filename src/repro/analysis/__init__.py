"""Figure rendering: ASCII CDFs, boxplots, tables, sparklines."""

from repro.analysis.render import (
    format_table,
    render_cdf,
    render_boxplots,
    render_sparkline,
)
from repro.analysis.parse import (
    RunAnalysis,
    DatasetReport,
    analyze_run,
    analyze_dataset,
)

__all__ = [
    "format_table",
    "render_cdf",
    "render_boxplots",
    "render_sparkline",
    "RunAnalysis",
    "DatasetReport",
    "analyze_run",
    "analyze_dataset",
]
