"""Text rendering of figures: ASCII CDFs, boxplots and tables.

The paper ships parsing *and visualization* scripts; offline we have
no matplotlib, so the harness renders every figure as text — CDF
curves sampled at fixed points, boxplot five-number rows, and aligned
tables. The benches print these so a run of ``pytest benchmarks``
reproduces each figure as a readable block.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.metrics.stats import BoxplotSummary, Cdf


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_cdf(
    curves: Mapping[str, Cdf],
    points: Sequence[float],
    *,
    title: str,
    unit: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Render CDF curves evaluated at ``points`` as a table.

    One row per evaluation point, one column per curve — the textual
    equivalent of overlaid CDF lines in the paper's figures.
    """
    headers = [f"x {unit}".strip()] + list(curves)
    rows = []
    for point in points:
        row: list[object] = [fmt.format(point)]
        for cdf in curves.values():
            row.append(f"{cdf.fraction_below(point):.3f}")
        rows.append(row)
    return format_table(headers, rows, title=title)


def render_boxplots(
    summaries: Mapping[str, BoxplotSummary | None],
    *,
    title: str,
    scale: float = 1.0,
    unit: str = "",
) -> str:
    """Render boxplot summaries as five-number rows."""
    headers = ["series", f"min {unit}", "q1", "median", "q3", "max", "mean", "n"]
    rows = []
    for name, summary in summaries.items():
        if summary is None:
            rows.append([name, "-", "-", "-", "-", "-", "-", "0"])
            continue
        rows.append(
            [
                name,
                f"{summary.minimum * scale:.2f}",
                f"{summary.q1 * scale:.2f}",
                f"{summary.median * scale:.2f}",
                f"{summary.q3 * scale:.2f}",
                f"{summary.maximum * scale:.2f}",
                f"{summary.mean * scale:.2f}",
                str(summary.count),
            ]
        )
    return format_table(headers, rows, title=title)


def render_sparkline(
    values: Sequence[float],
    *,
    width: int = 72,
    label: str = "",
) -> str:
    """Render a coarse one-line sparkline of a time series."""
    if not values:
        return f"{label} (no data)"
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    step = max(1, len(values) // width)
    chars = []
    for i in range(0, len(values), step):
        window = values[i : i + step]
        level = (max(window) - lo) / span
        chars.append(blocks[min(int(level * (len(blocks) - 1)), len(blocks) - 1)])
    prefix = f"{label} " if label else ""
    return f"{prefix}[{''.join(chars)}] min={lo:.3g} max={hi:.3g}"
