"""Offline dataset analysis — the released parsing scripts' equivalent.

The paper publishes its dataset together with "the parsing and
visualization scripts". This module is that pipeline for this repo's
dataset layout: it computes every Section 4 metric purely from the
exported CSV files (no simulator objects involved), so an external
researcher can regenerate the figures from data alone::

    from repro.analysis.parse import analyze_dataset
    report = analyze_dataset("dataset/")
    print(report.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.render import format_table
from repro.cellular.handover import HET_SUCCESS_THRESHOLD
from repro.metrics.stats import Cdf
from repro.traces.dataset import TraceRun, list_runs, load_run
from repro.util.units import bytes_to_bits, to_mbps, to_ms

#: Remote-piloting playback/stall threshold used throughout the paper.
RP_THRESHOLD_S = 0.300


@dataclass
class RunAnalysis:
    """Metrics of one dataset run, computed from its CSV files."""

    label: str
    environment: str
    platform: str
    cc: str
    operator: str
    duration: float
    packets: int
    goodput_mbps: float
    owd_median_ms: float
    owd_p99_ms: float
    owd_below_100ms: float
    ho_per_s: float
    het_median_ms: float
    het_success_fraction: float
    capacity_mean_mbps: float

    @classmethod
    def from_run(cls, run: TraceRun) -> "RunAnalysis":
        """Reduce one loaded run."""
        delays = np.array([p.one_way_delay for p in run.packets])
        total_bytes = sum(p.size_bytes for p in run.packets)
        hets = np.array([h.execution_time for h in run.handovers])
        capacities = np.array([c.uplink_bps for c in run.channel])
        if delays.size == 0:
            raise ValueError(f"run {run.meta.get('label')} has no packets")
        return cls(
            label=str(run.meta["label"]),
            environment=str(run.meta["environment"]),
            platform=str(run.meta["platform"]),
            cc=str(run.meta["cc"]),
            operator=str(run.meta["operator"]),
            duration=run.duration,
            packets=len(run.packets),
            goodput_mbps=to_mbps(bytes_to_bits(total_bytes) / run.duration),
            owd_median_ms=to_ms(float(np.median(delays))),
            owd_p99_ms=to_ms(float(np.percentile(delays, 99))),
            owd_below_100ms=float(np.mean(delays < 0.1)),
            ho_per_s=len(run.handovers) / run.duration,
            het_median_ms=to_ms(float(np.median(hets))) if hets.size else 0.0,
            het_success_fraction=float(np.mean(hets <= HET_SUCCESS_THRESHOLD))
            if hets.size
            else 1.0,
            capacity_mean_mbps=to_mbps(float(np.mean(capacities)))
            if capacities.size
            else 0.0,
        )


@dataclass
class DatasetReport:
    """Aggregated view over a dataset directory."""

    runs: list[RunAnalysis] = field(default_factory=list)

    def by_series(self) -> dict[str, list[RunAnalysis]]:
        """Group runs by (cc, environment, platform, operator)."""
        grouped: dict[str, list[RunAnalysis]] = {}
        for run in self.runs:
            key = f"{run.cc}-{run.environment}-{run.platform}-{run.operator}"
            grouped.setdefault(key, []).append(run)
        return grouped

    def owd_cdf(self, series: str) -> Cdf:
        """Pooled OWD CDF of one series (requires re-reading packets).

        For the aggregate report the per-run reductions suffice; this
        helper exists for figure-level drill-downs.
        """
        raise NotImplementedError(
            "load the runs with repro.traces.load_run for packet-level CDFs"
        )

    def render(self) -> str:
        """Per-series summary table."""
        rows = []
        for series, runs in sorted(self.by_series().items()):
            rows.append(
                [
                    series,
                    str(len(runs)),
                    f"{np.mean([r.goodput_mbps for r in runs]):.1f}",
                    f"{np.mean([r.owd_median_ms for r in runs]):.0f}",
                    f"{np.mean([r.owd_below_100ms for r in runs]) * 100:.0f}%",
                    f"{np.mean([r.ho_per_s for r in runs]):.3f}",
                    f"{np.mean([r.het_median_ms for r in runs]):.0f}",
                ]
            )
        return format_table(
            [
                "series",
                "runs",
                "goodput Mbps",
                "OWD med ms",
                "OWD<100ms",
                "HO/s",
                "HET med ms",
            ],
            rows,
            title="Dataset summary (computed from CSV files)",
        )


def analyze_run(directory: Path | str) -> RunAnalysis:
    """Analyze a single exported run directory."""
    return RunAnalysis.from_run(load_run(directory))


def analyze_dataset(root: Path | str) -> DatasetReport:
    """Analyze every run directory under ``root``."""
    report = DatasetReport()
    for run_dir in list_runs(root):
        report.runs.append(analyze_run(run_dir))
    if not report.runs:
        raise ValueError(f"no dataset runs found under {root}")
    return report
