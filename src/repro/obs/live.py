"""Live campaign telemetry plane: atomic status file + dashboard.

A running :class:`~repro.runner.engine.CampaignRunner` periodically
dumps a small JSON status file through
:class:`CampaignStatusWriter` — per-worker unit activity, progress
and cache counters, an ETA extrapolated from the executed units'
wall-time history, and live per-cell occupancy gauges harvested from
completed fleet results. The file is written atomically (temp file +
``os.replace``) so a concurrent reader never sees a torn document:
``repro watch`` tails it with :func:`read_status` and renders the
refreshing text dashboard via :func:`render_status`.

Everything here is wall-clock territory by design — the status plane
observes the *campaign*, never the simulation, and no value ever
flows back into sim state.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any

__all__ = ["CampaignStatusWriter", "read_status", "render_status"]


class CampaignStatusWriter:
    """Throttled atomic writer of a campaign's live status file.

    The runner calls :meth:`begin` once per :meth:`run`, :meth:`note`
    per completed unit (cache hits included), :meth:`note_result` per
    result (to harvest fleet cell occupancy), and :meth:`finish` at
    the end. Writes are throttled to one per ``interval`` seconds
    (begin/finish always write), so even a cache-hit storm of
    thousands of units costs a handful of file writes.
    """

    def __init__(
        self,
        path: str,
        *,
        interval: float = 1.0,
        workers: int = 1,
    ) -> None:
        self.path = str(path)
        self.interval = float(interval)
        self.workers = max(int(workers), 1)
        self.done = 0
        self.total = 0
        self.cache_hits = 0
        self.executed = 0
        self.finished = False
        self._workers: dict[str, dict[str, Any]] = {}
        self._cells: dict[int, dict[str, int]] = {}
        self._executed_wall = 0.0
        self._last_write = float("-inf")

    # ------------------------------------------------------------------
    # runner hooks
    # ------------------------------------------------------------------
    def begin(self, total: int) -> None:
        """Start (or restart) a campaign of ``total`` units."""
        self.total = total
        self.done = 0
        self.cache_hits = 0
        self.executed = 0
        self.finished = False
        self._workers.clear()
        self._cells.clear()
        self._executed_wall = 0.0
        self._write(force=True)

    def note(self, record: Any, done: int, total: int) -> None:
        """Register one completed unit's telemetry record."""
        self.done = done
        self.total = total
        if record.cache_hit:
            self.cache_hits += 1
        else:
            self.executed += 1
            self._executed_wall += record.wall_time
        self._workers[record.worker] = {
            "unit": record.unit,
            "wall_time": record.wall_time,
            "cache_hit": record.cache_hit,
        }
        self._write()

    def note_result(self, result: Any) -> None:
        """Harvest per-cell occupancy gauges from a fleet result."""
        peak = getattr(result, "peak_occupancy", None)
        occupancy = getattr(result, "occupancy", None)
        if not isinstance(peak, dict):
            return
        for cell, count in peak.items():
            entry = self._cells.setdefault(
                int(cell), {"peak": 0, "last": 0}
            )
            entry["peak"] = max(entry["peak"], int(count))
        if isinstance(occupancy, dict):
            for cell, count in occupancy.items():
                entry = self._cells.setdefault(
                    int(cell), {"peak": 0, "last": 0}
                )
                entry["last"] = int(count)
        self._write()

    def finish(self) -> None:
        """Mark the campaign finished and flush a final status."""
        self.finished = True
        self._write(force=True)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    @property
    def eta_s(self) -> float | None:
        """Projected wall seconds left, from executed-unit history."""
        remaining = max(self.total - self.done, 0)
        if remaining == 0:
            return 0.0
        if self.executed == 0:
            return None
        mean_wall = self._executed_wall / self.executed
        return remaining * mean_wall / self.workers

    def to_dict(self) -> dict[str, Any]:
        """Status document (what lands in the JSON file)."""
        return {
            "updated_unix": time.time(),  # repro-lint: ignore[RPL001]  # wall-clock status plane
            "finished": self.finished,
            "done": self.done,
            "total": self.total,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "eta_s": self.eta_s,
            "workers": dict(self._workers),
            "cells": {str(cell): dict(entry)
                      for cell, entry in sorted(self._cells.items())},
        }

    def _write(self, force: bool = False) -> None:
        now = time.monotonic()  # repro-lint: ignore[RPL001]  # write throttle
        if not force and now - self._last_write < self.interval:
            return
        self._last_write = now
        payload = json.dumps(self.to_dict(), indent=2, sort_keys=True)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        # Atomic on POSIX: a concurrent `repro watch` reader sees
        # either the previous complete document or this one, never a
        # torn write.
        os.replace(tmp, self.path)


def read_status(path: str) -> dict[str, Any] | None:
    """Load a status file; ``None`` when absent or mid-rotation.

    ``os.replace`` makes torn documents impossible, but the watcher
    may race the very first write or a deleted file — both read as
    "no status yet" rather than an error.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return None


def _format_eta(eta_s: float | None) -> str:
    if eta_s is None:
        return "eta --"
    if eta_s >= 3600:
        return f"eta {eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"eta {eta_s / 60:.1f}m"
    return f"eta {eta_s:.0f}s"


def render_status(status: dict[str, Any] | None) -> str:
    """Text dashboard body for one status document."""
    if not status:
        return "no campaign status yet"
    done = status.get("done", 0)
    total = status.get("total", 0)
    width = 24
    filled = int(width * done / total) if total else 0
    bar = "#" * filled + "-" * (width - filled)
    state = "done" if status.get("finished") else _format_eta(
        status.get("eta_s")
    )
    lines = [
        f"campaign [{bar}] {done}/{total} units · "
        f"{status.get('cache_hits', 0)} cached · "
        f"{status.get('executed', 0)} executed · {state}"
    ]
    workers = status.get("workers") or {}
    if workers:
        lines.append("workers:")
        name_width = max(len(name) for name in workers)
        for name in sorted(workers):
            entry = workers[name]
            source = "cache" if entry.get("cache_hit") else (
                f"{entry.get('wall_time', 0.0):.2f}s"
            )
            lines.append(
                f"  {name:<{name_width}}  {entry.get('unit', '?')}  "
                f"[{source}]"
            )
    cells = status.get("cells") or {}
    if cells:
        parts = [
            f"cell {cell}: {entry.get('last', 0)} UEs "
            f"(peak {entry.get('peak', 0)})"
            for cell, entry in sorted(
                cells.items(), key=lambda item: int(item[0])
            )
        ]
        lines.append("cells: " + " · ".join(parts))
    return "\n".join(lines)
