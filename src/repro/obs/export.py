"""JSONL serialization of traces and metric snapshots.

One JSON object per line, in three shapes::

    {"type": "event", "name": ..., "t": ..., "labels": {...}, "depth": n}
    {"type": "span", "name": ..., "t0": ..., "t1": ..., "labels": {...},
     "depth": n}
    {"type": "metric", "kind": "counter"|"gauge"|"histogram", ...}

Metric lines reuse the exact :meth:`MetricsRegistry.snapshot` record
layout, so an export/import round trip reproduces both the trace and
the registry bit-for-bit. Line order is trace first (recording
order), then the sorted metric snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder, TraceEvent, TraceRecord, TraceSpan


def trace_to_dicts(trace: Iterable[TraceRecord]) -> list[dict]:
    """Render trace records as plain dicts (JSON-able)."""
    lines: list[dict] = []
    for record in trace:
        if isinstance(record, TraceSpan):
            lines.append({
                "type": "span", "name": record.name, "t0": record.t0,
                "t1": record.t1, "labels": dict(record.labels),
                "depth": record.depth,
            })
        else:
            lines.append({
                "type": "event", "name": record.name, "t": record.time,
                "labels": dict(record.labels), "depth": record.depth,
            })
    return lines


def record_from_dict(data: dict) -> TraceRecord:
    """Rebuild one trace record from its dict rendering.

    A span line missing ``t1`` (or carrying ``null``) — a truncated
    export whose end event was never written — loads as an *open*
    span rather than failing the whole import.
    """
    if data["type"] == "span":
        return TraceSpan(
            name=data["name"], t0=data["t0"], t1=data.get("t1"),
            labels=dict(data.get("labels", {})),
            depth=int(data.get("depth", 0)),
        )
    if data["type"] == "event":
        return TraceEvent(
            name=data["name"], time=data["t"],
            labels=dict(data.get("labels", {})),
            depth=int(data.get("depth", 0)),
        )
    raise ValueError(f"unknown trace record type {data['type']!r}")


def iter_jsonl_lines(
    trace: Iterable[TraceRecord],
    registry: MetricsRegistry | None = None,
) -> Iterable[str]:
    """Yield the JSONL line rendering of a trace (+ metric snapshot).

    The single serialization path shared by :func:`write_jsonl` and
    ``repro trace --format json``, so files and CLI output are always
    byte-compatible.
    """
    for line in trace_to_dicts(trace):
        yield json.dumps(line, sort_keys=True)
    if registry is not None:
        for record in registry.snapshot():
            yield json.dumps({"type": "metric", **record}, sort_keys=True)


def write_jsonl(path: str | Path, recorder: Recorder) -> Path:
    """Write the recorder's trace + metric snapshot to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for line in iter_jsonl_lines(recorder.trace, recorder.registry):
            handle.write(line + "\n")
    return path


def read_jsonl(path: str | Path) -> tuple[list[TraceRecord], MetricsRegistry]:
    """Load a JSONL export back into (trace records, registry).

    Tolerates a **trailing partial line**: a file still being written
    (``repro trace --follow``) or truncated by a crash ends, at worst,
    with one incomplete record that has no newline terminator yet —
    that tail is skipped rather than failing the whole import. Invalid
    JSON on an *interior* (newline-terminated) line still raises: that
    is corruption, not an in-progress write.
    """
    trace: list[TraceRecord] = []
    snapshot: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            terminated = line.endswith("\n")
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                if not terminated:
                    # In-progress tail of a growing/truncated file.
                    break
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON ({error})"
                ) from error
            if data.get("type") == "metric":
                snapshot.append(
                    {key: value for key, value in data.items() if key != "type"}
                )
            else:
                trace.append(record_from_dict(data))
    return trace, MetricsRegistry.from_snapshot(snapshot)


class TraceFollower:
    """Incremental reader of a growing trace JSONL file.

    Backs ``repro trace --follow``: each :meth:`poll` returns the
    trace records appended since the previous poll, reading from the
    remembered byte offset. A trailing partial line (the writer is
    mid-record) is buffered, not parsed — it completes on a later
    poll once its newline arrives. A file that does not exist yet
    simply yields nothing. Metric lines are accumulated separately in
    :attr:`registry_snapshot` (the dashboard renders records, the
    snapshot arrives at export end).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.registry_snapshot: list[dict] = []
        self._offset = 0
        self._tail = ""

    def poll(self) -> list[TraceRecord]:
        """Read and parse whatever was appended since the last poll."""
        try:
            with self.path.open("r", encoding="utf-8") as handle:
                handle.seek(0, 2)
                size = handle.tell()
                if size < self._offset:
                    # Truncated/rotated underneath us: start over.
                    self._offset = 0
                    self._tail = ""
                handle.seek(self._offset)
                chunk = handle.read()
                self._offset = handle.tell()
        except FileNotFoundError:
            return []
        if not chunk:
            return []
        text = self._tail + chunk
        lines = text.split("\n")
        # The fragment after the last newline is an in-progress write;
        # keep it for the next poll.
        self._tail = lines.pop()
        records: list[TraceRecord] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if data.get("type") == "metric":
                self.registry_snapshot.append(
                    {key: value for key, value in data.items() if key != "type"}
                )
            else:
                records.append(record_from_dict(data))
        return records
