"""JSONL serialization of traces and metric snapshots.

One JSON object per line, in three shapes::

    {"type": "event", "name": ..., "t": ..., "labels": {...}, "depth": n}
    {"type": "span", "name": ..., "t0": ..., "t1": ..., "labels": {...},
     "depth": n}
    {"type": "metric", "kind": "counter"|"gauge"|"histogram", ...}

Metric lines reuse the exact :meth:`MetricsRegistry.snapshot` record
layout, so an export/import round trip reproduces both the trace and
the registry bit-for-bit. Line order is trace first (recording
order), then the sorted metric snapshot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import Recorder, TraceEvent, TraceRecord, TraceSpan


def trace_to_dicts(trace: Iterable[TraceRecord]) -> list[dict]:
    """Render trace records as plain dicts (JSON-able)."""
    lines: list[dict] = []
    for record in trace:
        if isinstance(record, TraceSpan):
            lines.append({
                "type": "span", "name": record.name, "t0": record.t0,
                "t1": record.t1, "labels": dict(record.labels),
                "depth": record.depth,
            })
        else:
            lines.append({
                "type": "event", "name": record.name, "t": record.time,
                "labels": dict(record.labels), "depth": record.depth,
            })
    return lines


def record_from_dict(data: dict) -> TraceRecord:
    """Rebuild one trace record from its dict rendering.

    A span line missing ``t1`` (or carrying ``null``) — a truncated
    export whose end event was never written — loads as an *open*
    span rather than failing the whole import.
    """
    if data["type"] == "span":
        return TraceSpan(
            name=data["name"], t0=data["t0"], t1=data.get("t1"),
            labels=dict(data.get("labels", {})),
            depth=int(data.get("depth", 0)),
        )
    if data["type"] == "event":
        return TraceEvent(
            name=data["name"], time=data["t"],
            labels=dict(data.get("labels", {})),
            depth=int(data.get("depth", 0)),
        )
    raise ValueError(f"unknown trace record type {data['type']!r}")


def iter_jsonl_lines(
    trace: Iterable[TraceRecord],
    registry: MetricsRegistry | None = None,
) -> Iterable[str]:
    """Yield the JSONL line rendering of a trace (+ metric snapshot).

    The single serialization path shared by :func:`write_jsonl` and
    ``repro trace --format json``, so files and CLI output are always
    byte-compatible.
    """
    for line in trace_to_dicts(trace):
        yield json.dumps(line, sort_keys=True)
    if registry is not None:
        for record in registry.snapshot():
            yield json.dumps({"type": "metric", **record}, sort_keys=True)


def write_jsonl(path: str | Path, recorder: Recorder) -> Path:
    """Write the recorder's trace + metric snapshot to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for line in iter_jsonl_lines(recorder.trace, recorder.registry):
            handle.write(line + "\n")
    return path


def read_jsonl(path: str | Path) -> tuple[list[TraceRecord], MetricsRegistry]:
    """Load a JSONL export back into (trace records, registry)."""
    trace: list[TraceRecord] = []
    snapshot: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON ({error})"
                ) from error
            if data.get("type") == "metric":
                snapshot.append(
                    {key: value for key, value in data.items() if key != "type"}
                )
            else:
                trace.append(record_from_dict(data))
    return trace, MetricsRegistry.from_snapshot(snapshot)
