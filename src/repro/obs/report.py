"""Session diagnosis: SLO evaluation + attribution + reporting.

:func:`diagnose` is the one entry point: give it a trace (live
recorder or JSONL import) and it returns a :class:`Diagnosis` —
resolved SLO table, violations, ranked attributions and a mergeable
:class:`DiagnosisSummary`. The summary is embedded in the diagnosis
dict so :class:`repro.runner.engine.CampaignRunner` can aggregate
violation/attribution counts across seeds and configs without
re-running detection — e.g. the paper's Fig. 9 claim ("most latency
violations coincide with handovers") becomes
``summary.attribution_fraction("playback_latency", "handover")``.

The module is deliberately independent of :mod:`repro.core` and
:mod:`repro.metrics`: it consumes only trace records, so it works the
same on a live session and on an exported JSONL file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.attribute import (
    Attribution,
    Cause,
    DEFAULT_LAG_HORIZON,
    UNEXPLAINED,
    attribute,
    causes_from_trace,
)
from repro.obs.detect import (
    Violation,
    evaluate_slos,
    session_config_labels,
)
from repro.obs.recorder import TraceRecord
from repro.obs.slo import SloRegistry

#: Version stamp on every diagnosis payload (bump on shape changes).
SCHEMA_VERSION = 1

#: Default detection warm-up (sim seconds): startup transients — codec
#: ramp, jitter-buffer fill — are not violations.
DEFAULT_WARMUP = 5.0


# ----------------------------------------------------------------------
# mergeable campaign summary
# ----------------------------------------------------------------------
@dataclass
class DiagnosisSummary:
    """Order-independent aggregate of diagnoses across sessions.

    ``primary_causes`` maps ``slo -> cause kind -> count of violations
    whose top-ranked cause has that kind`` (including the explicit
    ``unexplained`` bucket), which is exactly the numerator of the
    paper's "fraction of X violations attributable to Y" statements.
    """

    sessions: int = 0
    violation_counts: dict[str, int] = field(default_factory=dict)
    violation_seconds: dict[str, float] = field(default_factory=dict)
    primary_causes: dict[str, dict[str, int]] = field(default_factory=dict)

    def add_session(self, attributions: Iterable[Attribution]) -> None:
        """Fold one session's attributions into the aggregate."""
        self.sessions += 1
        for attribution in attributions:
            violation = attribution.violation
            slo = violation.slo
            self.violation_counts[slo] = self.violation_counts.get(slo, 0) + 1
            self.violation_seconds[slo] = (
                self.violation_seconds.get(slo, 0.0) + violation.duration
            )
            per_slo = self.primary_causes.setdefault(slo, {})
            kind = attribution.primary
            per_slo[kind] = per_slo.get(kind, 0) + 1

    def merge(self, other: "DiagnosisSummary") -> None:
        """Fold another aggregate in (commutative and associative)."""
        self.sessions += other.sessions
        for slo, count in other.violation_counts.items():
            self.violation_counts[slo] = (
                self.violation_counts.get(slo, 0) + count
            )
        for slo, seconds in other.violation_seconds.items():
            self.violation_seconds[slo] = (
                self.violation_seconds.get(slo, 0.0) + seconds
            )
        for slo, kinds in other.primary_causes.items():
            per_slo = self.primary_causes.setdefault(slo, {})
            for kind, count in kinds.items():
                per_slo[kind] = per_slo.get(kind, 0) + count

    def attribution_fraction(self, slo: str, kind: str) -> float:
        """Fraction of ``slo`` violations whose primary cause is ``kind``."""
        total = self.violation_counts.get(slo, 0)
        if total == 0:
            return 0.0
        return self.primary_causes.get(slo, {}).get(kind, 0) / total

    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendering with deterministic key order."""
        return {
            "sessions": self.sessions,
            "violation_counts": dict(sorted(self.violation_counts.items())),
            "violation_seconds": {
                slo: round(seconds, 6)
                for slo, seconds in sorted(self.violation_seconds.items())
            },
            "primary_causes": {
                slo: dict(sorted(kinds.items()))
                for slo, kinds in sorted(self.primary_causes.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DiagnosisSummary":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            sessions=int(data.get("sessions", 0)),
            violation_counts={
                str(slo): int(count)
                for slo, count in data.get("violation_counts", {}).items()
            },
            violation_seconds={
                str(slo): float(seconds)
                for slo, seconds in data.get("violation_seconds", {}).items()
            },
            primary_causes={
                str(slo): {str(k): int(v) for k, v in kinds.items()}
                for slo, kinds in data.get("primary_causes", {}).items()
            },
        )

    def render(self) -> str:
        """Campaign-level text table."""
        lines = [f"sessions diagnosed: {self.sessions}"]
        if not self.violation_counts:
            lines.append("no SLO violations")
            return "\n".join(lines)
        for slo in sorted(self.violation_counts):
            count = self.violation_counts[slo]
            seconds = self.violation_seconds.get(slo, 0.0)
            lines.append(f"{slo}: {count} violations ({seconds:.1f} s)")
            kinds = self.primary_causes.get(slo, {})
            for kind in sorted(kinds, key=lambda k: (-kinds[k], k)):
                fraction = kinds[kind] / count
                lines.append(f"  {kind}: {kinds[kind]} ({fraction:.0%})")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# per-session diagnosis
# ----------------------------------------------------------------------
@dataclass
class Diagnosis:
    """Complete diagnosis of one session."""

    label: str
    duration: float
    slos: list[dict[str, Any]] = field(default_factory=list)
    attributions: list[Attribution] = field(default_factory=list)
    causes: list[Cause] = field(default_factory=list)

    @property
    def violations(self) -> list[Violation]:
        """The detected violations, in time order."""
        return [attribution.violation for attribution in self.attributions]

    def summary(self) -> DiagnosisSummary:
        """Mergeable one-session aggregate."""
        summary = DiagnosisSummary()
        summary.add_session(self.attributions)
        return summary

    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendering (JSON-able, schema-versioned)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "label": self.label,
            "duration": self.duration,
            "slos": list(self.slos),
            "attributions": [
                attribution.to_dict() for attribution in self.attributions
            ],
            "causes": [cause.to_dict() for cause in self.causes],
            "summary": self.summary().to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Diagnosis":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            label=data.get("label", ""),
            duration=float(data.get("duration", 0.0)),
            slos=list(data.get("slos", [])),
            attributions=[
                Attribution.from_dict(item)
                for item in data.get("attributions", [])
            ],
            causes=[
                Cause.from_dict(item) for item in data.get("causes", [])
            ],
        )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self, fmt: str = "text") -> str:
        """Human-readable report (``fmt``: ``"text"`` or ``"markdown"``)."""
        if fmt == "markdown":
            return self._render_markdown()
        if fmt == "text":
            return self._render_text()
        raise ValueError(f"unknown diagnosis format {fmt!r}")

    def _headline(self) -> str:
        label = self.label or "session"
        return (
            f"diagnosis: {label} ({self.duration:.0f} s, "
            f"{len(self.attributions)} violation"
            f"{'' if len(self.attributions) == 1 else 's'}, "
            f"{len(self.causes)} candidate causes)"
        )

    def _render_text(self) -> str:
        lines = [self._headline()]
        if not self.attributions:
            lines.append("all SLOs met")
            return "\n".join(lines)
        for attribution in self.attributions:
            violation = attribution.violation
            lines.append(
                f"[{violation.t0:8.3f} .. {violation.t1:8.3f}] "
                f"{violation.slo}: {violation.signal} {violation.worst:.1f} "
                f"(limit {violation.op} {violation.threshold:.1f}, "
                f"{violation.duration:.1f} s)"
            )
            if attribution.causes:
                for ranked in attribution.causes:
                    lines.append(
                        f"    {ranked.score:.2f} {ranked.cause.kind}: "
                        f"{ranked.cause.detail}"
                    )
            else:
                lines.append(f"    -- {UNEXPLAINED}")
        return "\n".join(lines)

    def _render_markdown(self) -> str:
        lines = [f"# {self._headline()}", ""]
        lines.append("## SLOs")
        lines.append("")
        lines.append("| SLO | signal | objective | window |")
        lines.append("| --- | --- | --- | --- |")
        for slo in self.slos:
            threshold = slo.get("threshold")
            objective = (
                f"{slo['op']} {threshold:g}" if threshold is not None
                else "(unresolved)"
            )
            lines.append(
                f"| {slo['name']} | {slo['signal']} | {objective} "
                f"| {slo['window']:g} s |"
            )
        lines.append("")
        lines.append("## Violations")
        lines.append("")
        if not self.attributions:
            lines.append("All SLOs met.")
            return "\n".join(lines)
        lines.append("| window (s) | SLO | worst | limit | primary cause |")
        lines.append("| --- | --- | --- | --- | --- |")
        for attribution in self.attributions:
            violation = attribution.violation
            primary = (
                attribution.causes[0].cause.detail
                if attribution.causes else UNEXPLAINED
            )
            lines.append(
                f"| {violation.t0:.2f}–{violation.t1:.2f} "
                f"| {violation.slo} | {violation.worst:.1f} "
                f"| {violation.op} {violation.threshold:.1f} | {primary} |"
            )
        lines.append("")
        lines.append("## Ranked causes")
        lines.append("")
        for attribution in self.attributions:
            violation = attribution.violation
            lines.append(
                f"- **{violation.slo}** at "
                f"{violation.t0:.2f}–{violation.t1:.2f} s:"
            )
            if attribution.causes:
                for ranked in attribution.causes:
                    lines.append(
                        f"  - {ranked.cause.kind} "
                        f"(score {ranked.score:.2f}): {ranked.cause.detail}"
                    )
            else:
                lines.append(f"  - {UNEXPLAINED}")
        return "\n".join(lines)


def diagnose(
    trace: Iterable[TraceRecord],
    registry: Any = None,
    *,
    slos: SloRegistry | None = None,
    warmup: float = DEFAULT_WARMUP,
    lag_horizon: float = DEFAULT_LAG_HORIZON,
) -> Diagnosis:
    """Detect SLO violations in ``trace`` and attribute their causes.

    ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`) is
    accepted for API symmetry with JSONL imports but detection is
    trace-driven; it may be ``None``.
    """
    trace = list(trace)
    labels = session_config_labels(trace)
    violations, resolved = evaluate_slos(
        trace, slos, warmup=warmup, config_labels=labels
    )
    causes = causes_from_trace(trace)
    attributions = attribute(violations, causes, lag_horizon=lag_horizon)
    return Diagnosis(
        label=str(labels.get("label", "")),
        duration=float(labels.get("duration", 0.0)),
        slos=resolved,
        attributions=attributions,
        causes=causes,
    )


# ----------------------------------------------------------------------
# schema validation (hand-rolled; no external jsonschema dependency)
# ----------------------------------------------------------------------
def _expect(condition: bool, message: str, errors: list[str]) -> None:
    if not condition:
        errors.append(message)


def validate_diagnosis(payload: Any) -> list[str]:
    """Check a diagnosis dict against the expected schema.

    Returns a list of human-readable problems (empty = valid). Used by
    CI to gate the exported diagnosis artifact.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["diagnosis payload must be an object"]
    _expect(
        payload.get("schema_version") == SCHEMA_VERSION,
        f"schema_version must be {SCHEMA_VERSION}", errors,
    )
    _expect(isinstance(payload.get("label"), str), "label must be a string",
            errors)
    _expect(
        isinstance(payload.get("duration"), (int, float)),
        "duration must be a number", errors,
    )
    slos = payload.get("slos")
    _expect(isinstance(slos, list), "slos must be a list", errors)
    for i, slo in enumerate(slos if isinstance(slos, list) else []):
        if not isinstance(slo, dict):
            errors.append(f"slos[{i}] must be an object")
            continue
        for key in ("name", "signal", "op", "window"):
            _expect(key in slo, f"slos[{i}] missing {key!r}", errors)
    attributions = payload.get("attributions")
    _expect(isinstance(attributions, list), "attributions must be a list",
            errors)
    for i, attribution in enumerate(
        attributions if isinstance(attributions, list) else []
    ):
        if not isinstance(attribution, dict):
            errors.append(f"attributions[{i}] must be an object")
            continue
        violation = attribution.get("violation")
        if not isinstance(violation, dict):
            errors.append(f"attributions[{i}].violation must be an object")
        else:
            for key in ("slo", "component", "t0", "t1", "threshold", "worst"):
                _expect(
                    key in violation,
                    f"attributions[{i}].violation missing {key!r}", errors,
                )
        _expect(
            isinstance(attribution.get("primary"), str),
            f"attributions[{i}].primary must be a string", errors,
        )
        causes = attribution.get("causes")
        if not isinstance(causes, list):
            errors.append(f"attributions[{i}].causes must be a list")
            continue
        for j, ranked in enumerate(causes):
            if not isinstance(ranked, dict):
                errors.append(
                    f"attributions[{i}].causes[{j}] must be an object"
                )
                continue
            _expect(
                isinstance(ranked.get("score"), (int, float)),
                f"attributions[{i}].causes[{j}].score must be a number",
                errors,
            )
            cause = ranked.get("cause")
            if not isinstance(cause, dict):
                errors.append(
                    f"attributions[{i}].causes[{j}].cause must be an object"
                )
                continue
            for key in ("kind", "t0", "t1", "magnitude"):
                _expect(
                    key in cause,
                    f"attributions[{i}].causes[{j}].cause missing {key!r}",
                    errors,
                )
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        errors.append("summary must be an object")
    else:
        _expect(
            isinstance(summary.get("sessions"), int),
            "summary.sessions must be an integer", errors,
        )
        for key in ("violation_counts", "violation_seconds", "primary_causes"):
            _expect(
                isinstance(summary.get(key), dict),
                f"summary.{key} must be an object", errors,
            )
    return errors
