"""Merge, filter and render trace timelines as text.

The renderer aligns records from different components on one
sim-time axis, which is the diagnosis loop the paper runs on its
testbed logs: put the RRC handover span next to the congestion
controller's reaction and the jitter buffer's gap penalty, and read
off cause and effect::

      t (s)  component  record
    ───────────────────────────────────────────────────────────
     12.300  handover   ▶ handover.execution [+0.032 s] source=3 target=5
     12.355  gcc        · gcc.overuse offset_ms=1.84
     12.405  gcc        · gcc.rate_decrease from_bps=8.1e6 to_bps=6.9e6

Spans print at their start time with a ``[+duration]`` tag; point
events print with a ``·`` marker. Nested records are indented by
their recorded depth.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs.recorder import TraceRecord, TraceSpan


def merge_traces(*traces: Iterable[TraceRecord]) -> list[TraceRecord]:
    """Merge traces into one list ordered by sim time.

    The sort is stable, so records with equal timestamps keep their
    per-trace recording order.
    """
    merged: list[TraceRecord] = []
    for trace in traces:
        merged.extend(trace)
    merged.sort(key=lambda record: record.sort_time)
    return merged


def filter_records(
    records: Iterable[TraceRecord],
    *,
    components: Sequence[str] | None = None,
    t0: float | None = None,
    t1: float | None = None,
) -> list[TraceRecord]:
    """Keep records matching the component set and time window.

    A span is kept when it *overlaps* ``[t0, t1]``; an event when its
    instant falls inside the window.
    """
    kept: list[TraceRecord] = []
    wanted = set(components) if components else None
    for record in records:
        if wanted is not None and record.component not in wanted:
            continue
        if isinstance(record, TraceSpan):
            # An open span (t1 is None) extends to the end of the
            # trace, so only the window's upper bound can exclude it.
            if t0 is not None and record.t1 is not None and record.t1 < t0:
                continue
            if t1 is not None and record.t0 > t1:
                continue
        else:
            if t0 is not None and record.time < t0:
                continue
            if t1 is not None and record.time > t1:
                continue
        kept.append(record)
    return kept


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    return " " + " ".join(
        f"{key}={_format_value(value)}" for key, value in sorted(labels.items())
    )


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def render_timeline(records: Sequence[TraceRecord]) -> str:
    """Render records (already merged/filtered) as an aligned table."""
    lines = [
        "    t (s)  component  record",
        "  " + "─" * 66,
    ]
    if not records:
        lines.append("  (no records)")
        return "\n".join(lines)
    for record in records:
        indent = "  " * record.depth
        if isinstance(record, TraceSpan):
            tag = "open" if record.open else f"+{record.duration:.3f} s"
            body = (
                f"▶ {record.name} [{tag}]"
                f"{_format_labels(record.labels)}"
            )
        else:
            body = f"· {record.name}{_format_labels(record.labels)}"
        lines.append(
            f" {record.sort_time:8.3f}  {record.component:<9}  {indent}{body}"
        )
    return "\n".join(lines)
