"""Observability layer: metrics registry + sim-time tracing.

Public surface:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments, snapshotable and mergeable across
  worker processes;
* :class:`Recorder` — collects metrics plus sim-time trace spans and
  point events stamped by the event-loop clock;
* :data:`NULL_RECORDER` — the near-zero-cost default every component
  holds; untraced runs pay one ``obs.enabled`` attribute check per
  instrumented site;
* JSONL export/import (:func:`write_jsonl` / :func:`read_jsonl`) and
  the text timeline (:func:`merge_traces` / :func:`filter_records` /
  :func:`render_timeline`) behind the ``repro trace`` CLI;
* the diagnosis layer (:mod:`repro.obs.slo` / ``detect`` /
  ``attribute`` / ``report``): a declarative :class:`SloRegistry` of
  the paper's RP requirements, sliding-window :class:`Violation`
  detection over per-second trace bins, ranked root-cause
  :class:`Attribution` against handovers / loss bursts / capacity
  dips / CC rate cuts, and :func:`diagnose` tying it together behind
  ``result.extra["diagnosis"]`` and the ``repro diagnose`` CLI.
"""

from repro.obs.attribute import (
    Attribution,
    Cause,
    RankedCause,
    attribute,
    causes_from_trace,
)
from repro.obs.detect import (
    EwmaZScore,
    Violation,
    WindowedStats,
    evaluate_slos,
    samples_from_trace,
)
from repro.obs.export import (
    TraceFollower,
    iter_jsonl_lines,
    read_jsonl,
    record_from_dict,
    trace_to_dicts,
    write_jsonl,
)
from repro.obs.live import (
    CampaignStatusWriter,
    read_status,
    render_status,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    RATE_BUCKETS,
    SHARE_BUCKETS,
    SINR_DB_BUCKETS,
    Counter,
    FleetMetricsPlane,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_key,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    MetricsRecorder,
    NullRecorder,
    ObsLevel,
    Recorder,
    TraceEvent,
    TraceRecord,
    TraceSpan,
    component_of,
)
from repro.obs.report import (
    Diagnosis,
    DiagnosisSummary,
    diagnose,
    validate_diagnosis,
)
from repro.obs.slo import Slo, SloRegistry, rp_slos
from repro.obs.timeline import filter_records, merge_traces, render_timeline

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_RECORDER",
    "RATE_BUCKETS",
    "SHARE_BUCKETS",
    "SINR_DB_BUCKETS",
    "Attribution",
    "CampaignStatusWriter",
    "Cause",
    "Counter",
    "Diagnosis",
    "DiagnosisSummary",
    "EwmaZScore",
    "FleetMetricsPlane",
    "Gauge",
    "Histogram",
    "MetricsRecorder",
    "MetricsRegistry",
    "NullRecorder",
    "ObsLevel",
    "RankedCause",
    "Recorder",
    "Slo",
    "SloRegistry",
    "TraceEvent",
    "TraceFollower",
    "TraceRecord",
    "TraceSpan",
    "Violation",
    "WindowedStats",
    "attribute",
    "causes_from_trace",
    "component_of",
    "diagnose",
    "evaluate_slos",
    "filter_records",
    "format_key",
    "iter_jsonl_lines",
    "merge_traces",
    "read_jsonl",
    "read_status",
    "record_from_dict",
    "render_status",
    "render_timeline",
    "rp_slos",
    "samples_from_trace",
    "trace_to_dicts",
    "validate_diagnosis",
    "write_jsonl",
]
