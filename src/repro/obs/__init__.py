"""Observability layer: metrics registry + sim-time tracing.

Public surface:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments, snapshotable and mergeable across
  worker processes;
* :class:`Recorder` — collects metrics plus sim-time trace spans and
  point events stamped by the event-loop clock;
* :data:`NULL_RECORDER` — the near-zero-cost default every component
  holds; untraced runs pay one ``obs.enabled`` attribute check per
  instrumented site;
* JSONL export/import (:func:`write_jsonl` / :func:`read_jsonl`) and
  the text timeline (:func:`merge_traces` / :func:`filter_records` /
  :func:`render_timeline`) behind the ``repro trace`` CLI.
"""

from repro.obs.export import read_jsonl, trace_to_dicts, write_jsonl
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_key,
)
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TraceEvent,
    TraceRecord,
    TraceSpan,
    component_of,
)
from repro.obs.timeline import filter_records, merge_traces, render_timeline

__all__ = [
    "DEFAULT_BUCKETS",
    "NULL_RECORDER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "Recorder",
    "TraceEvent",
    "TraceRecord",
    "TraceSpan",
    "component_of",
    "filter_records",
    "format_key",
    "merge_traces",
    "read_jsonl",
    "render_timeline",
    "trace_to_dicts",
    "write_jsonl",
]
