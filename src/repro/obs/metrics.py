"""Lightweight metrics registry: counters, gauges, histograms.

Metrics are keyed by ``component/name`` plus a label set, e.g.
``gcc/target_bitrate{environment=urban}``. The registry is designed
around the campaign engine's process model:

* instruments are plain Python objects with one mutation method each
  (``inc`` / ``set`` / ``observe``) — cheap enough for per-packet
  call sites when tracing is on, absent entirely when it is off;
* :meth:`MetricsRegistry.snapshot` renders the whole registry to
  plain picklable data, which worker processes attach to their
  :class:`~repro.core.session.SessionResult` records;
* :meth:`MetricsRegistry.merge_snapshot` folds such snapshots back
  into a parent-side registry with order-independent rules (counters
  and histograms sum, gauges keep the maximum), so a campaign merge
  is identical for any worker count or completion order.

Histograms use fixed bucket upper bounds so that quantiles are
mergeable across processes: per-bucket counts add, and quantiles are
recovered by linear interpolation inside the owning bucket.
"""

from __future__ import annotations

import bisect
import math
import time
from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

#: Default histogram buckets, tuned for millisecond-scale latencies
#: (values in the instrument's own unit; callers pick the unit).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
    1000.0, 2000.0, 5000.0,
)

LabelItems = tuple[tuple[str, Any], ...]
MetricKey = tuple[str, LabelItems]


def _label_items(labels: dict[str, Any]) -> LabelItems:
    return tuple(sorted(labels.items()))


def format_key(name: str, labels: dict[str, Any]) -> str:
    """Render ``component/name{label=value,...}`` for display/export."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """Monotonically increasing count (merge: sum)."""

    name: str
    labels: dict[str, Any] = field(default_factory=dict)
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Last-written value (merge: maximum, which is order-independent)."""

    name: str
    labels: dict[str, Any] = field(default_factory=dict)
    value: float = math.nan
    maximum: float = math.nan
    updates: int = 0

    def set(self, value: float) -> None:
        """Record the instantaneous value."""
        self.value = float(value)
        if not (self.maximum >= self.value):  # NaN-safe max
            self.maximum = self.value
        self.updates += 1


class Histogram:
    """Fixed-bucket histogram with mergeable quantile estimates.

    Parameters
    ----------
    buckets:
        Strictly increasing upper bounds. Observations above the last
        bound land in an implicit overflow bucket.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "total",
                 "minimum", "maximum")

    def __init__(
        self,
        name: str,
        labels: dict[str, Any] | None = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"buckets must be strictly increasing: {bounds}")
        self.name = name
        self.labels = dict(labels or {})
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate in [0, 1].

        Exact at the recorded extremes: ``q=0`` returns the minimum
        and ``q=1`` the maximum. Inside a bucket the estimate
        interpolates linearly between the bucket's bounds, clamped to
        the observed min/max so estimates never leave the data range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        if q == 0.0:
            return self.minimum
        if q == 1.0:
            return self.maximum
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lower = self.buckets[index - 1] if index > 0 else self.minimum
                if index >= len(self.buckets):
                    upper = self.maximum
                else:
                    upper = self.buckets[index]
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.minimum), self.maximum)
            cumulative += bucket_count
        return self.maximum

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Only histograms with identical bucket edges are mergeable:
        per-bucket counts add positionally, so merging across
        different edges would silently misattribute observations.
        Such a merge raises :class:`ValueError` naming both edge sets.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histogram {format_key(self.name, self.labels)}"
                f": bucket edges differ ({self.buckets} vs {other.buckets})"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Histogram":
        """Rebuild a histogram from its snapshot record."""
        histogram = cls(record["name"], record["labels"], record["buckets"])
        counts = list(record["counts"])
        if len(counts) != len(histogram.counts):
            raise ValueError(
                f"cannot rebuild histogram "
                f"{format_key(record['name'], record['labels'])}: "
                f"{len(counts)} bucket counts for "
                f"{len(histogram.counts)} buckets"
            )
        histogram.counts = counts
        histogram.count = record["count"]
        histogram.total = record["total"]
        histogram.minimum = record["min"]
        histogram.maximum = record["max"]
        return histogram


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Keyed store of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._metrics: dict[MetricKey, Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get-or-create the counter ``name{labels}``."""
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get-or-create the gauge ``name{labels}``."""
        return self._instrument(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """Get-or-create the histogram ``name{labels}``.

        ``buckets`` only applies on first creation; later lookups
        return the existing instrument unchanged.
        """
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, labels, buckets)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"{format_key(name, labels)} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def _instrument(self, cls, name: str, labels: dict[str, Any]):
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name=name, labels=dict(labels))
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"{format_key(name, labels)} already registered as "
                f"{type(metric).__name__}"
            )
        return metric

    def get(self, name: str, **labels: Any) -> Metric | None:
        """Existing instrument for ``name{labels}``, or ``None``."""
        return self._metrics.get((name, _label_items(labels)))

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict[str, Any]]:
        """Plain-data rendering of every instrument (picklable/JSON-able)."""
        records: list[dict[str, Any]] = []
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                records.append({
                    "kind": "counter", "name": metric.name,
                    "labels": dict(metric.labels), "value": metric.value,
                })
            elif isinstance(metric, Gauge):
                records.append({
                    "kind": "gauge", "name": metric.name,
                    "labels": dict(metric.labels), "value": metric.value,
                    "max": metric.maximum, "updates": metric.updates,
                })
            else:
                records.append({
                    "kind": "histogram", "name": metric.name,
                    "labels": dict(metric.labels),
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "count": metric.count, "total": metric.total,
                    "min": metric.minimum, "max": metric.maximum,
                })
        records.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return records

    def merge_snapshot(self, snapshot: list[dict[str, Any]]) -> None:
        """Fold a :meth:`snapshot` into this registry (order-independent)."""
        for record in snapshot:
            kind = record["kind"]
            name = record["name"]
            labels = record["labels"]
            if kind == "counter":
                self.counter(name, **labels).inc(record["value"])
            elif kind == "gauge":
                gauge = self.gauge(name, **labels)
                merged_max = record.get("max", record["value"])
                if not (gauge.maximum >= merged_max):  # NaN-safe
                    gauge.maximum = merged_max
                # Merge rule: a gauge's merged value is its maximum —
                # "last write" is undefined across processes, max is
                # associative and commutative.
                gauge.value = gauge.maximum
                gauge.updates += record.get("updates", 1)
            elif kind == "histogram":
                histogram = self.histogram(
                    name, buckets=record["buckets"], **labels
                )
                histogram.merge(Histogram.from_record(record))
            else:
                raise ValueError(f"unknown metric kind {kind!r}")

    @classmethod
    def from_snapshot(cls, snapshot: list[dict[str, Any]]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        registry.merge_snapshot(snapshot)
        return registry

    def render(self) -> str:
        """Human-readable one-line-per-metric dump (sorted by key)."""
        lines: list[str] = []
        for record in self.snapshot():
            key = format_key(record["name"], record["labels"])
            if record["kind"] == "counter":
                lines.append(f"{key} = {record['value']:g}")
            elif record["kind"] == "gauge":
                lines.append(
                    f"{key} = {record['value']:g} (max {record['max']:g}, "
                    f"{record['updates']} updates)"
                )
            else:
                histogram = Histogram.from_record(record)
                lines.append(
                    f"{key}: n={histogram.count} mean={histogram.mean:.3g} "
                    f"p50={histogram.quantile(0.5):.3g} "
                    f"p99={histogram.quantile(0.99):.3g} "
                    f"max={histogram.maximum:.3g}"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# vectorized fleet metrics plane
# ---------------------------------------------------------------------------

#: Uplink goodput histogram bounds (bits/second).
RATE_BUCKETS: tuple[float, ...] = (
    0.5e6, 1e6, 2e6, 5e6, 10e6, 20e6, 30e6, 50e6, 75e6, 100e6,
)
#: PRB-share histogram bounds (fraction of a fair cell share).
SHARE_BUCKETS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)
#: SINR histogram bounds (dB) — same edges as ``channel/sinr_db``.
SINR_DB_BUCKETS: tuple[float, ...] = (
    -10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0,
)


class FleetMetricsPlane:
    """Struct-of-arrays metrics accumulator for a fleet run.

    The metrics tier of a fleet cannot afford per-member
    ``Recorder.observe`` calls (the whole point of the fast path is
    that no per-member Python work scales with N), so this plane keeps
    the per-member instruments as ``(N,)``/``(N, buckets)`` numpy
    arrays and ingests one row set per fleet tick:

    * :meth:`observe_channels` — the vectorized arm: the
      :class:`~repro.cellular.batch.FleetTicker` calls it once per
      tick, after all member ``_tick``s, reading the live per-channel
      state (``_uplink_bps`` / ``_share_ul`` / ``_sinr_db``).
    * :meth:`observe_samples` — the scalar arm: replays the identical
      per-tick ingestion from the members' recorded
      :class:`~repro.cellular.channel.CapacitySample` lists at collect
      time, so a ``fast=False`` (or batch-fallback) run produces a
      **bit-identical** snapshot — the float accumulation order per
      member is the same sequential per-tick add on both arms.

    :meth:`snapshot` renders the arrays in the exact record format of
    :meth:`MetricsRegistry.snapshot` (histogram edges from
    :data:`RATE_BUCKETS` / :data:`SHARE_BUCKETS` /
    :data:`SINR_DB_BUCKETS`), so plane output merges into any
    registry with the standard order-independent rules.

    Congestion accounting mirrors
    ``Channel._track_congestion`` exactly: a tick is congested iff
    its share is **strictly below** ``congestion_share``, and each
    congested tick contributes ``tick_period`` simulated seconds.
    """

    def __init__(
        self,
        n_members: int,
        *,
        congestion_share: float = 0.75,
        tick_period: float = 0.1,
    ) -> None:
        if n_members <= 0:
            raise ValueError(f"n_members must be positive, got {n_members}")
        self.n_members = n_members
        self.congestion_share = float(congestion_share)
        self.tick_period = float(tick_period)
        self.ticks = 0
        #: Wall seconds spent ingesting (the plane's share of the
        #: ``obs.overhead`` self-metric).
        self.overhead_s = 0.0
        # Wall-clock self-accounting only; never feeds sim state.
        self._timer = time.perf_counter  # repro-lint: ignore[RPL001]  # overhead self-metric
        self._congested = np.zeros(n_members, dtype=np.int64)
        # All three instruments share one stacked array set so a tick
        # costs a handful of numpy calls regardless of spec count.
        # The bucket edge counts happen to be equal; the stacking
        # relies on it.
        self._names = ("fleet/uplink_bps", "fleet/uplink_share",
                       "fleet/sinr_db")
        bucket_sets = (RATE_BUCKETS, SHARE_BUCKETS, SINR_DB_BUCKETS)
        edges = len(bucket_sets[0])
        assert all(len(b) == edges for b in bucket_sets)
        self._buckets = np.asarray(bucket_sets, dtype=np.float64)
        self._counts = np.zeros((3, n_members, edges + 1), dtype=np.int64)
        self._total = np.zeros((3, n_members), dtype=np.float64)
        self._min = np.full((3, n_members), np.inf)
        self._max = np.full((3, n_members), -np.inf)
        self._spec_rows = np.arange(3)[:, None]
        self._member_rows = np.arange(n_members)[None, :]
        self._scratch = np.empty((3, n_members), dtype=np.float64)

    # ------------------------------------------------------------------
    # per-tick ingestion
    # ------------------------------------------------------------------
    def _ingest(self, rows: np.ndarray) -> None:
        """Fold one tick's ``(3, N)`` rows (rate, share, sinr) in."""
        # Count of edges strictly below the value == bisect_left ==
        # searchsorted(side='left'), so bucket attribution is
        # identical to Histogram.observe.
        index = (self._buckets[:, :, None] < rows[:, None, :]).sum(axis=1)
        self._counts[self._spec_rows, self._member_rows, index] += 1
        self._total += rows
        np.minimum(self._min, rows, out=self._min)
        np.maximum(self._max, rows, out=self._max)
        self._congested += rows[1] < self.congestion_share
        self.ticks += 1

    def observe_channels(self, channels) -> None:
        """Ingest the live post-tick state of every member channel."""
        timer = self._timer
        start = timer()
        rows = self._scratch
        for i, channel in enumerate(channels):
            rows[0, i] = channel._uplink_bps
            rows[1, i] = channel._share_ul
            rows[2, i] = channel._sinr_db
        self._ingest(rows)
        self.overhead_s += timer() - start

    def observe_samples(self, member_samples) -> None:
        """Replay recorded per-member sample lists, tick by tick.

        ``member_samples`` is one sample sequence per member, all the
        same length (fleet members tick in lockstep). Each tick goes
        through the same :meth:`_ingest` op as the live arm so float
        totals accumulate in the identical order.
        """
        if not member_samples:
            return
        n_ticks = len(member_samples[0])
        for samples in member_samples:
            if len(samples) != n_ticks:
                raise ValueError(
                    "fleet members must have lockstep sample counts: "
                    f"{len(samples)} vs {n_ticks}"
                )
        timer = self._timer
        start = timer()
        rows = self._scratch
        for k in range(n_ticks):
            for i, samples in enumerate(member_samples):
                sample = samples[k]
                rows[0, i] = sample.uplink_bps
                rows[1, i] = sample.uplink_share
                rows[2, i] = sample.sinr_db
            self._ingest(rows)
        self.overhead_s += timer() - start

    # ------------------------------------------------------------------
    # snapshot / fold
    # ------------------------------------------------------------------
    def snapshot(self) -> list[dict[str, Any]]:
        """Render as :meth:`MetricsRegistry.snapshot`-format records."""
        records: list[dict[str, Any]] = []
        for member in range(self.n_members):
            records.append({
                "kind": "counter", "name": "fleet/ticks",
                "labels": {"member": member}, "value": float(self.ticks),
            })
            records.append({
                "kind": "counter", "name": "fleet/congestion_time",
                "labels": {"member": member},
                "value": float(self._congested[member]) * self.tick_period,
            })
            for spec, name in enumerate(self._names):
                records.append({
                    "kind": "histogram", "name": name,
                    "labels": {"member": member},
                    "buckets": [float(b) for b in self._buckets[spec]],
                    "counts": [int(c) for c in self._counts[spec, member]],
                    "count": self.ticks,
                    "total": float(self._total[spec, member]),
                    "min": float(self._min[spec, member]),
                    "max": float(self._max[spec, member]),
                })
        records.sort(key=lambda r: (r["name"], sorted(r["labels"].items())))
        return records

    def fold_into(self, registry: MetricsRegistry) -> None:
        """Merge this plane's snapshot into ``registry``."""
        registry.merge_snapshot(self.snapshot())


def _declare_fleet_plane_names(obs) -> None:
    """RPL008 declaration twin for names the plane writes directly.

    :class:`FleetMetricsPlane` builds its registry records from numpy
    arrays rather than through recorder calls, so the static
    trace-schema scan cannot see the metric names at their real emit
    sites. This never-called function declares them with literal
    recorder calls the linter does recognize.
    """
    obs.count("fleet/ticks")
    obs.count("fleet/congestion_time")
    obs.observe("fleet/uplink_bps", 0.0)
    obs.observe("fleet/uplink_share", 0.0)
    obs.observe("fleet/sinr_db", 0.0)
