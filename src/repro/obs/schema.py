"""Trace/metric name registry — GENERATED, do not edit by hand.

Regenerate with ``python -m repro.lint --write-trace-schema`` whenever
an instrumentation site is added, renamed or removed; RPL008 fails the
lint when this file and the emit sites disagree. The
:class:`repro.obs.recorder.Recorder` can cross-check names against
this registry at runtime (``warn_unregistered=True``), keeping the
static and dynamic views of the schema in sync.
"""

from __future__ import annotations

#: Every statically-known trace record name (events + spans).
TRACE_NAMES = frozenset({
    "cell.congestion",
    "channel.capacity_dip",
    "channel.interference_outlier",
    "fleet.member_sample",
    "gcc.overuse",
    "gcc.rate_decrease",
    "handover.a3_enter",
    "handover.execution",
    "jitter.gap",
    "loss.burst",
    "obs.overhead",
    "player.underrun",
    "player.window",
    "receiver.owd_anomaly",
    "receiver.window",
    "scream.false_loss",
    "scream.loss",
    "scream.rate_decrease",
    "sender.queue_anomaly",
    "sender.queue_discard",
    "session.config",
})

#: Every statically-known metric name (counters/gauges/histograms).
METRIC_NAMES = frozenset({
    "channel/capacity_dip_episodes",
    "channel/congestion_episodes",
    "channel/downlink_bps",
    "channel/interference_outliers",
    "channel/sinr_db",
    "channel/uplink_bps",
    "fleet/congestion_time",
    "fleet/occupancy",
    "fleet/peak_occupancy",
    "fleet/sinr_db",
    "fleet/ticks",
    "fleet/uplink_bps",
    "fleet/uplink_share",
    "gcc/overuse_events",
    "gcc/packets_acked",
    "gcc/packets_lost",
    "gcc/rtt_ms",
    "gcc/target_bitrate",
    "handover/executed",
    "handover/het_ms",
    "handover/het_over_threshold",
    "jitter/dropped_late",
    "jitter/gap_events",
    "jitter/gap_packets",
    "jitter/released",
    "net/loss_bursts",
    "player/underruns",
    "receiver/bytes",
    "receiver/feedback_sent",
    "receiver/owd_anomaly_episodes",
    "receiver/owd_ms",
    "receiver/packets",
    "scream/cwnd_bytes",
    "scream/false_loss_candidates",
    "scream/loss_events",
    "scream/qdelay_ms",
    "scream/target_bitrate",
    "sender/bytes_sent",
    "sender/encoder_target_bps",
    "sender/frames_encoded",
    "sender/packets_discarded",
    "sender/packets_sent",
    "sender/queue_anomaly_episodes",
    "sender/queue_delay_ms",
    "sender/queue_discards",
})

#: Union view used by the runtime registry check.
ALL_NAMES = TRACE_NAMES | METRIC_NAMES
