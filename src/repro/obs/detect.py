"""SLO violation detection over window samples + streaming anomalies.

Two halves:

* **Online** (runs inside the session, behind ``if obs.enabled``):
  :class:`WindowedStats` folds a component's per-sample stream into
  fixed one-second sim-time bins and emits one ``<component>.window``
  trace event per completed bin (empty bins included, so outages show
  up as zero-rate windows); :class:`EwmaZScore` is a streaming
  EWMA-mean/variance z-score detector that marks anomaly episodes
  (OWD inflation, sender-queue growth, capacity dips) as trace spans.
  Both are pure arithmetic: they draw no random numbers and schedule
  no events, so an instrumented run stays bit-identical to an
  untraced one.

* **Offline** (:func:`samples_from_trace` / :func:`evaluate_slos`):
  rebuild the per-second signal series from the window events of any
  trace — a live recorder's or a JSONL import's — and slide each
  SLO's window over it, coalescing consecutive violating windows into
  :class:`Violation` records.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.recorder import NullRecorder, TraceEvent, TraceRecord
from repro.obs.slo import Slo, SloRegistry
from repro.util.units import bytes_to_bits

#: Width of the base aggregation bins (sim seconds). Window events are
#: emitted on this grid; SLO windows aggregate whole bins.
BASE_WINDOW = 1.0

#: Tolerance when deciding whether two windows touch (coalescing) or
#: whether a bin is partial.
_EPS = 1e-9


# ----------------------------------------------------------------------
# violations
# ----------------------------------------------------------------------
@dataclass
class Violation:
    """One detected SLO violation interval.

    ``worst`` is the most violating signal value inside the interval
    (maximum for ``<=`` objectives, minimum for ``>=``); ``samples``
    counts the violating windows that were coalesced into it.
    """

    slo: str
    component: str
    signal: str
    op: str
    t0: float
    t1: float
    threshold: float
    worst: float
    samples: int = 1

    @property
    def duration(self) -> float:
        """Violation length in sim seconds."""
        return self.t1 - self.t0

    @property
    def magnitude(self) -> float:
        """Relative exceedance of the threshold (0 = at threshold)."""
        scale = max(abs(self.threshold), _EPS)
        return abs(self.worst - self.threshold) / scale

    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendering (JSON-able)."""
        return {
            "slo": self.slo,
            "component": self.component,
            "signal": self.signal,
            "op": self.op,
            "t0": self.t0,
            "t1": self.t1,
            "threshold": self.threshold,
            "worst": self.worst,
            "samples": self.samples,
            "duration": self.duration,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Violation":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            slo=data["slo"],
            component=data["component"],
            signal=data["signal"],
            op=data["op"],
            t0=data["t0"],
            t1=data["t1"],
            threshold=data["threshold"],
            worst=data["worst"],
            samples=int(data.get("samples", 1)),
        )


@dataclass(frozen=True)
class WindowSample:
    """One base-bin observation of a signal."""

    t0: float
    t1: float
    value: float
    partial: bool = False


# ----------------------------------------------------------------------
# online: windowed aggregation emitted as trace events
# ----------------------------------------------------------------------
class WindowedStats:
    """Per-bin sum/max aggregator emitting one trace event per bin.

    Bins are anchored at sim time 0 with :data:`BASE_WINDOW` width.
    ``add`` folds one sample into the current bin; when a sample (or
    :meth:`finish`) crosses into a later bin, every completed bin in
    between is emitted — including empty ones, so a 3-second outage
    produces three zero-sum windows rather than a silent hole. The
    final bin emitted by :meth:`finish` may be shorter than the bin
    width and is tagged ``partial=1``.
    """

    __slots__ = (
        "obs", "name", "width", "_sum_keys", "_max_keys",
        "_sum_vals", "_max_vals", "_index", "_done",
    )

    def __init__(
        self,
        obs: NullRecorder,
        name: str,
        *,
        sums: Sequence[str] = (),
        maxes: Sequence[str] = (),
        width: float = BASE_WINDOW,
    ) -> None:
        self.obs = obs
        self.name = name
        self.width = width
        self._sum_keys = tuple(sums)
        self._max_keys = tuple(maxes)
        self._sum_vals = [0.0] * len(self._sum_keys)
        self._max_vals = [-math.inf] * len(self._max_keys)
        self._index: int | None = None
        self._done = False

    def add(
        self,
        t: float,
        sums: Sequence[float] = (),
        maxes: Sequence[float] = (),
    ) -> None:
        """Fold one sample observed at sim time ``t`` into its bin.

        ``sums`` and ``maxes`` are positional, in the key order given
        at construction — this runs on per-packet paths, so the call
        must not allocate dicts. Pass ``-math.inf`` for a max signal
        absent from this sample.
        """
        if self._done:
            return
        index = int(t / self.width)
        if self._index is None:
            self._index = index
        elif index > self._index:
            self._flush_through(index)
        position = 0
        values = self._sum_vals
        for value in sums:
            values[position] += value
            position += 1
        position = 0
        values = self._max_vals
        for value in maxes:
            if value > values[position]:
                values[position] = value
            position += 1

    def finish(self, t: float) -> None:
        """Emit every remaining bin up to ``t`` (last one partial)."""
        if self._done or self._index is None:
            self._done = True
            return
        index = int(t / self.width)
        self._flush_through(index)
        t0 = self._index * self.width
        if t - t0 > _EPS:
            self._emit(t0, t, partial=True)
        self._done = True

    def _flush_through(self, index: int) -> None:
        while self._index < index:
            t0 = self._index * self.width
            self._emit(t0, t0 + self.width, partial=False)
            self._index += 1

    def _emit(self, t0: float, t1: float, *, partial: bool) -> None:
        labels: dict[str, Any] = {"t0": t0}
        for key, value in zip(self._sum_keys, self._sum_vals):
            labels[key] = value
        for key, value in zip(self._max_keys, self._max_vals):
            if value > -math.inf:
                labels[key] = value
        if partial:
            labels["partial"] = 1
        self.obs.event(self.name, t=t1, **labels)
        self._sum_vals = [0.0] * len(self._sum_keys)
        self._max_vals = [-math.inf] * len(self._max_keys)


class EwmaZScore:
    """Streaming z-score anomaly detector over an EWMA baseline.

    Maintains exponentially weighted estimates of the signal's mean
    and variance; an *episode* opens when the deviation (in the
    configured ``direction``) exceeds ``z_enter`` standard deviations
    and closes when it falls back under ``z_exit``. Each closed
    episode is recorded as one trace span named ``name`` (labels:
    peak value and peak z-score) plus a counter increment, giving the
    attribution engine bufferbloat/queue/capacity evidence that the
    raw per-packet stream is too noisy to show.
    """

    __slots__ = (
        "obs", "name", "alpha", "z_enter", "z_exit", "direction",
        "warmup", "min_std", "min_delta", "_mean", "_var", "_count",
        "_episode_t0", "_peak", "_peak_z",
    )

    def __init__(
        self,
        obs: NullRecorder,
        name: str,
        *,
        alpha: float = 0.05,
        z_enter: float = 3.0,
        z_exit: float = 1.0,
        direction: float = 1.0,
        warmup: int = 30,
        min_std: float = 1e-6,
        min_delta: float = 0.0,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if z_exit > z_enter:
            raise ValueError("z_exit must be <= z_enter")
        self.obs = obs
        self.name = name
        self.alpha = alpha
        self.z_enter = z_enter
        self.z_exit = z_exit
        self.direction = 1.0 if direction >= 0 else -1.0
        self.warmup = warmup
        self.min_std = min_std
        #: Absolute deviation floor (signal units): below it a sample
        #: never opens an episode, however small the running variance —
        #: without it a very quiet baseline turns micro-jitter into a
        #: stream of statistically-significant-but-meaningless episodes.
        self.min_delta = min_delta
        self._mean = 0.0
        self._var = 0.0
        self._count = 0
        self._episode_t0: float | None = None
        self._peak = 0.0
        self._peak_z = 0.0

    @property
    def in_episode(self) -> bool:
        """Whether an anomaly episode is currently open."""
        return self._episode_t0 is not None

    def update(self, t: float, value: float) -> None:
        """Feed one sample observed at sim time ``t``."""
        self._count += 1
        if self._count <= self.warmup:
            # Seed the baseline before detecting anything.
            delta = value - self._mean
            self._mean += delta / self._count
            self._var += (delta * delta - self._var) / self._count
            return
        deviation = self.direction * (value - self._mean)
        if self._episode_t0 is None:
            # Hot path: per-packet feeds where almost every sample is
            # unremarkable. Compare squared deviation against the
            # squared entry bound so the common case pays neither the
            # sqrt nor the division.
            if deviation > 0.0 and deviation >= self.min_delta:
                variance = max(self._var, self.min_std * self.min_std)
                if deviation * deviation > (
                    self.z_enter * self.z_enter * variance
                ):
                    self._episode_t0 = t
                    self._peak = value
                    self._peak_z = deviation / math.sqrt(variance)
        else:
            variance = max(self._var, self.min_std * self.min_std)
            z = deviation / math.sqrt(variance)
            if self.direction * (value - self._peak) > 0:
                self._peak = value
            if z > self._peak_z:
                self._peak_z = z
            if z < self.z_exit:
                self._close(t)
        delta = value - self._mean
        self._mean += self.alpha * delta
        self._var = (1 - self.alpha) * (self._var + self.alpha * delta * delta)

    def finish(self, t: float) -> None:
        """Close an episode left open at session teardown."""
        if self._episode_t0 is not None:
            self._close(t)

    def _close(self, t: float) -> None:
        self.obs.span_at(
            self.name,
            self._episode_t0,
            t,
            peak=self._peak,
            z=round(self._peak_z, 3),
        )
        self.obs.count(self.name.replace(".", "/", 1) + "_episodes")
        self._episode_t0 = None


# ----------------------------------------------------------------------
# offline: rebuild signals from window events and evaluate SLOs
# ----------------------------------------------------------------------
def session_config_labels(trace: Iterable[TraceRecord]) -> dict[str, Any]:
    """Labels of the first ``session.config`` event (empty if absent)."""
    for record in trace:
        if isinstance(record, TraceEvent) and record.name == "session.config":
            return dict(record.labels)
    return {}


def _bin_bounds(event: TraceEvent) -> tuple[float, float]:
    t1 = event.time
    t0 = float(event.labels.get("t0", t1 - BASE_WINDOW))
    return t0, t1


def samples_from_trace(
    trace: Iterable[TraceRecord],
) -> dict[str, list[WindowSample]]:
    """Per-signal base-bin series rebuilt from window trace events.

    Signals (one sample per emitted bin, in trace order):

    * ``fps`` / ``playback_latency_ms`` / ``interframe_gap_ms`` from
      ``player.window`` events (max signals only where the bin played
      at least one frame);
    * ``goodput_bps`` / ``owd_ms`` from ``receiver.window`` events.
    """
    signals: dict[str, list[WindowSample]] = {
        "fps": [], "playback_latency_ms": [], "interframe_gap_ms": [],
        "goodput_bps": [], "owd_ms": [],
    }
    for record in trace:
        if not isinstance(record, TraceEvent):
            continue
        if record.name == "player.window":
            t0, t1 = _bin_bounds(record)
            width = max(t1 - t0, _EPS)
            partial = bool(record.labels.get("partial"))
            frames = float(record.labels.get("frames", 0.0))
            signals["fps"].append(
                WindowSample(t0, t1, frames / width, partial)
            )
            for key, signal in (
                ("latency_ms", "playback_latency_ms"),
                ("gap_ms", "interframe_gap_ms"),
            ):
                value = record.labels.get(key)
                if value is not None:
                    signals[signal].append(
                        WindowSample(t0, t1, float(value), partial)
                    )
        elif record.name == "receiver.window":
            t0, t1 = _bin_bounds(record)
            width = max(t1 - t0, _EPS)
            partial = bool(record.labels.get("partial"))
            signals["goodput_bps"].append(
                WindowSample(
                    t0, t1,
                    bytes_to_bits(float(record.labels.get("bytes", 0.0))) / width,
                    partial,
                )
            )
            owd = record.labels.get("owd_max_ms")
            if owd is not None:
                signals["owd_ms"].append(
                    WindowSample(t0, t1, float(owd), partial)
                )
    return signals


def evaluate_slo(
    slo: Slo,
    samples: Sequence[WindowSample],
    threshold: float,
    *,
    warmup: float = 0.0,
) -> list[Violation]:
    """Slide ``slo``'s window over ``samples`` and coalesce violations.

    The SLO window aggregates ``round(window / BASE_WINDOW)``
    consecutive base bins (maximum for ``<=`` objectives, mean for
    ``>=`` rate objectives), sliding one bin at a time. Consecutive or
    overlapping violating windows merge into a single
    :class:`Violation`; a window starting exactly where the previous
    violation ends extends it (boundary inclusive).
    """
    kept = [
        sample for sample in samples
        if sample.t0 >= warmup - _EPS
        and not (slo.skip_partial and sample.partial)
    ]
    if not kept:
        return []
    n = max(1, round(slo.window / BASE_WINDOW))
    violations: list[Violation] = []
    for start in range(len(kept) - n + 1):
        group = kept[start:start + n]
        # Only aggregate genuinely consecutive bins.
        contiguous = all(
            abs(a.t1 - b.t0) <= _EPS for a, b in zip(group, group[1:])
        )
        if not contiguous:
            continue
        if slo.op == "<=":
            value = max(sample.value for sample in group)
        else:
            value = sum(sample.value for sample in group) / len(group)
        if not slo.violated(value, threshold):
            continue
        t0, t1 = group[0].t0, group[-1].t1
        last = violations[-1] if violations else None
        if last is not None and t0 <= last.t1 + _EPS:
            last.t1 = max(last.t1, t1)
            last.samples += 1
            if slo.op == "<=":
                last.worst = max(last.worst, value)
            else:
                last.worst = min(last.worst, value)
        else:
            violations.append(
                Violation(
                    slo=slo.name,
                    component=slo.component,
                    signal=slo.signal,
                    op=slo.op,
                    t0=t0,
                    t1=t1,
                    threshold=threshold,
                    worst=value,
                )
            )
    return violations


def evaluate_slos(
    trace: Iterable[TraceRecord],
    slos: SloRegistry | None = None,
    *,
    warmup: float = 0.0,
    config_labels: dict[str, Any] | None = None,
) -> tuple[list[Violation], list[dict[str, Any]]]:
    """Evaluate a registry of SLOs against one trace.

    Returns ``(violations, resolved_slos)`` where ``resolved_slos``
    is the plain-data SLO table with per-session thresholds filled in
    (SLOs whose threshold cannot be resolved are listed with
    ``threshold: None`` and skipped).
    """
    registry = slos if slos is not None else SloRegistry.defaults()
    trace = list(trace)
    labels = (
        config_labels if config_labels is not None
        else session_config_labels(trace)
    )
    samples = samples_from_trace(trace)
    violations: list[Violation] = []
    resolved: list[dict[str, Any]] = []
    for slo in registry:
        threshold = slo.resolve_threshold(labels)
        resolved.append(slo.to_dict(threshold))
        if threshold is None:
            continue
        violations.extend(
            evaluate_slo(
                slo, samples.get(slo.signal, ()), threshold, warmup=warmup
            )
        )
    violations.sort(key=lambda v: (v.t0, v.slo))
    return violations, resolved
