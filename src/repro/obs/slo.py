"""Declarative SLO registry encoding the paper's RP requirements.

The paper derives hard requirements for remote piloting (Section 3.1 /
4.2): playback latency below ~300 ms, no stalls, the delivered bitrate
sustaining the configured operating point, and the full 30 FPS source
rate. An :class:`Slo` states one such requirement declaratively —
which windowed signal it constrains, the comparison direction, the
threshold (static, or resolved from the session's recorded config) and
the sliding-window length — so the detector in
:mod:`repro.obs.detect` can evaluate any registry of SLOs over the
same per-second window samples without bespoke code per requirement.

Thresholds resolve in two steps: a static ``threshold`` wins when
set; otherwise ``config_key`` names a field of the session's
``session.config`` trace event (e.g. ``fps`` or ``target_bps``) and
the threshold becomes ``value * scale + offset``. That keeps one SLO
definition correct across scenarios with different operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

#: RP playback-latency / stall threshold the paper derives (~300 ms).
RP_LATENCY_THRESHOLD_MS = 300.0

#: Comparison operators an SLO may use (value OP threshold must hold).
SLO_OPS = ("<=", ">=")


@dataclass(frozen=True)
class Slo:
    """One service-level objective over a windowed signal.

    Parameters
    ----------
    name:
        Registry key, e.g. ``"playback_latency"``.
    signal:
        Window-sample signal the SLO constrains (see
        :func:`repro.obs.detect.samples_from_trace`).
    op:
        ``"<="`` (violation when the signal exceeds the threshold) or
        ``">="`` (violation when it falls below).
    threshold:
        Static threshold in the signal's unit, or ``None`` to resolve
        from the session config via ``config_key``.
    config_key:
        ``session.config`` label to derive the threshold from when
        ``threshold`` is ``None``; the resolved threshold is
        ``value * scale + offset``.
    window:
        Sliding-window length in sim seconds (aggregated from the
        base one-second samples).
    component:
        Component charged with the violation in reports.
    skip_partial:
        Ignore partial (shorter-than-width) boundary windows — set for
        rate-like signals whose value is meaningless over a partial
        bin.
    description:
        One-line human rationale, shown in reports.
    """

    name: str
    signal: str
    op: str
    threshold: float | None = None
    config_key: str | None = None
    scale: float = 1.0
    offset: float = 0.0
    window: float = 1.0
    component: str = "player"
    skip_partial: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in SLO_OPS:
            raise ValueError(f"op must be one of {SLO_OPS}, got {self.op!r}")
        if self.threshold is None and self.config_key is None:
            raise ValueError(
                f"SLO {self.name!r} needs a threshold or a config_key"
            )
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")

    def resolve_threshold(self, config_labels: dict[str, Any]) -> float | None:
        """Concrete threshold for a session (``None`` if unresolvable)."""
        if self.threshold is not None:
            return self.threshold
        base = config_labels.get(self.config_key)
        if base is None:
            return None
        return float(base) * self.scale + self.offset

    def violated(self, value: float, threshold: float) -> bool:
        """Whether ``value`` breaks the objective against ``threshold``."""
        if self.op == "<=":
            return value > threshold
        return value < threshold

    def to_dict(self, threshold: float | None = None) -> dict[str, Any]:
        """Plain-data rendering (with the resolved threshold, if given)."""
        return {
            "name": self.name,
            "signal": self.signal,
            "op": self.op,
            "threshold": self.threshold if threshold is None else threshold,
            "window": self.window,
            "component": self.component,
            "description": self.description,
        }


def rp_slos() -> tuple[Slo, ...]:
    """The paper's remote-piloting requirements as SLOs."""
    return (
        Slo(
            name="playback_latency",
            signal="playback_latency_ms",
            op="<=",
            threshold=RP_LATENCY_THRESHOLD_MS,
            component="player",
            description="RP playback latency < 300 ms (Section 3.1)",
        ),
        Slo(
            name="stall",
            signal="interframe_gap_ms",
            op="<=",
            threshold=RP_LATENCY_THRESHOLD_MS,
            component="player",
            description="zero stalls: inter-frame gap <= 300 ms (Section 4.2.1)",
        ),
        Slo(
            name="bitrate",
            signal="goodput_bps",
            op=">=",
            config_key="target_bps",
            scale=0.8,
            component="receiver",
            skip_partial=True,
            description="delivered bitrate >= 80% of the configured target",
        ),
        Slo(
            name="fps",
            signal="fps",
            op=">=",
            config_key="fps",
            offset=-2.0,
            component="player",
            skip_partial=True,
            description="full source frame rate (one-frame counting slack)",
        ),
    )


class SloRegistry:
    """Named collection of SLOs (defaults + user-defined)."""

    def __init__(self, slos: tuple[Slo, ...] | list[Slo] = ()) -> None:
        self._slos: dict[str, Slo] = {}
        for slo in slos:
            self.add(slo)

    @classmethod
    def defaults(cls) -> "SloRegistry":
        """Registry holding the paper's RP requirements."""
        return cls(rp_slos())

    def add(self, slo: Slo) -> Slo:
        """Register ``slo``; duplicate names are an error."""
        if slo.name in self._slos:
            raise ValueError(f"SLO {slo.name!r} already registered")
        self._slos[slo.name] = slo
        return slo

    def get(self, name: str) -> Slo | None:
        """Registered SLO by name, or ``None``."""
        return self._slos.get(name)

    def __iter__(self) -> Iterator[Slo]:
        return iter(self._slos.values())

    def __len__(self) -> int:
        return len(self._slos)
