"""Sim-time trace recorder (spans + point events) and its null twin.

Every record is stamped with the **event-loop clock**, never the wall
clock, so two runs of the same seed produce byte-identical traces and
traces from different seeds are meaningfully diffable.

Instrumented components hold a recorder reference that defaults to
the module-level :data:`NULL_RECORDER`; hot paths guard their
recording with ``if obs.enabled:`` so an untraced run pays exactly
one attribute check per site and allocates nothing.

Naming convention: record names are ``component.what`` (for example
``handover.execution``, ``gcc.overuse``); the part before the first
dot is the *component*, which the ``repro trace`` CLI filters on.
Metric names use ``component/name`` (see :mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import enum
import math
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class ObsLevel(enum.Enum):
    """How much observability a run pays for.

    * ``OFF`` — the :data:`NULL_RECORDER` default: one ``obs.enabled``
      attribute check per instrumented site, nothing recorded.
    * ``METRICS`` — counters/gauges/histograms only (snapshotable and
      mergeable across workers); trace emission is a no-op. Metrics-
      level sessions stay batchable in the campaign planner, and
      metrics-level fleets stay on the vectorized tick path (fed by
      :class:`~repro.obs.metrics.FleetMetricsPlane`).
    * ``TRACE`` — the full sim-time trace plus metrics. Trace-level
      units are excluded from struct-of-arrays batches (the trace is
      part of the payload) and fleet members sampled via
      ``FleetConfig.trace_members`` run with per-tick scalar draws.
    """

    OFF = "off"
    METRICS = "metrics"
    TRACE = "trace"

    @classmethod
    def coerce(cls, value: "ObsLevel | str | bool | None") -> "ObsLevel":
        """Normalize the accepted spellings of an obs level.

        ``None``/``False`` mean :attr:`OFF` and ``True`` means
        :attr:`TRACE` (the legacy ``obs=True`` switch instrumented a
        full recorder), so every pre-``ObsLevel`` call site keeps its
        meaning. Strings match enum values case-insensitively.
        """
        if value is None or value is False:
            return cls.OFF
        if value is True:
            return cls.TRACE
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                raise ValueError(
                    f"unknown obs level {value!r}; expected one of "
                    f"{', '.join(level.value for level in cls)}"
                ) from None
        raise TypeError(f"cannot interpret {value!r} as an ObsLevel")


def component_of(name: str) -> str:
    """Component prefix of a record name (``gcc.overuse`` -> ``gcc``)."""
    return name.split(".", 1)[0].split("/", 1)[0]


@dataclass
class TraceEvent:
    """A point-in-sim-time occurrence."""

    name: str
    time: float
    labels: dict[str, Any] = field(default_factory=dict)
    depth: int = 0

    @property
    def component(self) -> str:
        """Component prefix of the record name."""
        return component_of(self.name)

    @property
    def sort_time(self) -> float:
        """Timeline position (events sort at their instant)."""
        return self.time


@dataclass
class TraceSpan:
    """An interval of sim time (``t0`` .. ``t1``).

    ``t1`` may be ``None`` for a span whose end was never recorded —
    e.g. a truncated JSONL export or an episode cut off by session
    teardown. Open spans render with an explicit marker and are
    treated as extending to the end of the trace by filters.
    """

    name: str
    t0: float
    t1: float | None = None
    labels: dict[str, Any] = field(default_factory=dict)
    depth: int = 0

    @property
    def open(self) -> bool:
        """Whether the span is missing its end event."""
        return self.t1 is None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (NaN while open)."""
        return math.nan if self.t1 is None else self.t1 - self.t0

    @property
    def component(self) -> str:
        """Component prefix of the record name."""
        return component_of(self.name)

    @property
    def sort_time(self) -> float:
        """Timeline position (spans sort at their start)."""
        return self.t0


TraceRecord = TraceEvent | TraceSpan


class NullRecorder:
    """Do-nothing recorder: the default wired into every component.

    ``enabled`` is a class attribute, so the hot-path guard
    ``if obs.enabled:`` compiles down to one attribute load; the
    methods exist only for call sites that are not worth guarding.
    """

    enabled = False
    #: Observability tier this recorder implements (class attribute,
    #: like ``enabled``, so dispatch stays one attribute load).
    level = ObsLevel.OFF
    #: Wall seconds spent recording (always 0.0 for the null twin).
    overhead_s = 0.0

    def event(self, name: str, t: float | None = None, **labels: Any) -> None:
        """Ignore a point event."""

    def span_at(
        self, name: str, t0: float, t1: float, **labels: Any
    ) -> None:
        """Ignore a completed span."""

    @contextmanager
    def span(self, name: str, **labels: Any) -> Iterator[None]:
        """No-op span context."""
        yield

    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Ignore a counter increment."""

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Ignore a gauge write."""

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        """Ignore a histogram observation."""


#: Shared null recorder instance; components default to this.
NULL_RECORDER = NullRecorder()


class Recorder(NullRecorder):
    """Collecting recorder: metrics registry + sim-time trace.

    Bind it to the event loop that owns the run (:meth:`bind`) before
    the simulation starts; records default their timestamps to
    ``clock.now``. Explicit ``t=``/``t0=``/``t1=`` arguments bypass
    the clock, which keeps scheduled-duration spans (e.g. a handover
    whose execution time is drawn up front) expressible without
    callbacks.

    With ``warn_unregistered=True`` (a debug mode — one set lookup per
    record, so off by default) every emitted name is checked against
    the generated :mod:`repro.obs.schema` registry, and the first use
    of each unregistered name raises a :class:`UserWarning`. This is
    the runtime twin of the RPL008 static check: the linter catches
    names in code it can see, the warning catches names built
    dynamically at run time.

    With ``measure_overhead=True`` every recording method times itself
    (two clock reads per record) and accumulates into
    :attr:`overhead_s` — the raw material of the ``obs.overhead``
    self-metric that ``run_session``/``run_fleet`` surface in
    ``result.extra["obs_overhead"]``. Off by default: the recorded
    values never feed back into the simulation either way.
    """

    enabled = True
    level = ObsLevel.TRACE

    def __init__(
        self,
        clock: Any | None = None,
        *,
        warn_unregistered: bool = False,
        measure_overhead: bool = False,
    ) -> None:
        self.registry = MetricsRegistry()
        self.trace: list[TraceRecord] = []
        self._clock = clock
        self._depth = 0
        self.overhead_s = 0.0
        # Wall-clock self-accounting only: the measured time never
        # reaches sim state or record timestamps.
        self._timer = time.perf_counter if measure_overhead else None  # repro-lint: ignore[RPL001]  # overhead self-metric
        self._known_names: frozenset[str] | None = None
        self._warned_names: set[str] = set()
        if warn_unregistered:
            try:
                from repro.obs.schema import ALL_NAMES
            except ImportError:
                warnings.warn(
                    "repro.obs.schema missing; regenerate it with "
                    "'python -m repro.lint --write-trace-schema' to "
                    "enable unregistered-name warnings",
                    stacklevel=2,
                )
            else:
                self._known_names = ALL_NAMES

    def _check_name(self, name: str) -> None:
        if (
            self._known_names is not None
            and name not in self._known_names
            and name not in self._warned_names
        ):
            self._warned_names.add(name)
            warnings.warn(
                f"trace/metric name {name!r} is not in the generated "
                "schema registry; regenerate it with "
                "'python -m repro.lint --write-trace-schema'",
                stacklevel=3,
            )

    def bind(self, clock: Any) -> None:
        """Attach the sim clock (any object exposing ``.now``)."""
        self._clock = clock

    @property
    def now(self) -> float:
        """Current sim time (0.0 before :meth:`bind`)."""
        return self._clock.now if self._clock is not None else 0.0

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def event(self, name: str, t: float | None = None, **labels: Any) -> None:
        """Record a point event at ``t`` (default: the sim clock)."""
        timer = self._timer
        start = timer() if timer is not None else 0.0
        if self._known_names is not None:
            self._check_name(name)
        self.trace.append(
            TraceEvent(
                name=name,
                time=self.now if t is None else t,
                labels=labels,
                depth=self._depth,
            )
        )
        if timer is not None:
            self.overhead_s += timer() - start

    def span_at(self, name: str, t0: float, t1: float, **labels: Any) -> None:
        """Record a completed span with explicit bounds."""
        timer = self._timer
        start = timer() if timer is not None else 0.0
        if self._known_names is not None:
            self._check_name(name)
        self.trace.append(
            TraceSpan(name=name, t0=t0, t1=t1, labels=labels, depth=self._depth)
        )
        if timer is not None:
            self.overhead_s += timer() - start

    @contextmanager
    def span(self, name: str, **labels: Any) -> Iterator[TraceSpan]:
        """Open a span now; close it when the block exits.

        Spans nest: records emitted inside the block (including inner
        spans) carry ``depth + 1`` relative to this span. The span is
        appended on entry so the trace preserves opening order; its
        ``t1`` is patched on exit.
        """
        if self._known_names is not None:
            self._check_name(name)
        span = TraceSpan(
            name=name, t0=self.now, t1=self.now, labels=labels,
            depth=self._depth,
        )
        self.trace.append(span)
        self._depth += 1
        try:
            yield span
        finally:
            self._depth -= 1
            span.t1 = self.now

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        """Increment the counter ``name{labels}``."""
        timer = self._timer
        start = timer() if timer is not None else 0.0
        if self._known_names is not None:
            self._check_name(name)
        self.registry.counter(name, **labels).inc(amount)
        if timer is not None:
            self.overhead_s += timer() - start

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name{labels}``."""
        timer = self._timer
        start = timer() if timer is not None else 0.0
        if self._known_names is not None:
            self._check_name(name)
        self.registry.gauge(name, **labels).set(value)
        if timer is not None:
            self.overhead_s += timer() - start

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> None:
        """Observe ``value`` in the histogram ``name{labels}``."""
        timer = self._timer
        start = timer() if timer is not None else 0.0
        if self._known_names is not None:
            self._check_name(name)
        self.registry.histogram(name, buckets=buckets, **labels).observe(value)
        if timer is not None:
            self.overhead_s += timer() - start


class MetricsRecorder(Recorder):
    """Metrics-only recorder: the :data:`ObsLevel.METRICS` tier.

    Counters, gauges and histograms record exactly as on
    :class:`Recorder`; trace emission (events and spans) is a no-op,
    so there is no trace list to pickle, no diagnosis pass at collect
    time, and — because the trace is not part of the payload — a
    metrics-level session stays batchable in the campaign planner
    (:func:`repro.runner.batch.batch_key`). ``trace`` stays an empty
    list so every ``isinstance(obs, Recorder)`` consumer keeps
    working.
    """

    level = ObsLevel.METRICS

    def event(self, name: str, t: float | None = None, **labels: Any) -> None:
        """Ignore a point event (metrics tier records no trace)."""

    def span_at(self, name: str, t0: float, t1: float, **labels: Any) -> None:
        """Ignore a completed span (metrics tier records no trace)."""

    @contextmanager
    def span(self, name: str, **labels: Any) -> Iterator[None]:
        """No-op span context (metrics tier records no trace)."""
        yield
