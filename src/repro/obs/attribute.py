"""Root-cause attribution: align violations with trace evidence.

The paper's analysis (Fig. 8/9) works by hand: line up a latency spike
with the handover that preceded it, or a stall with a burst-loss
episode. :func:`attribute` automates exactly that alignment. Causal
candidates are harvested from the trace (:func:`causes_from_trace` —
handover executions, loss bursts, capacity dips, CC rate cuts,
bufferbloat / queue anomalies, jitter gaps, player underruns), then
each :class:`Violation` window is matched against every candidate
whose interval overlaps it or ends within a short *lag horizon*
before it; matches are scored by a fixed per-kind prior × temporal
proximity × normalized magnitude and ranked. A violation with no
scoring candidate lands in the explicit ``unexplained`` bucket rather
than being force-matched.

Everything here is pure, deterministic post-processing over an
already-recorded trace — it never runs inside the simulation loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.obs.detect import Violation
from repro.obs.recorder import TraceEvent, TraceRecord, TraceSpan
from repro.util.units import ms, to_mbps, to_ms

# Cause kinds, in prior order. Priors encode the paper's causal
# hierarchy: a handover outage is almost always the dominant cause when it
# overlaps a violation (Fig. 9), a CC rate cut is usually a *symptom*
# of an underlying channel event, and a jitter gap / underrun is the
# proximate mechanism rather than the root cause.
HANDOVER = "handover"
CAPACITY_DIP = "capacity_dip"
CELL_CONGESTION = "cell_congestion"
INTERFERENCE = "interference"
LOSS_BURST = "loss_burst"
BUFFERBLOAT = "bufferbloat"
QUEUE_BLOAT = "queue_bloat"
CC_RATE_CUT = "cc_rate_cut"
JITTER_GAP = "jitter_gap"
UNDERRUN = "underrun"
UNEXPLAINED = "unexplained"

#: Per-kind prior weight (root causes above proximate mechanisms).
CAUSE_PRIORS: dict[str, float] = {
    HANDOVER: 1.0,
    CAPACITY_DIP: 0.9,
    CELL_CONGESTION: 0.88,
    INTERFERENCE: 0.85,
    LOSS_BURST: 0.8,
    BUFFERBLOAT: 0.75,
    QUEUE_BLOAT: 0.7,
    CC_RATE_CUT: 0.6,
    JITTER_GAP: 0.5,
    UNDERRUN: 0.45,
}

#: Default horizon (sim seconds): a cause ending this long before a
#: violation starts can still explain it (propagation + buffering lag).
DEFAULT_LAG_HORIZON = 2.0


@dataclass(frozen=True)
class Cause:
    """One causal candidate harvested from the trace."""

    kind: str
    t0: float
    t1: float
    #: Normalized severity in [0, 1] (how bad this episode was).
    magnitude: float
    #: Human-readable one-liner, e.g. ``"handover 3->7 (het 1.20 s)"``.
    detail: str
    source: str = ""

    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendering (JSON-able)."""
        return {
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
            "magnitude": self.magnitude,
            "detail": self.detail,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Cause":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            kind=data["kind"],
            t0=data["t0"],
            t1=data["t1"],
            magnitude=data["magnitude"],
            detail=data.get("detail", ""),
            source=data.get("source", ""),
        )


@dataclass(frozen=True)
class RankedCause:
    """A cause scored against one specific violation."""

    cause: Cause
    score: float
    overlap: float
    lag: float

    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendering (JSON-able)."""
        return {
            "cause": self.cause.to_dict(),
            "score": self.score,
            "overlap": self.overlap,
            "lag": self.lag,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RankedCause":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            cause=Cause.from_dict(data["cause"]),
            score=data["score"],
            overlap=data["overlap"],
            lag=data["lag"],
        )


@dataclass
class Attribution:
    """Ranked causal explanation of one violation."""

    violation: Violation
    causes: list[RankedCause] = field(default_factory=list)

    @property
    def primary(self) -> str:
        """Kind of the top-ranked cause (``"unexplained"`` if none)."""
        return self.causes[0].cause.kind if self.causes else UNEXPLAINED

    def to_dict(self) -> dict[str, Any]:
        """Plain-data rendering (JSON-able)."""
        return {
            "violation": self.violation.to_dict(),
            "primary": self.primary,
            "causes": [ranked.to_dict() for ranked in self.causes],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Attribution":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            violation=Violation.from_dict(data["violation"]),
            causes=[
                RankedCause.from_dict(item) for item in data.get("causes", [])
            ],
        )


def _clamp01(value: float) -> float:
    return 0.0 if value < 0.0 else (1.0 if value > 1.0 else value)


# ----------------------------------------------------------------------
# cause harvesting
# ----------------------------------------------------------------------
def causes_from_trace(trace: Iterable[TraceRecord]) -> list[Cause]:
    """Extract every causal candidate the trace records.

    Magnitudes are normalized to [0, 1] per kind (e.g. a handover's
    severity grows with its HET; a rate cut's with its relative drop)
    so cross-kind scores are comparable.
    """
    causes: list[Cause] = []
    for record in trace:
        labels = record.labels
        if isinstance(record, TraceSpan):
            t0, t1 = record.t0, record.t1
            if record.name == "handover.execution":
                het_s = ms(float(labels.get("het_ms", to_ms(t1 - t0))))
                # Pre-handover degradation precedes the outage and
                # post-handover recovery trails it, so widen the
                # causal interval slightly beyond the HET span.
                causes.append(Cause(
                    kind=HANDOVER,
                    t0=t0 - 0.5,
                    t1=t1 + 0.5,
                    magnitude=_clamp01(0.5 + het_s),
                    detail=(
                        f"handover {labels.get('source', '?')}->"
                        f"{labels.get('target', '?')} (het {het_s:.2f} s)"
                    ),
                    source=record.name,
                ))
            elif record.name == "loss.burst":
                packets = float(labels.get("packets", 1.0))
                causes.append(Cause(
                    kind=LOSS_BURST,
                    t0=t0,
                    t1=t1,
                    magnitude=_clamp01(packets / 10.0),
                    detail=f"loss burst ({int(packets)} pkts"
                           + (f", {labels['path']})" if labels.get("path")
                              else ")"),
                    source=record.name,
                ))
            elif record.name == "channel.capacity_dip":
                causes.append(Cause(
                    kind=CAPACITY_DIP,
                    t0=t0,
                    t1=t1,
                    magnitude=_clamp01(float(labels.get("z", 3.0)) / 6.0),
                    detail=(
                        f"capacity dip (floor "
                        f"{to_mbps(float(labels.get('peak', 0.0))):.2f} Mbps)"
                    ),
                    source=record.name,
                ))
            elif record.name == "cell.congestion":
                min_share = float(labels.get("min_share", 1.0))
                causes.append(Cause(
                    kind=CELL_CONGESTION,
                    t0=t0,
                    t1=t1,
                    magnitude=_clamp01(1.0 - min_share),
                    detail=(
                        f"cell {labels.get('cell', '?')} congestion "
                        f"(min PRB share {min_share:.2f})"
                    ),
                    source=record.name,
                ))
            elif record.name == "channel.interference_outlier":
                causes.append(Cause(
                    kind=INTERFERENCE,
                    t0=t0,
                    t1=t1,
                    magnitude=0.8,
                    detail="interference outlier episode",
                    source=record.name,
                ))
            elif record.name == "receiver.owd_anomaly":
                causes.append(Cause(
                    kind=BUFFERBLOAT,
                    t0=t0,
                    t1=t1,
                    magnitude=_clamp01(float(labels.get("z", 3.0)) / 6.0),
                    detail=(
                        f"OWD inflation episode "
                        f"(peak {float(labels.get('peak', 0.0)):.0f} ms)"
                    ),
                    source=record.name,
                ))
            elif record.name == "sender.queue_anomaly":
                causes.append(Cause(
                    kind=QUEUE_BLOAT,
                    t0=t0,
                    t1=t1,
                    magnitude=_clamp01(float(labels.get("z", 3.0)) / 6.0),
                    detail=(
                        f"sender queue growth "
                        f"(peak {float(labels.get('peak', 0.0)):.0f} ms)"
                    ),
                    source=record.name,
                ))
        elif isinstance(record, TraceEvent):
            t = record.time
            if record.name in ("gcc.rate_decrease", "scream.rate_decrease"):
                from_bps = float(labels.get("from_bps", 0.0))
                to_bps = float(labels.get("to_bps", from_bps))
                drop = (
                    (from_bps - to_bps) / from_bps if from_bps > 0 else 0.0
                )
                cc = record.name.split(".", 1)[0]
                reason = labels.get("reason", "")
                causes.append(Cause(
                    kind=CC_RATE_CUT,
                    t0=t,
                    t1=t,
                    magnitude=_clamp01(drop * 2.0),
                    detail=(
                        f"{cc} rate cut {to_mbps(from_bps):.2f}->"
                        f"{to_mbps(to_bps):.2f} Mbps"
                        + (f" ({reason})" if reason else "")
                    ),
                    source=record.name,
                ))
            elif record.name == "jitter.gap":
                penalty_ms = float(labels.get("penalty_ms", 0.0))
                causes.append(Cause(
                    kind=JITTER_GAP,
                    t0=t,
                    t1=t + ms(penalty_ms),
                    magnitude=_clamp01(penalty_ms / 500.0),
                    detail=(
                        f"jitter-buffer gap "
                        f"({int(float(labels.get('packets', 0)))} pkts, "
                        f"+{penalty_ms:.0f} ms)"
                    ),
                    source=record.name,
                ))
            elif record.name == "player.underrun":
                causes.append(Cause(
                    kind=UNDERRUN,
                    t0=t,
                    t1=t,
                    magnitude=0.5,
                    detail="player queue underrun",
                    source=record.name,
                ))
    causes.sort(key=lambda cause: (cause.t0, cause.kind))
    return causes


# ----------------------------------------------------------------------
# scoring
# ----------------------------------------------------------------------
def _score(
    violation: Violation, cause: Cause, lag_horizon: float
) -> RankedCause | None:
    """Score one cause against one violation (``None`` if out of range).

    A cause qualifies when its interval overlaps the violation window
    or ends within ``lag_horizon`` before the window starts (channel
    events propagate into playback with buffering delay, never the
    other way round). Score = prior × proximity × magnitude term,
    where proximity is 1 on overlap and decays exponentially with the
    gap, and the magnitude term keeps even a mild overlapping cause
    competitive (floor 0.4).
    """
    if cause.t0 > violation.t1:
        return None  # cause starts after the violation ends
    gap = violation.t0 - cause.t1
    if gap > lag_horizon:
        return None  # cause too stale to explain the violation
    overlap = min(violation.t1, cause.t1) - max(violation.t0, cause.t0)
    if overlap >= 0.0 or gap <= 0.0:
        proximity = 1.0
        lag = 0.0
    else:
        proximity = math.exp(-gap / (lag_horizon / 2.0))
        lag = gap
    prior = CAUSE_PRIORS.get(cause.kind, 0.3)
    score = prior * proximity * (0.4 + 0.6 * _clamp01(cause.magnitude))
    return RankedCause(
        cause=cause,
        score=round(score, 6),
        overlap=max(0.0, overlap),
        lag=lag,
    )


def attribute(
    violations: Sequence[Violation],
    causes: Sequence[Cause],
    *,
    lag_horizon: float = DEFAULT_LAG_HORIZON,
    min_score: float = 0.05,
    max_causes: int = 5,
) -> list[Attribution]:
    """Rank candidate causes for every violation.

    Deterministic: ties break on cause kind then start time, so the
    same trace always yields the same ranking regardless of harvest
    order.
    """
    attributions: list[Attribution] = []
    for violation in violations:
        ranked: list[RankedCause] = []
        for cause in causes:
            scored = _score(violation, cause, lag_horizon)
            if scored is not None and scored.score >= min_score:
                ranked.append(scored)
        ranked.sort(
            key=lambda item: (-item.score, item.cause.kind, item.cause.t0)
        )
        attributions.append(
            Attribution(violation=violation, causes=ranked[:max_causes])
        )
    return attributions
