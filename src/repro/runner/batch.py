"""Batch planner: group campaign work units into seed-sweep batches.

A campaign matrix is mostly the same scenario repeated across seeds.
Those repeats share every stochastic *shape* — tick count, cell count,
stream labels — so a whole seed sweep can execute as one
struct-of-arrays batch: the channel's random planes refill once for
``(n_seeds, n_ticks)`` (see :mod:`repro.cellular.batch`) and a
session's per-packet/per-frame draws refill once per stream via
:class:`~repro.util.rng.SweepDrawPlan`. Only the branchy control-loop
state (A3 evaluation, GCC/SCReAM, queues) stays per-run.

The planner is deliberately conservative about what may batch:

* :data:`~repro.runner.work.WORK_CHANNEL_PROBE` units — always
  batchable (pure channel, no params);
* :data:`~repro.runner.work.WORK_SESSION` units — batchable unless
  **trace**-instrumented (``obs="trace"`` runs carry a live recorder
  whose trace is part of the payload; they take the scalar path).
  Metrics-level units (``obs="metrics"``) batch freely: the
  :class:`~repro.obs.MetricsRecorder` records counters/gauges/
  histograms without a trace, so the vectorized execution is
  unperturbed;
* :data:`~repro.runner.work.WORK_FLEET` units — batchable unless
  trace-instrumented. A fleet batch groups a density sweep's fleets into
  per-worker tasks: each fleet still executes whole (its members are
  already vectorized internally — SoA contention plus member-stacked
  tick plans, see :func:`repro.cellular.batch.install_fleet_plans`),
  and results fan back into the per-unit cache as each batch lands,
  so an interrupted density sweep resumes from the fleets that
  finished;
* everything else (ping probes) — scalar.

Two units land in the same batch only when their canonical
fingerprints are identical *except for the seed* — the same material
the result cache hashes, so "batchable together" can never be looser
than "cache-key equal modulo seed". Batched execution is
packet-for-packet bit-identical to the scalar path; the fingerprint
suite (``tests/test_fingerprints.py``) pins that equivalence.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any

from repro.core.config import ScenarioConfig
from repro.obs import ObsLevel
from repro.runner.work import (
    WORK_CHANNEL_PROBE,
    WORK_FLEET,
    WORK_SESSION,
    WorkUnit,
    execute_unit,
)
from repro.util.rng import (
    STREAM_NORMAL,
    STREAM_UNIFORM,
    StreamSpec,
    SweepDrawPlan,
)
from repro.util.units import bits_to_bytes

#: Nominal RTP payload bytes per packet used to size per-packet draw
#: preloads. Oversizing is harmless (unused rows are dropped with the
#: plan); undersizing falls back to scalar refills bit-identically.
_NOMINAL_PACKET_BYTES = 1100.0

#: Headroom factors on the draw-count estimates. Loss/jitter draws are
#: per *delivered* packet and the encoder draws twice per frame, so a
#: modest margin covers rate-control overshoot and retransmits.
_PACKET_MARGIN = 1.25
_FRAME_MARGIN = 1.1


@dataclass(frozen=True)
class BatchPlan:
    """One seed sweep scheduled as a single worker task.

    ``indices`` are the units' positions in the campaign's submission
    order, so results fan back into the caller's result list (and the
    per-unit cache) exactly as if each unit had run alone.
    """

    kind: str
    indices: tuple[int, ...]
    units: tuple[WorkUnit, ...]


def batch_key(unit: WorkUnit) -> str | None:
    """Grouping key for ``unit``, or ``None`` when it must run scalar.

    The key is the unit's canonical JSON fingerprint with the seed
    removed — the exact cache-key material, so two units share a key
    iff they are the same cached computation modulo seed.
    """
    if unit.kind in (WORK_SESSION, WORK_FLEET):
        # Only trace-level obs forces the scalar path: the trace is
        # part of the payload and must observe per-tick scalar
        # scheduling. Metrics-level units batch freely — the
        # MetricsRecorder (session) / FleetMetricsPlane (fleet)
        # record without perturbing the vectorized execution, and the
        # tier stays inside the fingerprint, so the grouping key still
        # separates instrumented from bare payloads.
        if ObsLevel.coerce(dict(unit.params).get("obs")) is ObsLevel.TRACE:
            return None
    elif unit.kind != WORK_CHANNEL_PROBE:
        return None
    material = unit.fingerprint()
    config = dict(material["config"])
    config.pop("seed", None)
    material["config"] = config
    return json.dumps(material, sort_keys=True, default=repr)


def plan_batches(
    pending: "list[tuple[int, WorkUnit]]", workers: int = 1
) -> "tuple[list[BatchPlan], list[tuple[int, WorkUnit]]]":
    """Partition pending ``(index, unit)`` pairs into batches + scalars.

    Groups units by :func:`batch_key` preserving submission order
    within each group (seeds stay in campaign order). Groups of one
    stay scalar — a 1-seed batch pays plan setup for no amortization.
    With ``workers > 1`` each group is split into roughly equal chunks
    of at most ``ceil(group / workers)`` units, so a single dominant
    sweep still feeds every worker instead of serializing on one.
    """
    groups: dict[str, list[tuple[int, WorkUnit]]] = {}
    scalar: list[tuple[int, WorkUnit]] = []
    for index, unit in pending:
        key = batch_key(unit)
        if key is None:
            scalar.append((index, unit))
        else:
            groups.setdefault(key, []).append((index, unit))

    plans: list[BatchPlan] = []
    for members in groups.values():
        if members[0][1].kind == WORK_SESSION:
            # A session sweep keys its draw plan by seed; duplicate
            # units (same seed twice) would share one generator, so
            # repeats take the scalar path instead.
            seen_seeds: set[int] = set()
            unique: list[tuple[int, WorkUnit]] = []
            for index, unit in members:
                if unit.config.seed in seen_seeds:
                    scalar.append((index, unit))
                else:
                    seen_seeds.add(unit.config.seed)
                    unique.append((index, unit))
            members = unique
        if len(members) < 2:
            scalar.extend(members)
            continue
        chunk = len(members)
        if workers > 1:
            chunk = math.ceil(len(members) / workers)
        for start in range(0, len(members), chunk):
            part = members[start : start + chunk]
            if len(part) < 2:
                scalar.extend(part)
                continue
            plans.append(
                BatchPlan(
                    kind=part[0][1].kind,
                    indices=tuple(index for index, _ in part),
                    units=tuple(unit for _, unit in part),
                )
            )
    scalar.sort(key=lambda pair: pair[0])
    return plans, scalar


def session_stream_specs(config: ScenarioConfig) -> "list[StreamSpec]":
    """Draw-plan stream specs for one session scenario.

    Counts are sized from the run's duration and bitrate ceiling:
    jitter and loss consume one draw per delivered packet per
    direction, the encoder two normals per frame. Estimates only steer
    the block size — an overrun falls back to the underlying stream
    bit-identically (see ``BatchedNormal``), so a burstier-than-
    expected run is slower, never wrong.
    """
    budget_bytes = bits_to_bytes(config.duration * config.max_bitrate)
    packets = int(budget_bytes / _NOMINAL_PACKET_BYTES * _PACKET_MARGIN) + 64
    frames = int(2.0 * config.fps * config.duration * _FRAME_MARGIN) + 16
    return [
        StreamSpec("jitter-up", STREAM_NORMAL, packets),
        StreamSpec("jitter-down", STREAM_NORMAL, packets),
        StreamSpec("loss-up", STREAM_UNIFORM, packets),
        StreamSpec("loss-down", STREAM_UNIFORM, packets),
        StreamSpec("encoder", STREAM_NORMAL, frames),
    ]


def execute_batch(plan: BatchPlan) -> "list[Any]":
    """Run one batch and return per-unit results in ``plan`` order."""
    if plan.kind == WORK_CHANNEL_PROBE:
        # Lazy: repro.experiments builds on repro.runner.
        from repro.experiments.probes import channel_probe_batch

        return channel_probe_batch([unit.config for unit in plan.units])
    if plan.kind == WORK_SESSION:
        from repro.core.session import run_session

        configs = [unit.config for unit in plan.units]
        sweep = SweepDrawPlan(
            [config.seed for config in configs],
            session_stream_specs(configs[0]),
        )
        # Grouping keys share the obs tier (it is in the fingerprint),
        # but thread it per unit anyway so a future key relaxation
        # cannot silently drop instrumentation.
        return [
            run_session(
                unit.config,
                obs=dict(unit.params).get("obs"),
                draws=sweep.wrappers(unit.config.seed),
            )
            for unit in plan.units
        ]
    # WORK_FLEET (and any future kind a caller schedules directly):
    # each unit executes whole in this worker task — a fleet is
    # already vectorized internally, so batching buys the sweep-level
    # sharding and per-unit cache fan-back, not a shared draw plan.
    return [execute_unit(unit) for unit in plan.units]
