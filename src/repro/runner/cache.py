"""Content-addressed on-disk cache for campaign results.

Key = SHA-256 over a canonical JSON rendering of the work unit
(:meth:`WorkUnit.fingerprint`: kind + every ``ScenarioConfig`` field,
seed and duration included) plus :data:`CACHE_SCHEMA_VERSION`. Any
change to the scenario vocabulary or the result layout bumps the
version and naturally invalidates every older entry.

Payloads are pickles under ``.repro-cache/<k[:2]>/<k>.pkl``; writes go
through a temp file + ``os.replace`` so a crashed run never leaves a
truncated entry behind, and unreadable entries degrade to misses.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover — avoid a runtime import cycle
    from repro.runner.work import WorkUnit

#: Bump when ScenarioConfig fields or result dataclasses change shape.
#: v2: fleet ring members translate trajectories post-interpolation
#: (TranslatedTrajectory), which moves N>=2 fleet results by an ulp.
CACHE_SCHEMA_VERSION = 2

#: Default cache root, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISS = object()


class ResultCache:
    """Pickle store addressed by work-unit content hash."""

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def key(self, unit: WorkUnit) -> str:
        """Content hash of one work unit (hex, stable across runs)."""
        material = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "unit": unit.fingerprint()},
            sort_keys=True,
            default=repr,
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, unit: WorkUnit) -> Any:
        """Cached result for ``unit``, or :data:`MISS`."""
        path = self._path(self.key(unit))
        if not path.exists():
            return MISS
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception:
            # Truncated/corrupt entry (e.g. interrupted write on an
            # old Python): drop it and treat as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            return MISS

    def put(self, unit: WorkUnit, result: Any) -> None:
        """Store ``result`` for ``unit`` (atomic replace)."""
        path = self._path(self.key(unit))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return 0
        for path in self.root.rglob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, int]:
        """Entry count and total payload bytes on disk."""
        entries = 0
        size = 0
        if self.root.exists():
            for path in self.root.rglob("*.pkl"):
                entries += 1
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
        return {"entries": entries, "bytes": size}
