"""Campaign work units: what a worker process actually executes.

A :class:`WorkUnit` is a picklable, hashable description of one
simulation run — kind + fully resolved :class:`ScenarioConfig` (seed
and duration already applied) + any extra kind-specific parameters.
``execute_unit`` dispatches it to the matching entry point; it runs
identically in the parent process (``workers=1``) and in pool workers.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Any

from repro.core.config import ScenarioConfig
from repro.core.session import run_session
from repro.obs import ObsLevel

#: Full video-pipeline session (expensive; video figures).
WORK_SESSION = "session"
#: Cellular channel only, no video (cheap; Fig. 4/10).
WORK_CHANNEL_PROBE = "channel-probe"
#: ICMP-like echo probes over the channel (cheap; Fig. 13).
WORK_PING_PROBE = "ping-probe"
#: N sessions sharing one layout + PRB scheduler (most expensive).
WORK_FLEET = "fleet"

_KINDS = (WORK_SESSION, WORK_CHANNEL_PROBE, WORK_PING_PROBE, WORK_FLEET)


@dataclass(frozen=True)
class WorkUnit:
    """One independent simulation run of a campaign.

    Parameters
    ----------
    kind:
        One of :data:`WORK_SESSION`, :data:`WORK_CHANNEL_PROBE`,
        :data:`WORK_PING_PROBE`.
    config:
        Fully resolved scenario (seed and duration applied).
    params:
        Kind-specific keyword arguments as a sorted tuple of
        ``(name, value)`` pairs, e.g. ``(("rate_hz", 20.0),)``.
    """

    kind: str
    config: ScenarioConfig
    params: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown work kind {self.kind!r}")

    def fingerprint(self) -> dict[str, Any]:
        """JSON-able canonical description (the cache-key material)."""
        config: dict[str, Any] = {}
        for field in dataclasses.fields(self.config):
            value = getattr(self.config, field.name)
            if isinstance(value, enum.Enum):
                value = value.value
            config[field.name] = value
        return {
            "kind": self.kind,
            "config": config,
            "params": {name: value for name, value in self.params},
        }

    def describe(self) -> str:
        """Short human-readable id for telemetry/progress lines."""
        return f"{self.kind}:{self.config.label()}"


def make_unit(kind: str, config: ScenarioConfig, **params: Any) -> WorkUnit:
    """Build a :class:`WorkUnit` with canonically sorted params."""
    return WorkUnit(kind=kind, config=config, params=tuple(sorted(params.items())))


def execute_unit(unit: WorkUnit) -> Any:
    """Run one work unit and return its raw result."""
    # The probe helpers live under repro.experiments, whose package
    # init itself builds on repro.runner — import them lazily to keep
    # the module graph acyclic.
    from repro.experiments.probes import channel_probe_seed, ping_probe_seed

    params = dict(unit.params)
    if unit.kind == WORK_SESSION:
        # ``obs`` selects the observability tier (``"metrics"`` /
        # ``"trace"``, with legacy ``True`` meaning ``trace``). The
        # tier is part of the cache fingerprint: an instrumented
        # result is a different payload (``extra["metrics"]`` and, at
        # trace level, ``extra["diagnosis"]``).
        return run_session(
            unit.config, obs=ObsLevel.coerce(params.pop("obs", None))
        )
    if unit.kind == WORK_CHANNEL_PROBE:
        return channel_probe_seed(unit.config)
    if unit.kind == WORK_PING_PROBE:
        return ping_probe_seed(unit.config, **params)
    if unit.kind == WORK_FLEET:
        # Fleets shard across workers exactly like seeds: one fleet
        # (N co-located sessions on a shared loop) per work unit.
        from repro.cellular.cell import CellCapacityConfig
        from repro.core.fleet import FleetConfig, run_fleet

        level = ObsLevel.coerce(params.pop("obs", None))
        capacity = params.pop("cell_capacity", None)
        trace_members = tuple(params.pop("trace_members", ()))
        fleet_config = FleetConfig(
            base=unit.config,
            cell_capacity=(
                CellCapacityConfig(*capacity)
                if capacity is not None
                else CellCapacityConfig()
            ),
            trace_members=trace_members,
            **params,
        )
        return run_fleet(fleet_config, obs=level)
    raise ValueError(f"unknown work kind {unit.kind!r}")


