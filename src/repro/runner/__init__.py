"""Campaign execution engine: process-pool fan-out + result cache.

Every figure campaign decomposes into independent (config, seed) work
units — full video sessions, channel-only probes or ping probes. The
:class:`CampaignRunner` executes a list of such units over a
``multiprocessing`` pool (``workers=1`` preserves the in-process
serial path), consults a content-addressed on-disk cache first, and
records per-run telemetry. Determinism is guaranteed by the seeded
event loop, so results are identical for any worker count; merging is
by submission index and therefore order-independent.
"""

from repro.runner.batch import (
    BatchPlan,
    batch_key,
    execute_batch,
    plan_batches,
    session_stream_specs,
)
from repro.runner.cache import CACHE_SCHEMA_VERSION, ResultCache
from repro.runner.engine import (
    CampaignRunner,
    CampaignTelemetry,
    RunTelemetry,
)
from repro.runner.work import (
    WORK_CHANNEL_PROBE,
    WORK_FLEET,
    WORK_PING_PROBE,
    WORK_SESSION,
    WorkUnit,
    execute_unit,
)

__all__ = [
    "BatchPlan",
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "batch_key",
    "execute_batch",
    "plan_batches",
    "session_stream_specs",
    "CampaignRunner",
    "CampaignTelemetry",
    "RunTelemetry",
    "WORK_CHANNEL_PROBE",
    "WORK_FLEET",
    "WORK_PING_PROBE",
    "WORK_SESSION",
    "WorkUnit",
    "execute_unit",
]
