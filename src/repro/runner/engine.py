"""The campaign execution engine.

:class:`CampaignRunner` takes a list of :class:`WorkUnit` and returns
their results *in submission order*, regardless of how many worker
processes executed them — results are reassembled by index, and every
unit is deterministic given its config, so any merge of the returned
list is order-independent and identical to the serial path.

Execution strategy per unit:

1. consult the :class:`ResultCache` (if enabled) — hits cost one
   pickle load and never touch the pool;
2. misses fan out over a ``multiprocessing`` pool of ``workers``
   processes (``workers=1`` executes in-process, preserving the
   classic serial path with zero pickling overhead);
3. fresh results are written back to the cache and reported to the
   optional progress callback together with their telemetry record.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.obs import CampaignStatusWriter, DiagnosisSummary, MetricsRegistry
from repro.runner.batch import BatchPlan, execute_batch, plan_batches
from repro.runner.cache import MISS, ResultCache
from repro.runner.work import WorkUnit, execute_unit


@dataclass
class RunTelemetry:
    """Wall-clock accounting of one executed (or cache-served) unit."""

    unit: str  #: short work-unit id (kind + scenario label)
    worker: str  #: ``"main"``, ``"worker-<pid>"`` or ``"cache"``
    wall_start: float  #: ``time.time()`` at execution start
    wall_end: float  #: ``time.time()`` at execution end
    sim_duration: float  #: simulated seconds the unit covers
    cache_hit: bool  #: served from the result cache

    @property
    def wall_time(self) -> float:
        """Wall-clock seconds spent on this unit."""
        return self.wall_end - self.wall_start

    @property
    def sim_wall_ratio(self) -> float:
        """Simulated seconds per wall second (cache hits: inf-like)."""
        wall = self.wall_time
        if wall <= 0.0:
            return float("inf")
        return self.sim_duration / wall

    def to_dict(self) -> dict[str, Any]:
        """JSON-able rendering of this record."""
        return {
            "unit": self.unit,
            "worker": self.worker,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "wall_time": self.wall_time,
            "sim_duration": self.sim_duration,
            "cache_hit": self.cache_hit,
        }


@dataclass
class CampaignTelemetry:
    """Aggregated accounting of one :meth:`CampaignRunner.run` call."""

    runs: list[RunTelemetry] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0  #: units actually simulated (== misses)
    wall_time: float = 0.0  #: end-to-end wall seconds of the campaign

    def summary(self) -> str:
        """One-line human-readable digest."""
        sim_total = sum(r.sim_duration for r in self.runs if not r.cache_hit)
        ratio = sim_total / self.wall_time if self.wall_time > 0 else float("inf")
        return (
            f"{len(self.runs)} units: {self.cache_hits} cached, "
            f"{self.executed} executed in {self.wall_time:.1f} s wall "
            f"({ratio:.1f}x real time)"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able rendering for post-hoc ETA/throughput analysis.

        Everything the in-memory records hold survives the export, so
        throughput studies (units/hour per worker, cache hit rates
        over time) do not need a live watcher attached to the
        campaign.
        """
        return {
            "summary": self.summary(),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executed": self.executed,
            "wall_time": self.wall_time,
            "runs": [record.to_dict() for record in self.runs],
        }

    def write_json(self, path: str) -> None:
        """Write :meth:`to_dict` to ``path`` atomically."""
        import json

        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)


#: ``progress(done, total, record)`` — invoked in the parent process
#: once per completed unit (cache hits included).
ProgressFn = Callable[[int, int, RunTelemetry], None]


def _execute_indexed(payload: tuple[int, WorkUnit]) -> tuple[int, Any, RunTelemetry]:
    """Pool entry point: run one unit, stamp its telemetry."""
    index, unit = payload
    start = time.time()  # repro-lint: ignore[RPL001] (wall-clock telemetry)
    result = execute_unit(unit)
    record = RunTelemetry(
        unit=unit.describe(),
        worker=f"worker-{os.getpid()}",
        wall_start=start,
        wall_end=time.time(),  # repro-lint: ignore[RPL001] (wall-clock telemetry)
        sim_duration=unit.config.duration,
        cache_hit=False,
    )
    return index, result, record


def _execute_batched(
    plan: BatchPlan,
) -> tuple[BatchPlan, list[Any], list[RunTelemetry]]:
    """Pool entry point: run one seed-sweep batch, stamp per-unit telemetry.

    The batch executes as a single struct-of-arrays task; its wall time
    is apportioned evenly across the member units so per-unit records
    (and ``sim_wall_ratio``) stay meaningful in campaign summaries.
    """
    start = time.time()  # repro-lint: ignore[RPL001] (wall-clock telemetry)
    results = execute_batch(plan)
    end = time.time()  # repro-lint: ignore[RPL001] (wall-clock telemetry)
    share = (end - start) / len(plan.units)
    worker = f"worker-{os.getpid()}"
    records = [
        RunTelemetry(
            unit=unit.describe(),
            worker=f"{worker}/batch{len(plan.units)}",
            wall_start=start + position * share,
            wall_end=start + (position + 1) * share,
            sim_duration=unit.config.duration,
            cache_hit=False,
        )
        for position, unit in enumerate(plan.units)
    ]
    return plan, results, records


class CampaignRunner:
    """Fan campaign work units out over processes, caching results.

    Parameters
    ----------
    workers:
        Process count. ``None`` means ``os.cpu_count()``; ``1`` runs
        every unit in the calling process (no pool, no pickling).
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.
    progress:
        Optional per-unit completion callback (see :data:`ProgressFn`).
    batch:
        Execute cache-missed units of the same scenario-modulo-seed as
        struct-of-arrays seed sweeps (see :mod:`repro.runner.batch`).
        Fleet units batch too: a density sweep's fleets are grouped
        into per-worker tasks (each fleet is already vectorized
        internally). Batched results are bit-identical to the scalar
        path and fan back into the cache per unit, so an interrupted
        batched campaign resumes from what completed. Units the
        planner deems non-batchable (ping probes, instrumented
        sessions/fleets) fall back to scalar execution transparently.

    The worker pool is created lazily on the first parallel campaign
    and **reused across** :meth:`run` calls — repeated campaigns skip
    the per-call fork/spawn cost. Call :meth:`close` (or use the
    runner as a context manager) when done, so worker processes do
    not outlive their campaign.

    Results carrying an observability snapshot (``extra["metrics"]``
    from instrumented sessions, cache hits included) are merged into
    :attr:`metrics`, a parent-side :class:`MetricsRegistry`, so
    campaign-wide metrics are available without re-simulating.
    Likewise, per-session diagnoses (``extra["diagnosis"]``) fold
    their embedded summaries into :attr:`diagnosis`, a
    :class:`DiagnosisSummary` — violation counts and primary-cause
    tallies across the whole campaign (e.g. the fraction of latency
    violations attributable to handover, the paper's Fig. 9 claim)
    without re-running detection.
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        cache: ResultCache | None = None,
        progress: ProgressFn | None = None,
        batch: bool = False,
        status_path: str | None = None,
        status_interval: float = 1.0,
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self.progress = progress
        self.batch = batch
        self.telemetry = CampaignTelemetry()
        self.metrics = MetricsRegistry()
        self.diagnosis = DiagnosisSummary()
        #: Live telemetry plane: when ``status_path`` is set, every
        #: completed unit updates an atomic JSON status file that
        #: ``repro watch`` tails (see :mod:`repro.obs.live`).
        self.status: CampaignStatusWriter | None = (
            CampaignStatusWriter(
                status_path, interval=status_interval, workers=workers
            )
            if status_path is not None
            else None
        )
        self._pool: multiprocessing.pool.Pool | None = None

    def run(self, units: Sequence[WorkUnit]) -> list[Any]:
        """Execute ``units`` and return results in submission order."""
        campaign_start = time.time()  # repro-lint: ignore[RPL001] (wall-clock telemetry)
        total = len(units)
        results: list[Any] = [None] * total
        done = 0
        pending: list[tuple[int, WorkUnit]] = []
        if self.status is not None:
            self.status.begin(total)

        for index, unit in enumerate(units):
            cached = self.cache.get(unit) if self.cache is not None else MISS
            if cached is MISS:
                self.telemetry.cache_misses += 1
                pending.append((index, unit))
                continue
            self.telemetry.cache_hits += 1
            now = time.time()  # repro-lint: ignore[RPL001] (wall-clock telemetry)
            record = RunTelemetry(
                unit=unit.describe(),
                worker="cache",
                wall_start=now,
                wall_end=now,
                sim_duration=unit.config.duration,
                cache_hit=True,
            )
            results[index] = cached
            done += 1
            self._collect_metrics(cached)
            self._note(record, done, total)

        if self.batch and pending:
            plans, pending = plan_batches(pending, self.workers)
            for plan, batch_results, records in self._execute_batches(plans):
                for index, result, record in zip(
                    plan.indices, batch_results, records
                ):
                    # Per-unit cache writes as each batch lands: an
                    # interrupted campaign resumes from exactly the
                    # units that finished, batched or not.
                    if self.cache is not None:
                        self.cache.put(units[index], result)
                    results[index] = result
                    done += 1
                    self.telemetry.executed += 1
                    self._collect_metrics(result)
                    self._note(record, done, total)

        for index, result, record in self._execute(pending):
            if self.cache is not None:
                self.cache.put(units[index], result)
            results[index] = result
            done += 1
            self.telemetry.executed += 1
            self._collect_metrics(result)
            self._note(record, done, total)

        self.telemetry.wall_time += time.time() - campaign_start  # repro-lint: ignore[RPL001]
        if self.status is not None:
            self.status.finish()
        return results

    def _execute(
        self, pending: list[tuple[int, WorkUnit]]
    ) -> Iterable[tuple[int, Any, RunTelemetry]]:
        if not pending:
            return
        if self.workers == 1 or len(pending) == 1:
            for payload in pending:
                index, result, record = _execute_indexed(payload)
                record.worker = "main"
                yield index, result, record
            return
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=self.workers)
        yield from self._pool.imap_unordered(
            _execute_indexed, pending, chunksize=1
        )

    def _execute_batches(
        self, plans: list[BatchPlan]
    ) -> Iterable[tuple[BatchPlan, list[Any], list[RunTelemetry]]]:
        if not plans:
            return
        if self.workers == 1 or len(plans) == 1:
            for plan in plans:
                plan, batch_results, records = _execute_batched(plan)
                for record in records:
                    record.worker = f"main/batch{len(plan.units)}"
                yield plan, batch_results, records
            return
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=self.workers)
        yield from self._pool.imap_unordered(
            _execute_batched, plans, chunksize=1
        )

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        A closed runner remains usable: the next parallel campaign
        simply builds a fresh pool.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _collect_metrics(self, result: Any) -> None:
        extra = getattr(result, "extra", None)
        if isinstance(extra, dict):
            snapshot = extra.get("metrics")
            if snapshot:
                self.metrics.merge_snapshot(snapshot)
            diagnosis = extra.get("diagnosis")
            if isinstance(diagnosis, dict) and "summary" in diagnosis:
                self.diagnosis.merge(
                    DiagnosisSummary.from_dict(diagnosis["summary"])
                )
        if self.status is not None:
            # Fleet results feed the live per-cell occupancy gauges
            # (duck-typed on peak_occupancy; other kinds are no-ops).
            self.status.note_result(result)

    def _note(self, record: RunTelemetry, done: int, total: int) -> None:
        self.telemetry.runs.append(record)
        if self.progress is not None:
            self.progress(done, total, record)
        if self.status is not None:
            self.status.note(record, done, total)
