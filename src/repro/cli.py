"""Command-line interface.

Entry points a downstream user needs:

* ``repro run`` — fly one measurement run and print its summary;
* ``repro dataset`` — fly a campaign and export it in the released-
  dataset layout (per-run CSV directories);
* ``repro figure`` — regenerate one of the paper's figures/tables and
  print its text rendering;
* ``repro trace`` — fly one instrumented run (or load JSONL exports)
  and print the merged sim-time timeline of cc / handover / jitter-
  buffer records; ``--follow`` tails a growing JSONL export live;
* ``repro watch`` — live text dashboard over a running campaign's
  ``--status-file`` (per-worker activity, ETA, cache counters, cell
  occupancy);
* ``repro diagnose`` — detect SLO violations (RP latency, stalls,
  bitrate, FPS) in a live run or exported trace and print ranked
  root-cause attributions (handover, loss burst, capacity dip, ...);
* ``repro profile`` — profile one session or figure campaign and write
  a ranked hot-spot report plus a JSON summary;
* ``repro fleet`` — sweep fleet density over shared, PRB-contended
  cells and print per-session QoE vs. sessions per cell;
* ``repro lint`` — the repo's invariant linter.

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path
from typing import Callable

from repro.analysis import format_table
from repro.core.config import ScenarioConfig
from repro.core.session import run_session
from repro.experiments import ExperimentSettings
from repro.metrics import VideoSummary, network_summary
from repro.obs import (
    Recorder,
    TraceFollower,
    diagnose,
    filter_records,
    iter_jsonl_lines,
    merge_traces,
    read_jsonl,
    read_status,
    render_status,
    render_timeline,
    validate_diagnosis,
    write_jsonl,
)
from repro.runner import (
    WORK_SESSION,
    CampaignRunner,
    ResultCache,
    RunTelemetry,
)
from repro.runner.cache import DEFAULT_CACHE_DIR
from repro.runner.work import make_unit
from repro.traces import export_session

#: figure name -> (runner import path, uses channel-scale settings)
FIGURES: dict[str, tuple[str, bool]] = {
    "fig4": ("fig4_handover", True),
    "fig5": ("fig5_latency", False),
    "fig6": ("fig6_goodput", False),
    "fig7": ("fig7_video", False),
    "fig8": ("fig8_timeseries", False),
    "fig9": ("fig9_ho_ratio", False),
    "fig10": ("fig10_operators", True),
    "fig12": ("fig12_mno", False),
    "fig13": ("fig13_altitude", True),
    "per": ("per_experiment", False),
    "stalls": ("stall_experiment", False),
    "rampup": ("rampup_experiment", False),
    "ackwindow": ("ackwindow_ablation", False),
    "jitterbuffer": ("jitterbuffer_ablation", False),
    "a3": ("a3_ablation", False),
    "buffers": ("buffer_ablation", False),
    "daps": ("daps_experiment", False),
    "multipath": ("multipath_experiment", False),
}


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cc", default="static", choices=["static", "gcc", "scream"])
    parser.add_argument("--environment", default="urban", choices=["urban", "rural"])
    parser.add_argument("--platform", default="air", choices=["air", "ground"])
    parser.add_argument("--operator", default="P1", choices=["P1", "P2"])
    parser.add_argument("--duration", type=float, default=180.0)
    parser.add_argument("--seed", type=int, default=1)


def _scenario_from(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(
        cc=args.cc,
        environment=args.environment,
        platform=args.platform,
        operator=args.operator,
        duration=args.duration,
        seed=args.seed,
    )


def _worker_count(value: str) -> int:
    count = int(value)
    if count < 0:
        raise argparse.ArgumentTypeError(
            f"workers must be >= 0 (0 = one per CPU core), got {count}"
        )
    return count


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="worker processes for the campaign (default 1 = serial; "
        "0 = one per CPU core)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (re-simulate every run)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result-cache directory (default {DEFAULT_CACHE_DIR!r})",
    )
    parser.add_argument(
        "--status-file",
        default=None,
        metavar="FILE",
        help="write live campaign status (atomic JSON) to FILE; watch "
        "it from another terminal with 'repro watch --status FILE'",
    )
    parser.add_argument(
        "--status-interval",
        type=float,
        default=1.0,
        help="seconds between status-file refreshes (default 1)",
    )


def _print_progress(done: int, total: int, record: RunTelemetry) -> None:
    origin = "cache" if record.cache_hit else record.worker
    print(
        f"  [{done}/{total}] {record.unit} "
        f"({record.wall_time:.1f} s wall, {origin})"
    )


def _runner_from(args: argparse.Namespace) -> CampaignRunner:
    workers = args.workers if args.workers != 0 else None
    cache = None if args.no_cache else ResultCache(Path(args.cache_dir))
    return CampaignRunner(
        workers,
        cache=cache,
        progress=_print_progress,
        status_path=getattr(args, "status_file", None),
        status_interval=getattr(args, "status_interval", 1.0),
    )


def cmd_run(args: argparse.Namespace) -> int:
    """Run one scenario and print its summary."""
    config = _scenario_from(args)
    print(f"Running {config.label()} ({config.duration:.0f} s simulated)...")
    result = run_session(config)
    net = network_summary(result)
    video = VideoSummary.from_result(result, warmup=min(30.0, config.duration / 4))
    rows = [
        ["goodput", f"{net['goodput_mbps']:.1f} Mbps"],
        ["handovers/s", f"{net['ho_per_s']:.3f}"],
        ["OWD median / p99", f"{net['owd_median_ms']:.0f} / {net['owd_p99_ms']:.0f} ms"],
        ["PER", f"{net['loss_rate'] * 100:.3f} %"],
        ["playback latency median", f"{video.median_latency_ms:.0f} ms"],
        ["playback latency < 300 ms", f"{video.latency_below_threshold * 100:.0f} %"],
        ["SSIM >= 0.5", f"{video.ssim_above_threshold * 100:.1f} %"],
        ["stalls/min", f"{video.stalls_per_minute:.2f}"],
    ]
    print(format_table(["metric", "value"], rows, title=config.label()))
    return 0


def cmd_dataset(args: argparse.Namespace) -> int:
    """Fly a campaign and export the dataset layout."""
    root = Path(args.out)
    configs = [
        ScenarioConfig(
            cc=cc.strip(),
            environment=environment.strip(),
            platform=args.platform,
            duration=args.duration,
            seed=seed,
        )
        for environment in args.environments.split(",")
        for cc in args.methods.split(",")
        for seed in range(1, args.seeds + 1)
    ]
    with _runner_from(args) as runner:
        results = runner.run(
            [make_unit(WORK_SESSION, config) for config in configs]
        )
    for config, result in zip(configs, results):
        run_dir = export_session(result, root / config.label())
        print(f"wrote {run_dir}")
    print(f"{len(configs)} runs exported under {root}/")
    print(runner.telemetry.summary())
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    """Regenerate one figure/table and print its rendering."""
    if args.name not in FIGURES:
        print(f"unknown figure {args.name!r}; choices: {', '.join(sorted(FIGURES))}")
        return 2
    import repro.experiments as experiments

    runner_name, channel_scale = FIGURES[args.name]
    runner = getattr(experiments, runner_name)
    seeds = tuple(range(1, args.seeds + 1))
    settings = ExperimentSettings(
        duration=args.duration, seeds=seeds, warmup=min(30.0, args.duration / 4)
    )
    if channel_scale:
        settings = ExperimentSettings(
            duration=max(args.duration, 300.0),
            seeds=tuple(range(1, max(args.seeds, 4) + 1)),
            warmup=settings.warmup,
        )
    print(f"Regenerating {args.name} ({settings.duration:.0f} s x {len(settings.seeds)} seeds)...")
    kwargs = {}
    campaign_runner = None
    if "runner" in inspect.signature(runner).parameters:
        campaign_runner = _runner_from(args)
        kwargs["runner"] = campaign_runner
    try:
        result = runner(settings, **kwargs)
    finally:
        if campaign_runner is not None:
            campaign_runner.close()
    print()
    print(result.render())
    if campaign_runner is not None and campaign_runner.telemetry.runs:
        print()
        print(campaign_runner.telemetry.summary())
    return 0


def _follow_trace(args: argparse.Namespace) -> int:
    """Tail a growing JSONL trace export (``repro trace --follow``)."""
    follower = TraceFollower(args.follow)
    components = None
    if args.component:
        components = [
            name.strip()
            for entry in args.component
            for name in entry.split(",")
            if name.strip()
        ]
    # Wall-clock by design: --follow observes a file another process
    # is writing, never the simulation itself.
    idle_since = time.monotonic()  # repro-lint: ignore[RPL001]  # live tail
    while True:
        records = follower.poll()
        if records:
            idle_since = time.monotonic()  # repro-lint: ignore[RPL001]  # live tail
            shown = filter_records(
                records, components=components, t0=args.t0, t1=args.t1
            )
            if shown:
                if args.format == "json":
                    for line in iter_jsonl_lines(shown):
                        print(line, flush=True)
                else:
                    print(render_timeline(shown), flush=True)
        elif args.idle_timeout is not None:
            idle = time.monotonic() - idle_since  # repro-lint: ignore[RPL001]  # live tail
            if idle >= args.idle_timeout:
                return 0
        time.sleep(args.poll)


def cmd_trace(args: argparse.Namespace) -> int:
    """Print a sim-time timeline from a traced run or JSONL exports."""
    if args.follow:
        return _follow_trace(args)
    recorder = Recorder()
    if args.input:
        traces = []
        for path in args.input:
            trace, registry = read_jsonl(path)
            traces.append(trace)
            recorder.registry.merge_snapshot(registry.snapshot())
        recorder.trace = merge_traces(*traces)
    else:
        config = _scenario_from(args)
        print(
            f"Tracing {config.label()} ({config.duration:.0f} s simulated)...",
            file=sys.stderr,
        )
        run_session(config, recorder=recorder)
        recorder.trace = merge_traces(recorder.trace)
    components = None
    if args.component:
        components = [
            name.strip()
            for entry in args.component
            for name in entry.split(",")
            if name.strip()
        ]
    records = filter_records(
        recorder.trace, components=components, t0=args.t0, t1=args.t1
    )
    if args.format == "json":
        # One JSONL line per record — byte-compatible with --out files
        # and read_jsonl, so downstream tools (repro diagnose --input,
        # jq pipelines) consume either path identically.
        for line in iter_jsonl_lines(
            records, recorder.registry if args.metrics else None
        ):
            print(line)
    else:
        print(render_timeline(records))
        if args.metrics:
            print()
            print(recorder.registry.render())
    if args.out:
        path = write_jsonl(args.out, recorder)
        print(f"\nwrote {path}", file=sys.stderr)
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    """Detect SLO violations and print ranked root-cause attributions."""
    if args.input:
        traces = []
        for path in args.input:
            trace, _registry = read_jsonl(path)
            traces.append(trace)
        trace = merge_traces(*traces)
    else:
        config = _scenario_from(args)
        print(
            f"Diagnosing {config.label()} "
            f"({config.duration:.0f} s simulated)...",
            file=sys.stderr,
        )
        recorder = Recorder()
        run_session(config, recorder=recorder)
        trace = recorder.trace
    diagnosis = diagnose(
        trace, warmup=args.warmup, lag_horizon=args.lag_horizon
    )
    payload = diagnosis.to_dict()
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(diagnosis.render(args.format))
    if args.json_out:
        errors = validate_diagnosis(payload)
        if errors:
            for error in errors:
                print(f"schema error: {error}", file=sys.stderr)
            return 1
        path = Path(args.json_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"\nwrote {path}", file=sys.stderr)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one workload and write report + JSON summary."""
    from repro.profiling import profile_callable

    if args.target == "session" and args.fleet > 0:
        from repro.core.fleet import FleetConfig, run_fleet

        fleet_config = FleetConfig(
            base=_scenario_from(args), num_sessions=args.fleet
        )
        workload: Callable[[], object] = lambda: run_fleet(fleet_config)
        label = f"fleet{args.fleet}-{fleet_config.base.label()}"
    elif args.target == "session":
        config = _scenario_from(args)
        workload = lambda: run_session(config)
        label = f"session-{config.label()}"
    elif args.target in FIGURES:
        import repro.experiments as experiments

        runner_name, _ = FIGURES[args.target]
        runner = getattr(experiments, runner_name)
        seeds = tuple(range(1, args.seeds + 1))
        settings = ExperimentSettings(
            duration=args.duration,
            seeds=seeds,
            warmup=min(30.0, args.duration / 4),
        )
        workload = lambda: runner(settings)
        label = f"figure-{args.target}"
    else:
        print(
            f"unknown target {args.target!r}; choices: session, "
            f"{', '.join(sorted(FIGURES))}"
        )
        return 2
    print(f"Profiling {label} (engine: {args.engine})...", file=sys.stderr)
    report = profile_callable(
        workload,
        target=label,
        engine=args.engine,
        top=args.top,
        sort=args.sort,
    )
    text_path, json_path = report.write(args.out)
    print(report.text)
    print(f"wall time: {report.wall_time:.2f} s (engine: {report.engine})")
    print(f"wrote {text_path}")
    print(f"wrote {json_path}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Sweep fleet density and print per-session QoE."""
    from repro.experiments.fleet import run_fleet_density

    config = _scenario_from(args)
    try:
        densities = tuple(
            int(value) for value in args.densities.split(",") if value.strip()
        )
    except ValueError:
        print(f"invalid --densities {args.densities!r} (expect e.g. 1,2,4,8)")
        return 2
    if not densities or any(d < 1 for d in densities):
        print(f"invalid --densities {args.densities!r} (sizes must be >= 1)")
        return 2
    seeds = tuple(range(1, args.seeds + 1))
    settings = ExperimentSettings(
        duration=args.duration, seeds=seeds, warmup=min(30.0, args.duration / 4)
    )
    print(
        f"Fleet density sweep {config.label()} "
        f"(N in {list(densities)}, {settings.duration:.0f} s x "
        f"{len(seeds)} seeds)..."
    )
    with _runner_from(args) as runner:
        result = run_fleet_density(
            config,
            settings,
            densities=densities,
            spread_radius=args.spread_radius,
            obs=args.obs,
            runner=runner,
        )
    print()
    print(result.render())
    if runner.telemetry.runs:
        print()
        print(runner.telemetry.summary())
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    """Render the live dashboard over a campaign's status file."""
    # The watcher is pure wall-clock territory — it reads a status
    # file some other process refreshes; nothing here touches sim time.
    while True:
        status = read_status(args.status)
        print(render_status(status), flush=True)
        if args.once:
            return 0 if status is not None else 1
        if status is not None and status.get("finished"):
            return 0
        time.sleep(args.interval)


def cmd_list_figures(args: argparse.Namespace) -> int:
    """List the regenerable figures."""
    for name in sorted(FIGURES):
        print(name)
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the invariant linter (same engine as ``python -m repro.lint``)."""
    from repro.lint.runner import run_with_args

    return run_with_args(args, args._parser)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for the IMC'22 remote-piloting "
        "video-delivery study.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one measurement flight")
    _add_scenario_arguments(run_parser)
    run_parser.set_defaults(func=cmd_run)

    dataset_parser = sub.add_parser("dataset", help="export a campaign dataset")
    dataset_parser.add_argument("--out", default="dataset")
    dataset_parser.add_argument("--environments", default="urban,rural")
    dataset_parser.add_argument("--methods", default="static,gcc,scream")
    dataset_parser.add_argument("--platform", default="air", choices=["air", "ground"])
    dataset_parser.add_argument("--duration", type=float, default=180.0)
    dataset_parser.add_argument("--seeds", type=int, default=2)
    _add_runner_arguments(dataset_parser)
    dataset_parser.set_defaults(func=cmd_dataset)

    figure_parser = sub.add_parser(
        "figure",
        help="regenerate a paper figure",
        description="Regenerate one of the paper's figures/tables. Campaigns "
        "fan out over --workers processes and reuse cached runs from "
        "--cache-dir; pass --no-cache to force fresh simulations.",
    )
    figure_parser.add_argument("name", help="figure id (see list-figures)")
    figure_parser.add_argument("--duration", type=float, default=150.0)
    figure_parser.add_argument("--seeds", type=int, default=2)
    _add_runner_arguments(figure_parser)
    figure_parser.set_defaults(func=cmd_figure)

    list_parser = sub.add_parser("list-figures", help="list regenerable figures")
    list_parser.set_defaults(func=cmd_list_figures)

    trace_parser = sub.add_parser(
        "trace",
        help="trace one run (or merge JSONL exports) into a timeline",
        description="Fly one instrumented measurement run and print the "
        "merged sim-time timeline of congestion-control, handover and "
        "jitter-buffer records; or, with --input, merge previously "
        "exported JSONL traces instead of simulating.",
    )
    _add_scenario_arguments(trace_parser)
    trace_parser.set_defaults(cc="gcc", duration=60.0)
    trace_parser.add_argument(
        "--input",
        action="append",
        default=[],
        metavar="FILE",
        help="JSONL trace export(s) to merge instead of running a session",
    )
    trace_parser.add_argument(
        "--follow",
        default=None,
        metavar="FILE",
        help="tail a growing JSONL export live, printing records as the "
        "writer appends them (tolerates the in-progress last line)",
    )
    trace_parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds between --follow polls (default 0.5)",
    )
    trace_parser.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop --follow after this long without new records "
        "(default: follow forever)",
    )
    trace_parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the merged trace + metrics as JSONL",
    )
    trace_parser.add_argument(
        "--component",
        action="append",
        default=[],
        help="only show these components (repeatable or comma-separated; "
        "e.g. --component gcc,handover)",
    )
    trace_parser.add_argument(
        "--t0", type=float, default=None, help="window start, sim seconds"
    )
    trace_parser.add_argument(
        "--t1", type=float, default=None, help="window end, sim seconds"
    )
    trace_parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the metric registry after the timeline",
    )
    trace_parser.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="timeline rendering: aligned text table (default) or the "
        "JSONL export format (one record per line)",
    )
    trace_parser.set_defaults(func=cmd_trace)

    diagnose_parser = sub.add_parser(
        "diagnose",
        help="detect SLO violations and attribute their root causes",
        description="Evaluate the paper's remote-piloting SLOs (playback "
        "latency < 300 ms, zero stalls, bitrate, FPS) over a traced run "
        "— or a previously exported JSONL trace — and rank the causally "
        "relevant trace events (handover executions, loss bursts, "
        "capacity dips, CC rate cuts, ...) behind each violation.",
    )
    _add_scenario_arguments(diagnose_parser)
    diagnose_parser.set_defaults(cc="gcc", duration=60.0)
    diagnose_parser.add_argument(
        "--input",
        action="append",
        default=[],
        metavar="FILE",
        help="JSONL trace export(s) to diagnose instead of running a session",
    )
    diagnose_parser.add_argument(
        "--format",
        default="text",
        choices=["text", "markdown", "json"],
        help="report rendering (default text)",
    )
    diagnose_parser.add_argument(
        "--json-out",
        default=None,
        metavar="FILE",
        help="also write the machine-readable diagnosis JSON "
        "(schema-validated) to FILE",
    )
    diagnose_parser.add_argument(
        "--warmup",
        type=float,
        default=5.0,
        help="ignore violations before this sim time (default 5 s)",
    )
    diagnose_parser.add_argument(
        "--lag-horizon",
        type=float,
        default=2.0,
        help="max seconds between a cause ending and a violation "
        "starting (default 2 s)",
    )
    diagnose_parser.set_defaults(func=cmd_diagnose)

    profile_parser = sub.add_parser(
        "profile",
        help="profile a session or figure and write hot-spot reports",
        description="Run one workload under cProfile (or pyinstrument when "
        "installed) and write a ranked text report plus a JSON summary "
        "for CI archiving.",
    )
    profile_parser.add_argument(
        "target",
        nargs="?",
        default="session",
        help="'session' (default) or a figure id (see list-figures)",
    )
    _add_scenario_arguments(profile_parser)
    profile_parser.set_defaults(cc="gcc", duration=60.0)
    profile_parser.add_argument(
        "--seeds", type=int, default=1, help="seeds per figure campaign"
    )
    profile_parser.add_argument(
        "--fleet",
        type=int,
        default=0,
        metavar="N",
        help="profile an N-session shared-cell fleet run instead of a "
        "single session (session target only; runs the vectorized "
        "fleet fast path)",
    )
    profile_parser.add_argument(
        "--engine",
        default="auto",
        choices=["auto", "cprofile", "pyinstrument"],
        help="profiler backend (auto = pyinstrument if installed)",
    )
    profile_parser.add_argument(
        "--sort",
        default="cumulative",
        choices=["cumulative", "tottime"],
        help="ranking for the cProfile report",
    )
    profile_parser.add_argument(
        "--top", type=int, default=30, help="functions to keep in the reports"
    )
    profile_parser.add_argument(
        "--out", default="profiles", help="output directory (default profiles/)"
    )
    profile_parser.set_defaults(func=cmd_profile)

    fleet_parser = sub.add_parser(
        "fleet",
        help="sweep fleet density over shared PRB-contended cells",
        description="Run N concurrent video sessions per fleet on one "
        "shared cell layout (PRB scheduling, admission control, "
        "load-balancing handover offsets) and print per-session QoE "
        "vs. fleet density — the shared-cell contention axis the "
        "paper's single-UAV measurements could not reach.",
    )
    _add_scenario_arguments(fleet_parser)
    fleet_parser.set_defaults(cc="gcc", duration=120.0)
    fleet_parser.add_argument(
        "--densities",
        default="1,2,4,8",
        help="comma-separated fleet sizes to sweep (default 1,2,4,8)",
    )
    fleet_parser.add_argument(
        "--seeds", type=int, default=2, help="fleet runs per density"
    )
    fleet_parser.add_argument(
        "--spread-radius",
        type=float,
        default=50.0,
        help="horizontal ring radius (m) spreading fleet trajectories "
        "(small keeps the fleet on the same cells; default 50)",
    )
    fleet_parser.add_argument(
        "--obs",
        nargs="?",
        const="trace",
        default="off",
        choices=["off", "metrics", "trace"],
        help="observability level: 'metrics' keeps the vectorized fast "
        "path and adds per-member goodput/PRB/SINR histograms; 'trace' "
        "(the bare-flag default) runs fully instrumented and attributes "
        "latency violations to cell congestion",
    )
    _add_runner_arguments(fleet_parser)
    fleet_parser.set_defaults(func=cmd_fleet)

    watch_parser = sub.add_parser(
        "watch",
        help="live dashboard over a running campaign's status file",
        description="Render the live campaign dashboard (progress bar, "
        "per-worker activity, ETA, cache counters, per-cell occupancy) "
        "from the atomic JSON status file another repro process writes "
        "when launched with --status-file. Exits when the campaign "
        "finishes, or immediately with --once.",
    )
    watch_parser.add_argument(
        "--status",
        default="campaign_status.json",
        metavar="FILE",
        help="status file to watch (default campaign_status.json)",
    )
    watch_parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between refreshes (default 1)",
    )
    watch_parser.add_argument(
        "--once",
        action="store_true",
        help="render one snapshot and exit (exit 1 if no status yet)",
    )
    watch_parser.set_defaults(func=cmd_watch)

    lint_parser = sub.add_parser(
        "lint",
        help="check repo invariants (determinism, units, trace schema, "
        "RNG streams)",
        description="Whole-program invariant linter; exits 1 on findings, "
        "3 on internal analysis errors. Suppress a deliberate violation "
        "with '# repro-lint: ignore[RULE]  # reason'.",
    )
    from repro.lint.runner import add_lint_arguments

    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(func=cmd_lint, _parser=lint_parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
