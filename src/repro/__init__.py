"""repro — reproduction of "Analyzing Real-time Video Delivery over
Cellular Networks for Remote Piloting Aerial Vehicles" (IMC '22).

The package simulates the paper's measurement system end to end: an
adaptive RTP video pipeline (GCC, SCReAM and static bitrate control)
streaming over an emulated LTE network driven by UAV flight
trajectories, plus the metrics and experiment harness that regenerate
every figure of the paper's evaluation.

Quickstart::

    from repro import ScenarioConfig, run_session
    from repro.metrics import VideoSummary

    result = run_session(ScenarioConfig(cc="gcc", environment="urban",
                                        duration=120.0, seed=7))
    print(VideoSummary.from_result(result))
"""

from repro.core import (
    ScenarioConfig,
    Environment,
    Platform,
    CcAlgorithm,
    SessionResult,
    run_session,
    FleetConfig,
    FleetResult,
    run_fleet,
)
from repro.runner import CampaignRunner, ResultCache

__version__ = "1.0.0"

__all__ = [
    "ScenarioConfig",
    "Environment",
    "Platform",
    "CcAlgorithm",
    "SessionResult",
    "run_session",
    "FleetConfig",
    "FleetResult",
    "run_fleet",
    "CampaignRunner",
    "ResultCache",
    "__version__",
]
