"""Trace schema mirroring the paper's released dataset.

The authors publish ~7 GB of per-packet logs, RRC (handover) event
logs and signal reports per measurement run. Offline we cannot ship
their data, so :mod:`repro.traces` defines an equivalent schema and
generates synthetic traces from the cellular model; the analysis code
consumes either. Three record types per run:

* ``packets.csv`` — one row per delivered RTP packet (sequence, send
  time, receive time, size, frame id) — the tcpdump-derived log;
* ``handovers.csv`` — one row per RRC handover (time, source cell,
  target cell, execution time, altitude) — the QCSuper-derived log;
* ``channel.csv`` — the 100 ms channel samples (capacity, serving
  cell, RSRP, SINR, altitude) — the ground truth a testbed lacks but
  an emulator can expose, enabling trace replay.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Iterable, Type, TypeVar

T = TypeVar("T")


@dataclass
class PacketRecord:
    """One delivered RTP packet (schema of ``packets.csv``)."""

    sequence: int
    sent_at: float
    received_at: float
    size_bytes: int
    frame_id: int

    @property
    def one_way_delay(self) -> float:
        """Transport one-way delay in seconds."""
        return self.received_at - self.sent_at


@dataclass
class HandoverRecord:
    """One RRC handover event (schema of ``handovers.csv``)."""

    time: float
    source_cell: int
    target_cell: int
    execution_time: float
    altitude: float


@dataclass
class ChannelRecord:
    """One 100 ms channel snapshot (schema of ``channel.csv``)."""

    time: float
    uplink_bps: float
    downlink_bps: float
    serving_cell: int
    rsrp_dbm: float
    sinr_db: float
    altitude: float


_CASTS = {int: int, float: float, str: str}


def write_csv(path: Path | str, records: Iterable[object]) -> int:
    """Write dataclass records to ``path`` as CSV; returns row count."""
    records = list(records)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not records:
        path.write_text("")
        return 0
    names = [f.name for f in fields(records[0])]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(names)
        for record in records:
            writer.writerow([getattr(record, name) for name in names])
    return len(records)


def read_csv(path: Path | str, record_type: Type[T]) -> list[T]:
    """Read dataclass records of ``record_type`` from a CSV file."""
    path = Path(path)
    text = path.read_text()
    return parse_csv(text, record_type)


def parse_csv(text: str, record_type: Type[T]) -> list[T]:
    """Parse CSV text into dataclass records (inverse of write_csv)."""
    if not text.strip():
        return []
    reader = csv.reader(io.StringIO(text))
    header = next(reader)
    field_types = {f.name: f.type for f in fields(record_type)}
    casts = []
    for name in header:
        if name not in field_types:
            raise ValueError(
                f"unknown column {name!r} for {record_type.__name__}"
            )
        type_name = field_types[name]
        cast = float if type_name in ("float", float) else int
        casts.append(cast)
    records = []
    for row in reader:
        if not row:
            continue
        kwargs = {
            name: cast(value) for name, cast, value in zip(header, casts, row)
        }
        records.append(record_type(**kwargs))
    return records
