"""Dataset schema, export/import and channel-trace replay."""

from repro.traces.schema import (
    PacketRecord,
    HandoverRecord,
    ChannelRecord,
    write_csv,
    read_csv,
    parse_csv,
)
from repro.traces.dataset import (
    TraceRun,
    export_session,
    load_run,
    list_runs,
    PACKETS_FILE,
    HANDOVERS_FILE,
    CHANNEL_FILE,
    META_FILE,
)
from repro.traces.replay import TraceReplayChannel

__all__ = [
    "PacketRecord",
    "HandoverRecord",
    "ChannelRecord",
    "write_csv",
    "read_csv",
    "parse_csv",
    "TraceRun",
    "export_session",
    "load_run",
    "list_runs",
    "PACKETS_FILE",
    "HANDOVERS_FILE",
    "CHANNEL_FILE",
    "META_FILE",
    "TraceReplayChannel",
]
