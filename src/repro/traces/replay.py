"""Trace replay: drive a network path from a recorded channel trace.

The reproducibility hook the paper's release enables: instead of the
live cellular model, a :class:`TraceReplayChannel` replays a recorded
``channel.csv`` — capacity over time plus handover outages — so a
video-pipeline experiment runs against the *exact same* channel
twice. This is how the ablation benches hold the channel fixed while
varying one pipeline knob.
"""

from __future__ import annotations

import bisect

from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop
from repro.traces.schema import ChannelRecord, HandoverRecord


class TraceReplayChannel:
    """Replays capacity samples and handover outages from a trace.

    Exposes the same ``uplink_rate`` / ``downlink_rate`` / ``attach_path``
    / ``start`` surface as :class:`repro.cellular.channel.CellularChannel`,
    so :mod:`repro.core` pipelines run unchanged on recorded channels.
    """

    def __init__(
        self,
        loop: EventLoop,
        channel: list[ChannelRecord],
        handovers: list[HandoverRecord] | None = None,
    ) -> None:
        if not channel:
            raise ValueError("channel trace must not be empty")
        self._loop = loop
        self._times = [record.time for record in channel]
        if any(b <= a for a, b in zip(self._times, self._times[1:])):
            raise ValueError("channel trace times must be strictly increasing")
        self._records = channel
        self._handovers = list(handovers or [])
        self._paths: list[NetworkPath] = []
        self._started = False

    def _record_at(self, now: float) -> ChannelRecord:
        index = bisect.bisect_right(self._times, now) - 1
        return self._records[max(index, 0)]

    def uplink_rate(self, now: float) -> float:
        """Uplink capacity at simulated time ``now`` (step-wise)."""
        return self._record_at(now).uplink_bps

    def downlink_rate(self, now: float) -> float:
        """Downlink capacity at simulated time ``now`` (step-wise)."""
        return self._record_at(now).downlink_bps

    def attach_path(self, path: NetworkPath) -> None:
        """Register a path whose outages this replay controls."""
        self._paths.append(path)

    def start(self) -> None:
        """Schedule the handover outages recorded in the trace."""
        if self._started:
            raise RuntimeError("replay already started")
        self._started = True
        for event in self._handovers:
            if event.time < self._loop.now:
                continue
            self._loop.call_at(event.time, self._make_outage(event))

    def _make_outage(self, event: HandoverRecord):
        def begin() -> None:
            for path in self._paths:
                path.set_up(False)

            def end() -> None:
                for path in self._paths:
                    path.set_up(True)

            self._loop.call_later(event.execution_time, end)

        return begin
