"""Dataset export/import: one directory per measurement run.

Mirrors the layout of the paper's released dataset: a directory per
run holding the per-packet log, the handover log, the channel samples
and a small metadata file. ``export_session`` turns a
:class:`repro.core.session.SessionResult` into such a directory;
``load_run`` reads one back for offline analysis — the same round
trip the paper's parsing scripts perform on the real captures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.session import SessionResult
from repro.traces.schema import (
    ChannelRecord,
    HandoverRecord,
    PacketRecord,
    read_csv,
    write_csv,
)

PACKETS_FILE = "packets.csv"
HANDOVERS_FILE = "handovers.csv"
CHANNEL_FILE = "channel.csv"
META_FILE = "meta.json"


@dataclass
class TraceRun:
    """One measurement run loaded from disk."""

    meta: dict
    packets: list[PacketRecord]
    handovers: list[HandoverRecord]
    channel: list[ChannelRecord]

    @property
    def duration(self) -> float:
        """Run duration recorded in the metadata."""
        return float(self.meta["duration"])


def export_session(result: SessionResult, directory: Path | str) -> Path:
    """Write ``result`` as a dataset run directory; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_csv(
        directory / PACKETS_FILE,
        [
            PacketRecord(
                sequence=entry.sequence,
                sent_at=entry.sent_at,
                received_at=entry.received_at,
                size_bytes=entry.size_bytes,
                frame_id=entry.frame_id,
            )
            for entry in result.packet_log
        ],
    )
    write_csv(
        directory / HANDOVERS_FILE,
        [
            HandoverRecord(
                time=event.time,
                source_cell=event.source_cell,
                target_cell=event.target_cell,
                execution_time=event.execution_time,
                altitude=event.altitude,
            )
            for event in result.handovers
        ],
    )
    write_csv(
        directory / CHANNEL_FILE,
        [
            ChannelRecord(
                time=sample.time,
                uplink_bps=sample.uplink_bps,
                downlink_bps=sample.downlink_bps,
                serving_cell=sample.serving_cell,
                rsrp_dbm=sample.rsrp_dbm,
                sinr_db=sample.sinr_db,
                altitude=sample.altitude,
            )
            for sample in result.capacity_samples
        ],
    )
    meta = {
        "environment": result.config.environment.value,
        "platform": result.config.platform.value,
        "operator": result.config.operator,
        "cc": result.config.cc.value,
        "seed": result.config.seed,
        "duration": result.duration,
        "packets_sent": result.packets_sent,
        "cells_seen": result.cells_seen,
        "label": result.config.label(),
    }
    (directory / META_FILE).write_text(json.dumps(meta, indent=2))
    return directory


def load_run(directory: Path | str) -> TraceRun:
    """Load one run directory written by :func:`export_session`."""
    directory = Path(directory)
    meta = json.loads((directory / META_FILE).read_text())
    return TraceRun(
        meta=meta,
        packets=read_csv(directory / PACKETS_FILE, PacketRecord),
        handovers=read_csv(directory / HANDOVERS_FILE, HandoverRecord),
        channel=read_csv(directory / CHANNEL_FILE, ChannelRecord),
    )


def list_runs(root: Path | str) -> list[Path]:
    """Run directories (those containing a metadata file) under ``root``."""
    root = Path(root)
    if not root.exists():
        return []
    return sorted(
        path.parent for path in root.glob(f"*/{META_FILE}")
    )
