"""Small streaming statistics helpers used across the stack.

These are deliberately dependency-free and O(1)/O(window) so they can
run inside per-packet hot paths of the simulator.
"""

from __future__ import annotations

import math
from collections import deque


class EwmaFilter:
    """Exponentially weighted moving average.

    Parameters
    ----------
    alpha:
        Smoothing factor in (0, 1]; higher values track faster.
    initial:
        Optional initial value. When omitted, the first update seeds
        the average directly.
    """

    def __init__(self, alpha: float, initial: float | None = None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._value = initial

    @property
    def value(self) -> float | None:
        """Current average, or ``None`` before the first update."""
        return self._value

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the average and return the new value."""
        if self._value is None:
            self._value = float(sample)
        else:
            self._value += self.alpha * (sample - self._value)
        return self._value

    def reset(self, value: float | None = None) -> None:
        """Forget history, optionally re-seeding with ``value``."""
        self._value = value


class RunningMinMax:
    """Tracks the minimum and maximum of an unbounded stream."""

    def __init__(self) -> None:
        self.minimum = math.inf
        self.maximum = -math.inf
        self.count = 0

    def update(self, sample: float) -> None:
        """Fold ``sample`` into the running extrema."""
        self.count += 1
        if sample < self.minimum:
            self.minimum = float(sample)
        if sample > self.maximum:
            self.maximum = float(sample)

    @property
    def spread(self) -> float:
        """``max - min`` seen so far (``nan`` before any update)."""
        if self.count == 0:
            return math.nan
        return self.maximum - self.minimum


class WindowedMinMax:
    """Minimum/maximum over a sliding time window.

    Samples are ``(timestamp, value)`` pairs; old samples expire once
    they fall outside ``window`` seconds of the latest timestamp. Used
    by SCReAM's base-delay tracking and the handover latency-ratio
    analysis (Fig. 9).

    Implemented with monotonic deques so :meth:`update`,
    :attr:`minimum` and :attr:`maximum` are all O(1) amortized — this
    sits on the per-ack hot path of the SCReAM controller.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._count = 0
        # Monotonic deques of (time, value): _mins ascending values,
        # _maxs descending values.
        self._mins: deque[tuple[float, float]] = deque()
        self._maxs: deque[tuple[float, float]] = deque()
        self._times: deque[float] = deque()

    def update(self, now: float, value: float) -> None:
        """Add a sample at time ``now`` and expire stale entries."""
        value = float(value)
        self._times.append(now)
        self._count += 1
        while self._mins and self._mins[-1][1] >= value:
            self._mins.pop()
        self._mins.append((now, value))
        while self._maxs and self._maxs[-1][1] <= value:
            self._maxs.pop()
        self._maxs.append((now, value))
        horizon = now - self.window
        while self._times and self._times[0] < horizon:
            self._times.popleft()
            self._count -= 1
        while self._mins and self._mins[0][0] < horizon:
            self._mins.popleft()
        while self._maxs and self._maxs[0][0] < horizon:
            self._maxs.popleft()

    @property
    def minimum(self) -> float:
        """Smallest value in the window (``nan`` when empty)."""
        if not self._mins:
            return math.nan
        return self._mins[0][1]

    @property
    def maximum(self) -> float:
        """Largest value in the window (``nan`` when empty)."""
        if not self._maxs:
            return math.nan
        return self._maxs[0][1]

    def __len__(self) -> int:
        return self._count
