"""Unit conversion helpers.

Module boundaries in this project use SI base units: seconds for time,
bytes for sizes, bits per second for rates. These helpers make call
sites that deal in milliseconds or Mbps readable without ad-hoc
``* 1e6`` arithmetic scattered around.
"""

from __future__ import annotations


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a byte count to bits."""
    return num_bytes * 8.0


def bits_to_bytes(num_bits: float) -> float:
    """Convert a bit count to bytes (may be fractional)."""
    return num_bits / 8.0


def mbps(rate_mbps: float) -> float:
    """Express a rate given in Mbit/s as bits per second."""
    return rate_mbps * 1e6


def to_mbps(rate_bps: float) -> float:
    """Express a rate given in bits per second as Mbit/s."""
    return rate_bps / 1e6


def to_megabytes(num_bytes: float) -> float:
    """Express a byte count in (decimal) megabytes, for display."""
    return num_bytes / 1e6


def ms(duration_ms: float) -> float:
    """Express a duration given in milliseconds as seconds."""
    return duration_ms / 1e3


def to_ms(duration_s: float) -> float:
    """Express a duration given in seconds as milliseconds."""
    return duration_s * 1e3
