"""Deterministic random-stream derivation.

Every stochastic component in the simulator draws from its own
:class:`numpy.random.Generator`, derived from the scenario seed and a
stable string label. Two runs with the same scenario seed therefore
produce identical results regardless of the order in which components
are constructed, and changing one component's draws never perturbs
another's.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence

import numpy as np


class RngStreams:
    """Factory for named, independent random generators.

    Parameters
    ----------
    seed:
        Root seed for the whole scenario.

    Examples
    --------
    >>> streams = RngStreams(42)
    >>> a = streams.derive("fading")
    >>> b = streams.derive("loss")
    >>> a is not b
    True
    >>> streams2 = RngStreams(42)
    >>> float(a.random()) == float(streams2.derive("fading").random())
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def derive(self, label: str) -> np.random.Generator:
        """Return a fresh generator for ``label``.

        The same ``(seed, label)`` pair always yields an identical
        stream; distinct labels yield independent streams.
        """
        tag = zlib.crc32(label.encode("utf-8"))
        return np.random.default_rng(np.random.SeedSequence([self._seed, tag]))

    def child(self, label: str) -> "RngStreams":
        """Return a sub-factory namespaced under ``label``.

        Useful when a subsystem needs to hand out further streams
        without risking label collisions with its siblings.
        """
        tag = zlib.crc32(label.encode("utf-8"))
        return RngStreams((self._seed * 1_000_003 + tag) % (2**63))


#: Default refill size for the batched draw buffers. Big enough to
#: amortize the numpy call overhead (~20x per-draw cost for scalar
#: calls), small enough that a short run does not waste draws.
_BATCH_BLOCK = 512


class BatchedNormal:
    """Scalar normal draws served from block refills of one stream.

    ``numpy``'s ``Generator.normal(loc, scale)`` is ``loc + scale *
    standard_normal()`` under the hood, and a block draw of
    ``standard_normal(n)`` consumes the bit generator in exactly the
    same order as ``n`` scalar calls. Serving scalars out of a
    refilled block therefore produces **bit-identical** values to the
    equivalent scalar calls on the same stream — including when
    consecutive draws use different ``loc``/``scale`` — at a fraction
    of the per-draw cost (the RNG-stability tests pin this equality).

    ``preload`` seeds the buffer with draws that were *already taken*
    from ``rng`` (e.g. one row of a :class:`SweepDrawPlan` block): the
    wrapper serves the preloaded values first and refills from the
    generator — which has advanced past them — once they run out, so
    the served stream is bit-identical regardless of how well the
    preload size matched the run's appetite.

    Do **not** mix a :class:`BatchedNormal` and direct generator calls
    (or a :class:`BatchedUniform`) on the *same* underlying stream:
    the refill prefetches draws, so interleaving would reorder the
    stream. Each component already owns a private derived stream, so
    in practice one wrapper per component is the rule.
    """

    __slots__ = ("_rng", "_block", "_buf", "_idx")

    def __init__(
        self,
        rng: np.random.Generator,
        block: int = _BATCH_BLOCK,
        preload: np.ndarray | None = None,
    ) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self._buf: list[float] = [] if preload is None else list(preload)
        self._idx = 0

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Equivalent of ``float(rng.normal(loc, scale))``."""
        idx = self._idx
        if idx >= len(self._buf):
            self._buf = self._rng.standard_normal(self._block).tolist()
            idx = 0
        self._idx = idx + 1
        return loc + scale * self._buf[idx]


class BatchedUniform:
    """Scalar uniform draws served from block refills of one stream.

    Both ``Generator.random()`` and ``Generator.uniform(low, high)``
    consume exactly one raw double from the bit generator, so one
    buffer of raw doubles serves either call shape with bit-identical
    results (``uniform`` is ``low + (high - low) * random()`` in C and
    reproduced here with the same double arithmetic).

    The same single-stream and ``preload`` semantics as
    :class:`BatchedNormal` apply.
    """

    __slots__ = ("_rng", "_block", "_buf", "_idx")

    def __init__(
        self,
        rng: np.random.Generator,
        block: int = _BATCH_BLOCK,
        preload: np.ndarray | None = None,
    ) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self._buf: list[float] = [] if preload is None else list(preload)
        self._idx = 0

    def random(self) -> float:
        """Equivalent of ``float(rng.random())``."""
        idx = self._idx
        if idx >= len(self._buf):
            self._buf = self._rng.random(self._block).tolist()
            idx = 0
        self._idx = idx + 1
        return self._buf[idx]

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Equivalent of ``float(rng.uniform(low, high))``."""
        return low + (high - low) * self.random()


#: Stream-spec kinds understood by :class:`SweepDrawPlan`.
STREAM_NORMAL = "normal"
STREAM_UNIFORM = "uniform"


class StreamSpec:
    """One derived stream a sweep wants pre-drawn: label, kind, count."""

    __slots__ = ("label", "kind", "count")

    def __init__(self, label: str, kind: str, count: int) -> None:
        if kind not in (STREAM_NORMAL, STREAM_UNIFORM):
            raise ValueError(f"unknown stream kind {kind!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.label = label
        self.kind = kind
        self.count = int(count)


class SweepDrawPlan:
    """Struct-of-arrays RNG refill for a whole seed sweep.

    For every :class:`StreamSpec` the plan holds one ``(n_seeds,
    count)`` float64 block whose row ``i`` is the first ``count``
    draws of seed ``i``'s derived stream — filled with **one** numpy
    call per ``(seed, stream)`` instead of one 512-draw refill every
    512 scalar draws. :meth:`wrappers` hands row views out as
    preloaded :class:`BatchedNormal` / :class:`BatchedUniform`
    buffers, so a batched run consumes the exact same values the
    scalar path would have drawn, and overruns fall back to the
    (already advanced) per-seed generator.
    """

    def __init__(self, seeds: Sequence[int], specs: Sequence[StreamSpec]) -> None:
        if not seeds:
            raise ValueError("seeds must be non-empty")
        self.seeds = tuple(int(s) for s in seeds)
        self.specs = tuple(specs)
        self._blocks: dict[str, np.ndarray] = {}
        self._generators: dict[tuple[int, str], np.random.Generator] = {}
        for spec in self.specs:
            block = np.empty((len(self.seeds), spec.count), dtype=np.float64)
            for row, seed in enumerate(self.seeds):
                rng = RngStreams(seed).derive(spec.label)
                if spec.kind == STREAM_NORMAL:
                    block[row] = rng.standard_normal(spec.count)
                else:
                    block[row] = rng.random(spec.count)
                self._generators[(seed, spec.label)] = rng
            self._blocks[spec.label] = block

    def block(self, label: str) -> np.ndarray:
        """The ``(n_seeds, count)`` draw block for one stream label."""
        return self._blocks[label]

    def wrappers(self, seed: int) -> dict[str, BatchedNormal | BatchedUniform]:
        """Preloaded per-stream draw buffers for one seed of the sweep."""
        row = self.seeds.index(int(seed))
        out: dict[str, BatchedNormal | BatchedUniform] = {}
        for spec in self.specs:
            rng = self._generators[(self.seeds[row], spec.label)]
            preload = self._blocks[spec.label][row]
            if spec.kind == STREAM_NORMAL:
                out[spec.label] = BatchedNormal(rng, preload=preload)
            else:
                out[spec.label] = BatchedUniform(rng, preload=preload)
        return out
