"""Deterministic random-stream derivation.

Every stochastic component in the simulator draws from its own
:class:`numpy.random.Generator`, derived from the scenario seed and a
stable string label. Two runs with the same scenario seed therefore
produce identical results regardless of the order in which components
are constructed, and changing one component's draws never perturbs
another's.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """Factory for named, independent random generators.

    Parameters
    ----------
    seed:
        Root seed for the whole scenario.

    Examples
    --------
    >>> streams = RngStreams(42)
    >>> a = streams.derive("fading")
    >>> b = streams.derive("loss")
    >>> a is not b
    True
    >>> streams2 = RngStreams(42)
    >>> float(a.random()) == float(streams2.derive("fading").random())
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def derive(self, label: str) -> np.random.Generator:
        """Return a fresh generator for ``label``.

        The same ``(seed, label)`` pair always yields an identical
        stream; distinct labels yield independent streams.
        """
        tag = zlib.crc32(label.encode("utf-8"))
        return np.random.default_rng(np.random.SeedSequence([self._seed, tag]))

    def child(self, label: str) -> "RngStreams":
        """Return a sub-factory namespaced under ``label``.

        Useful when a subsystem needs to hand out further streams
        without risking label collisions with its siblings.
        """
        tag = zlib.crc32(label.encode("utf-8"))
        return RngStreams((self._seed * 1_000_003 + tag) % (2**63))


#: Default refill size for the batched draw buffers. Big enough to
#: amortize the numpy call overhead (~20x per-draw cost for scalar
#: calls), small enough that a short run does not waste draws.
_BATCH_BLOCK = 512


class BatchedNormal:
    """Scalar normal draws served from block refills of one stream.

    ``numpy``'s ``Generator.normal(loc, scale)`` is ``loc + scale *
    standard_normal()`` under the hood, and a block draw of
    ``standard_normal(n)`` consumes the bit generator in exactly the
    same order as ``n`` scalar calls. Serving scalars out of a
    refilled block therefore produces **bit-identical** values to the
    equivalent scalar calls on the same stream — including when
    consecutive draws use different ``loc``/``scale`` — at a fraction
    of the per-draw cost (the RNG-stability tests pin this equality).

    Do **not** mix a :class:`BatchedNormal` and direct generator calls
    (or a :class:`BatchedUniform`) on the *same* underlying stream:
    the refill prefetches draws, so interleaving would reorder the
    stream. Each component already owns a private derived stream, so
    in practice one wrapper per component is the rule.
    """

    __slots__ = ("_rng", "_block", "_buf", "_idx")

    def __init__(self, rng: np.random.Generator, block: int = _BATCH_BLOCK) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self._buf: list[float] = []
        self._idx = 0

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        """Equivalent of ``float(rng.normal(loc, scale))``."""
        idx = self._idx
        if idx >= len(self._buf):
            self._buf = self._rng.standard_normal(self._block).tolist()
            idx = 0
        self._idx = idx + 1
        return loc + scale * self._buf[idx]


class BatchedUniform:
    """Scalar uniform draws served from block refills of one stream.

    Both ``Generator.random()`` and ``Generator.uniform(low, high)``
    consume exactly one raw double from the bit generator, so one
    buffer of raw doubles serves either call shape with bit-identical
    results (``uniform`` is ``low + (high - low) * random()`` in C and
    reproduced here with the same double arithmetic).

    The same single-stream caveat as :class:`BatchedNormal` applies.
    """

    __slots__ = ("_rng", "_block", "_buf", "_idx")

    def __init__(self, rng: np.random.Generator, block: int = _BATCH_BLOCK) -> None:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self._buf: list[float] = []
        self._idx = 0

    def random(self) -> float:
        """Equivalent of ``float(rng.random())``."""
        idx = self._idx
        if idx >= len(self._buf):
            self._buf = self._rng.random(self._block).tolist()
            idx = 0
        self._idx = idx + 1
        return self._buf[idx]

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Equivalent of ``float(rng.uniform(low, high))``."""
        return low + (high - low) * self.random()
