"""Deterministic random-stream derivation.

Every stochastic component in the simulator draws from its own
:class:`numpy.random.Generator`, derived from the scenario seed and a
stable string label. Two runs with the same scenario seed therefore
produce identical results regardless of the order in which components
are constructed, and changing one component's draws never perturbs
another's.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """Factory for named, independent random generators.

    Parameters
    ----------
    seed:
        Root seed for the whole scenario.

    Examples
    --------
    >>> streams = RngStreams(42)
    >>> a = streams.derive("fading")
    >>> b = streams.derive("loss")
    >>> a is not b
    True
    >>> streams2 = RngStreams(42)
    >>> float(a.random()) == float(streams2.derive("fading").random())
    True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def derive(self, label: str) -> np.random.Generator:
        """Return a fresh generator for ``label``.

        The same ``(seed, label)`` pair always yields an identical
        stream; distinct labels yield independent streams.
        """
        tag = zlib.crc32(label.encode("utf-8"))
        return np.random.default_rng(np.random.SeedSequence([self._seed, tag]))

    def child(self, label: str) -> "RngStreams":
        """Return a sub-factory namespaced under ``label``.

        Useful when a subsystem needs to hand out further streams
        without risking label collisions with its siblings.
        """
        tag = zlib.crc32(label.encode("utf-8"))
        return RngStreams((self._seed * 1_000_003 + tag) % (2**63))
