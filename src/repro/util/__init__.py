"""Shared utilities: unit conversion, RNG stream derivation, running stats."""

from repro.util.units import (
    bits_to_bytes,
    bytes_to_bits,
    mbps,
    to_mbps,
    ms,
    to_ms,
)
from repro.util.rng import RngStreams
from repro.util.running import EwmaFilter, RunningMinMax, WindowedMinMax

__all__ = [
    "bits_to_bytes",
    "bytes_to_bits",
    "mbps",
    "to_mbps",
    "ms",
    "to_ms",
    "RngStreams",
    "EwmaFilter",
    "RunningMinMax",
    "WindowedMinMax",
]
