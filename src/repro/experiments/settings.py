"""Shared experiment settings.

Every figure runner takes an :class:`ExperimentSettings`: how long
each simulated run lasts, which seeds to average over, and how much
start-of-run warm-up to exclude from steady-state metrics. The
defaults trade fidelity for runtime (the paper flies ~6 minute
flights; the benches default to 3 simulated minutes x 2 seeds, which
regenerates every figure in a few minutes of wall time). Pass
``ExperimentSettings.paper_scale()`` for full-length flights.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ExperimentSettings:
    """Run-length and averaging parameters for experiment runners."""

    duration: float = 180.0
    seeds: tuple[int, ...] = (1, 2)
    warmup: float = 30.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive: {self.duration}")
        if not self.seeds:
            raise ValueError("need at least one seed")
        if not 0 <= self.warmup < self.duration:
            raise ValueError("warmup must lie within the run duration")

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Small setting for tests: one short run."""
        return cls(duration=60.0, seeds=(1,), warmup=15.0)

    @classmethod
    def paper_scale(cls) -> "ExperimentSettings":
        """Full-length flights over several seeds (slow)."""
        return cls(duration=360.0, seeds=(1, 2, 3, 4, 5), warmup=30.0)
