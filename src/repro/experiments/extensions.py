"""Extension experiments for the paper's Section 5 proposals.

* **DAPS / make-before-break handover** — the 3GPP Rel-16 mechanism
  the paper expects to "avoid link disruptions in the air and hence
  remove the observed latency spikes";
* **multipath over two operators** — the MPTCP/MP-QUIC direction the
  paper motivates for reliability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.render import format_table
from repro.core.config import ScenarioConfig
from repro.core.session import run_session
from repro.experiments.settings import ExperimentSettings
from repro.metrics.stats import Cdf
from repro.metrics.network import one_way_delays
from repro.metrics.video import RP_LATENCY_THRESHOLD, StallMetrics
from repro.multipath import run_multipath_session
from repro.util.units import to_ms


@dataclass
class DapsPoint:
    """One handover-mechanism variant's outcome."""

    make_before_break: bool
    owd_p99_ms: float
    latency_below_threshold: float
    stalls_per_minute: float
    handovers: int


@dataclass
class DapsExperiment:
    """Break-before-make vs make-before-break comparison."""

    points: list[DapsPoint]

    def render(self) -> str:
        """Text table of the comparison."""
        return format_table(
            ["mechanism", "OWD p99 ms", "lat<300", "stalls/min", "handovers"],
            [
                [
                    "DAPS (make-before-break)" if p.make_before_break else "legacy",
                    f"{p.owd_p99_ms:.0f}",
                    f"{p.latency_below_threshold:.2f}",
                    f"{p.stalls_per_minute:.2f}",
                    str(p.handovers),
                ]
                for p in self.points
            ],
            title="Handover mechanism (urban, air, static bitrate)",
        )


def daps_experiment(settings: ExperimentSettings) -> DapsExperiment:
    """Compare legacy break-before-make against DAPS handovers."""
    points = []
    for make_before_break in (False, True):
        delays: list[float] = []
        playback_vals: list[float] = []
        stalls = 0.0
        handovers = 0
        for seed in settings.seeds:
            config = ScenarioConfig(
                environment="urban",
                platform="air",
                cc="static",
                seed=seed,
                duration=settings.duration,
                extra={"make_before_break": make_before_break},
            )
            result = run_session(config)
            delays.extend(one_way_delays(result.packet_log))
            playback = [
                r for r in result.playback if r.play_time >= settings.warmup
            ]
            playback_vals.extend(r.playback_latency for r in playback)
            stalls += StallMetrics.from_playback(
                playback, duration=settings.duration - settings.warmup
            ).stall_count
            handovers += len(result.handovers)
        minutes = (settings.duration - settings.warmup) * len(settings.seeds) / 60.0
        cdf = Cdf.from_samples(playback_vals)
        points.append(
            DapsPoint(
                make_before_break=make_before_break,
                owd_p99_ms=to_ms(float(np.percentile(delays, 99))),
                latency_below_threshold=cdf.fraction_below(RP_LATENCY_THRESHOLD),
                stalls_per_minute=stalls / minutes,
                handovers=handovers,
            )
        )
    return DapsExperiment(points=points)


@dataclass
class MultipathPoint:
    """One transmission strategy's outcome."""

    strategy: str  # "single", "roundrobin", "duplicate"
    owd_p99_ms: float
    latency_below_threshold: float
    stalls_per_minute: float
    radio_cost: float  # packets transmitted per media packet


@dataclass
class MultipathExperiment:
    """Single-path vs multipath reliability comparison."""

    points: list[MultipathPoint]

    def by_strategy(self, strategy: str) -> MultipathPoint:
        """Look up one strategy's row."""
        for point in self.points:
            if point.strategy == strategy:
                return point
        raise KeyError(strategy)

    def render(self) -> str:
        """Text table of the comparison."""
        return format_table(
            ["strategy", "OWD p99 ms", "lat<300", "stalls/min", "radio cost"],
            [
                [
                    p.strategy,
                    f"{p.owd_p99_ms:.0f}",
                    f"{p.latency_below_threshold:.2f}",
                    f"{p.stalls_per_minute:.2f}",
                    f"{p.radio_cost:.2f}x",
                ]
                for p in self.points
            ],
            title="Multipath over two operators (rural, air, static bitrate)",
        )


def multipath_experiment(
    settings: ExperimentSettings, *, environment: str = "rural"
) -> MultipathExperiment:
    """Compare single-path, round-robin and duplicate transmission."""
    points = []

    def summarize(strategy, packet_logs, playbacks, radio_cost):
        delays = [
            entry.received_at - entry.sent_at
            for log in packet_logs
            for entry in log
        ]
        playback_vals = []
        stalls = 0.0
        for playback in playbacks:
            kept = [r for r in playback if r.play_time >= settings.warmup]
            playback_vals.extend(r.playback_latency for r in kept)
            stalls += StallMetrics.from_playback(
                kept, duration=settings.duration - settings.warmup
            ).stall_count
        minutes = (settings.duration - settings.warmup) * len(settings.seeds) / 60.0
        cdf = Cdf.from_samples(playback_vals)
        points.append(
            MultipathPoint(
                strategy=strategy,
                owd_p99_ms=to_ms(float(np.percentile(delays, 99))),
                latency_below_threshold=cdf.fraction_below(RP_LATENCY_THRESHOLD),
                stalls_per_minute=stalls / minutes,
                radio_cost=radio_cost,
            )
        )

    # Single path (P1), the paper's baseline setup.
    logs, plays = [], []
    for seed in settings.seeds:
        config = ScenarioConfig(
            environment=environment, platform="air", cc="static",
            seed=seed, duration=settings.duration,
        )
        result = run_session(config)
        logs.append(result.packet_log)
        plays.append(result.playback)
    summarize("single", logs, plays, 1.0)

    for mode in ("roundrobin", "duplicate"):
        logs, plays = [], []
        for seed in settings.seeds:
            config = ScenarioConfig(
                environment=environment, platform="air", cc="static",
                seed=seed, duration=settings.duration,
            )
            result = run_multipath_session(config, mode=mode)
            logs.append(result.packet_log)
            plays.append(result.playback)
        summarize(mode, logs, plays, 2.0 if mode == "duplicate" else 1.0)
    return MultipathExperiment(points=points)
