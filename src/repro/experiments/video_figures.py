"""Experiment runners for the video-performance figures (Section 4.2).

* Fig. 6 — goodput boxplots for GCC/SCReAM/static in urban and rural;
* Fig. 7 — FPS, SSIM and playback-latency CDFs for the six
  method-x-environment combinations;
* Fig. 8 — the time-series view of one GCC flight (network latency,
  playback latency, losses, handovers);
* the Section 4.2.1 headline stats: stalls/minute per method and the
  ramp-up times of GCC and SCReAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.render import (
    format_table,
    render_boxplots,
    render_cdf,
    render_sparkline,
)
from repro.core.config import ScenarioConfig
from repro.core.session import SessionResult, run_session
from repro.experiments.campaign import run_matrix
from repro.experiments.settings import ExperimentSettings
from repro.runner import WORK_SESSION, CampaignRunner
from repro.runner.work import make_unit
from repro.metrics.stats import BoxplotSummary, Cdf
from repro.metrics.network import goodput_series, one_way_delays
from repro.util.units import to_mbps
from repro.metrics.video import (
    RP_LATENCY_THRESHOLD,
    SSIM_THRESHOLD,
    StallMetrics,
    fps_series,
    playback_latencies,
    ssim_samples,
)

CC_METHODS = ("static", "scream", "gcc")


def _video_matrix() -> list[ScenarioConfig]:
    return [
        ScenarioConfig(environment=env, platform="air", cc=cc)
        for env in ("urban", "rural")
        for cc in CC_METHODS
    ]


@dataclass
class Fig6Result:
    """Fig. 6: per-second goodput distribution per method/environment."""

    goodput: dict[str, BoxplotSummary]  # label -> summary over Mbps samples

    def mean_mbps(self, cc: str, environment: str) -> float:
        """Mean goodput of one series in Mbit/s."""
        return self.goodput[f"{cc}-{environment}-air-P1"].mean

    def render(self) -> str:
        """Text rendering of the goodput boxplots."""
        return render_boxplots(
            self.goodput,
            title="Fig 6: goodput (Mbps) per bitrate-control method",
            unit="Mbps",
        )


def fig6_goodput(
    settings: ExperimentSettings, *, runner: CampaignRunner | None = None
) -> Fig6Result:
    """Run the six-way video matrix and summarize goodput."""
    grouped = run_matrix(_video_matrix(), settings, runner=runner)
    summaries = {}
    for label, results in grouped.items():
        samples: list[float] = []
        for result in results:
            samples.extend(
                to_mbps(rate)
                for t, rate in goodput_series(
                    result.packet_log, duration=result.duration
                )
                if t >= settings.warmup
            )
        summaries[label] = BoxplotSummary.from_samples(samples)
    return Fig6Result(goodput=summaries)


@dataclass
class Fig7Result:
    """Fig. 7: FPS (a), SSIM (b) and playback latency (c) CDFs."""

    fps: dict[str, Cdf]
    ssim: dict[str, Cdf]
    latency: dict[str, Cdf]
    stalls: dict[str, StallMetrics]

    def latency_below_threshold(self, cc: str, environment: str) -> float:
        """Fraction of frames within the 300 ms RP threshold."""
        return self.latency[f"{cc}-{environment}-air-P1"].fraction_below(
            RP_LATENCY_THRESHOLD
        )

    def ssim_above_threshold(self, cc: str, environment: str) -> float:
        """Fraction of frames meeting the 0.5 SSIM requirement."""
        return self.ssim[f"{cc}-{environment}-air-P1"].fraction_above(
            SSIM_THRESHOLD
        )

    def stalls_per_minute(self, cc: str, environment: str) -> float:
        """Stall rate of one series."""
        return self.stalls[f"{cc}-{environment}-air-P1"].stalls_per_minute

    def render(self) -> str:
        """Text rendering of all three panels plus the stall table."""
        blocks = [
            render_cdf(
                self.fps,
                [1, 5, 10, 15, 20, 25, 28, 30],
                title="Fig 7(a): frames-per-second CDF",
                fmt="{:.0f}",
            ),
            render_cdf(
                self.ssim,
                [0.1, 0.25, 0.5, 0.75, 0.9, 0.95],
                title="Fig 7(b): SSIM CDF (unplayed frames count as 0)",
            ),
            render_cdf(
                self.latency,
                [0.1, 0.15, 0.2, 0.3, 0.5, 1.0],
                title="Fig 7(c): playback latency CDF (s)",
                unit="s",
            ),
            format_table(
                ["series", "stalls/min", "longest stall (s)"],
                [
                    [label, f"{m.stalls_per_minute:.2f}", f"{m.longest_stall:.2f}"]
                    for label, m in self.stalls.items()
                ],
                title="Video stalls (inter-frame gap > 300 ms)",
            ),
        ]
        return "\n\n".join(blocks)


def fig7_video(
    settings: ExperimentSettings, *, runner: CampaignRunner | None = None
) -> Fig7Result:
    """Run the six-way matrix and compute the Fig. 7 panels."""
    grouped = run_matrix(_video_matrix(), settings, runner=runner)
    fps: dict[str, Cdf] = {}
    ssim: dict[str, Cdf] = {}
    latency: dict[str, Cdf] = {}
    stalls: dict[str, StallMetrics] = {}
    for label, results in grouped.items():
        fps_samples: list[float] = []
        ssim_vals: list[float] = []
        lat_vals: list[float] = []
        stall_count = 0.0
        longest = 0.0
        minutes = 0.0
        for result in results:
            playback = [
                r for r in result.playback if r.play_time >= settings.warmup
            ]
            fps_samples.extend(
                value
                for t, value in fps_series(playback, duration=result.duration)
                if t >= settings.warmup
            )
            frames_encoded = max(
                result.sender_stats.frames_encoded
                - int(settings.warmup * result.config.fps),
                1,
            )
            ssim_vals.extend(
                ssim_samples(playback, frames_encoded=frames_encoded)
            )
            lat_vals.extend(playback_latencies(playback))
            metrics = StallMetrics.from_playback(
                playback, duration=result.duration - settings.warmup
            )
            stall_count += metrics.stall_count
            longest = max(longest, metrics.longest_stall)
            minutes += (result.duration - settings.warmup) / 60.0
        fps[label] = Cdf.from_samples(fps_samples)
        ssim[label] = Cdf.from_samples(ssim_vals)
        latency[label] = Cdf.from_samples(lat_vals)
        stalls[label] = StallMetrics(
            stall_count=int(stall_count),
            stalls_per_minute=stall_count / max(minutes, 1e-9),
            total_stall_time=0.0,
            longest_stall=longest,
        )
    return Fig7Result(fps=fps, ssim=ssim, latency=latency, stalls=stalls)


@dataclass
class Fig8Result:
    """Fig. 8: one GCC flight's latency/loss/handover time series."""

    network_latency: list[tuple[float, float]]  # (t, seconds), per 0.5 s
    playback_latency: list[tuple[float, float]]
    handover_times: list[float]
    loss_times: list[float]

    def render(self) -> str:
        """Sparkline rendering of the flight."""
        lines = [
            "Fig 8: GCC flight time series",
            render_sparkline(
                [v for _, v in self.network_latency], label="network latency "
            ),
            render_sparkline(
                [v for _, v in self.playback_latency], label="playback latency"
            ),
            f"handovers at t = {[round(t, 1) for t in self.handover_times]}",
            f"loss bursts    = {len(self.loss_times)}",
        ]
        return "\n".join(lines)

    def latency_spike_near_handover(self, window: float = 2.0) -> bool:
        """Whether a network-latency spike occurs near some handover."""
        if not self.network_latency or not self.handover_times:
            return False
        times = np.array([t for t, _ in self.network_latency])
        values = np.array([v for _, v in self.network_latency])
        baseline = float(np.median(values))
        for ho_time in self.handover_times:
            mask = (times >= ho_time - window) & (times <= ho_time + window)
            if mask.any() and values[mask].max() > 2.0 * baseline:
                return True
        return False


def fig8_timeseries(
    settings: ExperimentSettings,
    *,
    environment: str = "rural",
    seed: int | None = None,
    runner: CampaignRunner | None = None,
) -> Fig8Result:
    """Run one GCC flight and extract the Fig. 8 series."""
    config = ScenarioConfig(
        environment=environment,
        platform="air",
        cc="gcc",
        seed=seed if seed is not None else settings.seeds[0],
        duration=settings.duration,
    )
    if runner is not None:
        result = runner.run([make_unit(WORK_SESSION, config)])[0]
    else:
        result = run_session(config)
    bucket = 0.5
    owd_buckets: dict[int, list[float]] = {}
    # Index by send time so a delay spike lines up with the radio
    # degradation that caused it (as in the paper's Fig. 8).
    for entry in result.packet_log:
        owd_buckets.setdefault(int(entry.sent_at / bucket), []).append(
            entry.received_at - entry.sent_at
        )
    network = [
        (index * bucket, float(np.max(values)))
        for index, values in sorted(owd_buckets.items())
    ]
    playback = [
        (record.play_time, record.playback_latency) for record in result.playback
    ]
    loss_times = []
    previous = None
    for entry in result.packet_log:
        if previous is not None and (entry.sequence - previous) % (1 << 16) > 1:
            loss_times.append(entry.received_at)
        previous = entry.sequence
    return Fig8Result(
        network_latency=network,
        playback_latency=playback,
        handover_times=[event.time for event in result.handovers],
        loss_times=loss_times,
    )


@dataclass
class RampupResult:
    """Section 4.2.1: time to first reach a near-max bitrate."""

    gcc_seconds: float
    scream_seconds: float

    def render(self) -> str:
        """One-line summary next to the paper's 12 s / 25 s."""
        return (
            f"Ramp-up to 25 Mbps target: GCC {self.gcc_seconds:.1f} s "
            f"(paper ~12 s), SCReAM {self.scream_seconds:.1f} s (paper ~25 s)"
        )


def rampup_experiment(
    settings: ExperimentSettings, *, threshold: float = 22e6
) -> RampupResult:
    """Measure each CC's intrinsic ramp-up time on an unconstrained link.

    The paper's ramp-up numbers (Section 4.2.1: GCC ~12 s, SCReAM
    ~25 s to reach the 25 Mbps target) characterize the algorithms'
    start-up phase in the well-provisioned urban area, so this runs on
    a clean 40 Mbps link rather than a fluctuating flight channel.
    """
    from repro.core.receiver import VideoReceiver
    from repro.core.sender import VideoSender
    from repro.core.session import build_controller
    from repro.net.packet import reset_datagram_ids
    from repro.net.path import NetworkPath
    from repro.net.simulator import EventLoop
    from repro.util.rng import RngStreams
    from repro.video.encoder import EncoderModel
    from repro.video.source import SourceVideo

    duration = min(settings.duration, 90.0)
    times = {}
    for cc in ("gcc", "scream"):
        reach: list[float] = []
        for seed in settings.seeds:
            config = ScenarioConfig(cc=cc, seed=seed, duration=duration)
            reset_datagram_ids()
            loop = EventLoop()
            streams = RngStreams(seed)
            controller = build_controller(config)
            holder: list[VideoReceiver] = []
            uplink = NetworkPath(
                loop,
                lambda t: 40e6,
                lambda d: holder[0].on_datagram(d),
                base_delay=config.base_owd,
                jitter_std=config.owd_jitter_std,
                rng=streams.derive("j1"),
            )
            downlink = NetworkPath(
                loop,
                lambda t: 40e6,
                lambda d: holder[0].on_feedback_delivered(d),
                base_delay=config.base_owd,
                jitter_std=config.owd_jitter_std,
                rng=streams.derive("j2"),
            )
            source = SourceVideo(streams.derive("source"))
            encoder = EncoderModel(
                streams.derive("encoder"),
                initial_bitrate=controller.target_bitrate(0.0),
            )
            sender = VideoSender(loop, source, encoder, controller, uplink)
            receiver = VideoReceiver(
                loop, controller, downlink,
                scream_ack_window=config.scream_ack_window,
            )
            holder.append(receiver)
            sender.start()
            receiver.start()
            loop.run_until(duration)
            hit = [e.time for e in controller.log if e.target_bitrate >= threshold]
            reach.append(hit[0] if hit else duration)
        times[cc] = float(np.median(reach))
    return RampupResult(gcc_seconds=times["gcc"], scream_seconds=times["scream"])
