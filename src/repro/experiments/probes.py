"""Per-seed probe work units (channel-only and ping campaigns).

These are the single-seed building blocks behind
:func:`repro.experiments.campaign.run_channel_probe` and
:func:`run_ping_probe`. They live at module level — not as closures
inside the per-seed loops — so that

* the captured simulation state (``loop``, ``uplink``, ``trajectory``)
  is scoped to exactly one run instead of late-binding to whatever the
  enclosing loop last assigned, and
* the campaign runner can pickle them into worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cellular.channel import CellularChannel
from repro.cellular.handover import HandoverEvent
from repro.cellular.operators import get_profile
from repro.core.config import ScenarioConfig
from repro.core.session import build_channel_config, build_trajectory
from repro.net.packet import Datagram, reset_datagram_ids
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop, PeriodicTimer
from repro.util.rng import RngStreams


@dataclass
class ChannelProbeSeed:
    """Channel-only observation of one (config, seed) run."""

    handovers: list[HandoverEvent] = field(default_factory=list)
    uplink_samples: list[float] = field(default_factory=list)
    altitudes: list[float] = field(default_factory=list)
    cells_seen: int = 0
    ping_pong: int = 0


@dataclass
class PingSample:
    """One echo measurement: send time, RTT and altitude at send."""

    time: float
    rtt: float
    altitude: float


def _build_channel(
    config: ScenarioConfig, loop: EventLoop, streams: RngStreams
) -> CellularChannel:
    profile = get_profile(config.operator, config.environment.value)
    layout = profile.build_layout(streams.derive("layout"))
    trajectory = build_trajectory(config, streams)
    return CellularChannel(
        loop,
        layout,
        profile,
        trajectory,
        streams.child("channel"),
        config=build_channel_config(config),
        horizon=config.duration,
    )


def channel_probe_seed(config: ScenarioConfig) -> ChannelProbeSeed:
    """Run the cellular channel alone (no video) for one seed.

    ``config`` must already carry the run's seed and duration (use
    :meth:`ScenarioConfig.with_overrides`).
    """
    loop = EventLoop()
    streams = RngStreams(config.seed)
    channel = _build_channel(config, loop, streams)
    channel.start()
    loop.run_until(config.duration)
    return ChannelProbeSeed(
        handovers=list(channel.engine.events),
        uplink_samples=[sample.uplink_bps for sample in channel.samples],
        altitudes=[sample.altitude for sample in channel.samples],
        cells_seen=len(channel.cells_seen),
        ping_pong=channel.engine.ping_pong_count(),
    )


def channel_probe_batch(
    configs: "list[ScenarioConfig]",
) -> list[ChannelProbeSeed]:
    """Run a whole channel-probe seed sweep as one lockstep batch.

    ``configs`` must differ only in their seed (the batch planner
    groups work units that way). Results are bit-identical to running
    :func:`channel_probe_seed` per config — verified by the
    fingerprint suite — at a fraction of the per-tick Python cost:
    the stochastic planes are precomputed struct-of-arrays across
    seeds and only the branchy A3/capacity state machines run per
    seed (see :mod:`repro.cellular.batch`).
    """
    from repro.cellular.batch import run_lockstep

    channels = [
        _build_channel(config, EventLoop(), RngStreams(config.seed))
        for config in configs
    ]
    uplinks = run_lockstep(channels, configs[0].duration)
    results = []
    for channel, uplink_samples in zip(channels, uplinks):
        results.append(
            ChannelProbeSeed(
                handovers=list(channel.engine.events),
                uplink_samples=uplink_samples,
                altitudes=[
                    float(alt)
                    for alt in channel._altitudes[: len(uplink_samples)]
                ],
                cells_seen=len(channel.cells_seen),
                ping_pong=channel.engine.ping_pong_count(),
            )
        )
    return results


class _PingProbe:
    """One seed's ping workload: periodic echo requests over the channel.

    Holds the loop/uplink/downlink/trajectory references that used to
    be captured by ad-hoc closures, so every callback is bound to this
    run's objects explicitly.
    """

    def __init__(
        self, config: ScenarioConfig, *, rate_hz: float, ping_bytes: int
    ) -> None:
        self.samples: list[PingSample] = []
        self._ping_bytes = ping_bytes
        reset_datagram_ids()
        self._loop = EventLoop()
        streams = RngStreams(config.seed)
        profile = get_profile(config.operator, config.environment.value)
        layout = profile.build_layout(streams.derive("layout"))
        self._trajectory = build_trajectory(config, streams)
        self._channel = CellularChannel(
            self._loop,
            layout,
            profile,
            self._trajectory,
            streams.child("channel"),
            config=build_channel_config(config),
            horizon=config.duration,
        )
        self._uplink = NetworkPath(
            self._loop,
            self._channel.uplink_rate,
            self._on_uplink_delivery,
            base_delay=config.base_owd,
            jitter_std=config.owd_jitter_std,
            rng=streams.derive("jitter-up"),
        )
        self._downlink = NetworkPath(
            self._loop,
            self._channel.downlink_rate,
            self._on_echo,
            base_delay=config.base_owd,
            jitter_std=config.owd_jitter_std,
            rng=streams.derive("jitter-down"),
        )
        self._channel.attach_path(self._uplink)
        self._channel.attach_path(self._downlink)
        self._duration = config.duration
        self._rate_hz = rate_hz

    def _on_echo(self, datagram: Datagram) -> None:
        sent_time, altitude = datagram.payload
        self.samples.append(
            PingSample(
                time=sent_time,
                rtt=self._loop.now - sent_time,
                altitude=altitude,
            )
        )

    def _on_uplink_delivery(self, datagram: Datagram) -> None:
        echo = Datagram(size_bytes=datagram.size_bytes, payload=datagram.payload)
        self._downlink.send(echo)

    def _send_ping(self) -> None:
        position = self._trajectory.position(self._loop.now)
        self._uplink.send(
            Datagram(
                size_bytes=self._ping_bytes,
                payload=(self._loop.now, position.altitude),
            )
        )

    def run(self) -> list[PingSample]:
        self._channel.start()
        PeriodicTimer(self._loop, 1.0 / self._rate_hz, self._send_ping)
        self._loop.run_until(self._duration)
        return self.samples


def ping_probe_seed(
    config: ScenarioConfig, *, rate_hz: float = 20.0, ping_bytes: int = 92
) -> list[PingSample]:
    """Measure echo RTTs over the cellular channel for one seed."""
    return _PingProbe(config, rate_hz=rate_hz, ping_bytes=ping_bytes).run()
