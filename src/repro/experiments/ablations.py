"""Ablation experiments for the design choices DESIGN.md calls out.

* SCReAM ack-window 64 vs 256 (Section 4.2.1's fix);
* jitter-buffer depth and the ``drop-on-latency`` strategy (App. A.4);
* A3 handover parameters — hysteresis and time-to-trigger (Section 5,
  "Mitigating influence of HOs on RP");
* deep vs shallow (AQM-like) uplink buffers (bufferbloat discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.render import format_table
from repro.cellular.handover import A3Config
from repro.core.config import ScenarioConfig
from repro.core.session import run_session
from repro.experiments.settings import ExperimentSettings
from repro.metrics.stats import Cdf
from repro.metrics.network import average_goodput, one_way_delays
from repro.util.units import to_megabytes, to_mbps, to_ms
from repro.metrics.video import (
    RP_LATENCY_THRESHOLD,
    StallMetrics,
    playback_latencies,
)


@dataclass
class AckWindowResult:
    """SCReAM ack-window ablation outcome for one window size."""

    ack_window: int
    false_losses_per_minute: float
    goodput_mbps: float
    latency_below_threshold: float


@dataclass
class AckWindowAblation:
    """Comparison across ack-window sizes (paper: 64 vs 256)."""

    results: dict[int, AckWindowResult]

    def render(self) -> str:
        """Text table of the ablation."""
        return format_table(
            ["ack window", "false losses/min", "goodput Mbps", "lat<300ms"],
            [
                [
                    str(r.ack_window),
                    f"{r.false_losses_per_minute:.2f}",
                    f"{r.goodput_mbps:.1f}",
                    f"{r.latency_below_threshold:.2f}",
                ]
                for r in self.results.values()
            ],
            title="SCReAM RFC8888 ack-window ablation (urban, air)",
        )


def ackwindow_ablation(
    settings: ExperimentSettings, *, windows: tuple[int, ...] = (64, 256)
) -> AckWindowAblation:
    """Run SCReAM urban flights with different ack windows."""
    results = {}
    for window in windows:
        false_losses = 0.0
        goodput = []
        latencies: list[float] = []
        for seed in settings.seeds:
            config = ScenarioConfig(
                environment="urban",
                platform="air",
                cc="scream",
                seed=seed,
                duration=settings.duration,
                scream_ack_window=window,
            )
            result = run_session(config)
            false_losses += result.extra.get("false_loss_candidates", 0)
            goodput.append(
                to_mbps(
                    average_goodput(
                        result.packet_log,
                        duration=result.duration,
                        warmup=settings.warmup,
                    )
                )
            )
            latencies.extend(
                record.playback_latency
                for record in result.playback
                if record.play_time >= settings.warmup
            )
        minutes = settings.duration * len(settings.seeds) / 60.0
        cdf = Cdf.from_samples(latencies)
        results[window] = AckWindowResult(
            ack_window=window,
            false_losses_per_minute=false_losses / minutes,
            goodput_mbps=float(np.mean(goodput)),
            latency_below_threshold=cdf.fraction_below(RP_LATENCY_THRESHOLD),
        )
    return AckWindowAblation(results=results)


@dataclass
class JitterBufferPoint:
    """One jitter-buffer configuration's outcome."""

    latency_setting_ms: float
    drop_on_latency: bool
    median_playback_ms: float
    below_threshold: float
    stalls_per_minute: float
    dropped_late: int


@dataclass
class JitterBufferAblation:
    """Buffer-depth and drop-on-latency sweep (App. A.4)."""

    points: list[JitterBufferPoint]

    def render(self) -> str:
        """Text table of the sweep."""
        return format_table(
            ["buffer ms", "drop-on-latency", "median lat ms", "lat<300", "stalls/min", "late drops"],
            [
                [
                    f"{p.latency_setting_ms:.0f}",
                    str(p.drop_on_latency),
                    f"{p.median_playback_ms:.0f}",
                    f"{p.below_threshold:.2f}",
                    f"{p.stalls_per_minute:.2f}",
                    str(p.dropped_late),
                ]
                for p in self.points
            ],
            title="Jitter-buffer ablation (urban, air, static bitrate)",
        )


def jitterbuffer_ablation(
    settings: ExperimentSettings,
    *,
    latencies: tuple[float, ...] = (0.05, 0.10, 0.15, 0.25),
    drop_variants: tuple[bool, ...] = (False, True),
) -> JitterBufferAblation:
    """Sweep jitter-buffer depth and drop strategy on static urban runs."""
    points = []
    for latency in latencies:
        for drop in drop_variants:
            playback_vals: list[float] = []
            stalls = 0.0
            dropped = 0
            for seed in settings.seeds:
                config = ScenarioConfig(
                    environment="urban",
                    platform="air",
                    cc="static",
                    seed=seed,
                    duration=settings.duration,
                    jitter_buffer_latency=latency,
                    jitter_buffer_drop_on_latency=drop,
                )
                result = run_session(config)
                playback = [
                    r for r in result.playback if r.play_time >= settings.warmup
                ]
                playback_vals.extend(playback_latencies(playback))
                stalls += StallMetrics.from_playback(
                    playback, duration=settings.duration - settings.warmup
                ).stall_count
                dropped += result.extra.get("jitter_dropped_late", 0)
            minutes = (settings.duration - settings.warmup) * len(settings.seeds) / 60.0
            cdf = Cdf.from_samples(playback_vals)
            points.append(
                JitterBufferPoint(
                    latency_setting_ms=to_ms(latency),
                    drop_on_latency=drop,
                    median_playback_ms=to_ms(cdf.median),
                    below_threshold=cdf.fraction_below(RP_LATENCY_THRESHOLD),
                    stalls_per_minute=stalls / minutes,
                    dropped_late=dropped,
                )
            )
    return JitterBufferAblation(points=points)


@dataclass
class A3Point:
    """One A3 parameterization's mobility/latency outcome."""

    hysteresis_db: float
    time_to_trigger: float
    ho_per_s: float
    ping_pong: int
    owd_p95_ms: float


@dataclass
class A3Ablation:
    """Handover-parameter sweep (Section 5 discussion)."""

    points: list[A3Point]

    def render(self) -> str:
        """Text table of the sweep."""
        return format_table(
            ["hysteresis dB", "TTT s", "HO/s", "ping-pong", "OWD p95 ms"],
            [
                [
                    f"{p.hysteresis_db:.1f}",
                    f"{p.time_to_trigger:.3f}",
                    f"{p.ho_per_s:.3f}",
                    str(p.ping_pong),
                    f"{p.owd_p95_ms:.0f}",
                ]
                for p in self.points
            ],
            title="A3 handover-parameter ablation (urban, air, static bitrate)",
        )


def a3_ablation(
    settings: ExperimentSettings,
    *,
    variants: tuple[tuple[float, float], ...] = (
        (1.0, 0.128),
        (3.0, 0.256),
        (6.0, 0.512),
    ),
) -> A3Ablation:
    """Sweep hysteresis/TTT and observe HO churn vs latency."""
    points = []
    for hysteresis, ttt in variants:
        handovers = 0
        ping_pong = 0
        delays: list[float] = []
        for seed in settings.seeds:
            config = ScenarioConfig(
                environment="urban",
                platform="air",
                cc="static",
                seed=seed,
                duration=settings.duration,
                extra={
                    "a3": A3Config(
                        hysteresis_db=hysteresis, time_to_trigger=ttt
                    )
                },
            )
            result = run_session(config)
            handovers += len(result.handovers)
            ping_pong += result.extra.get("ping_pong_handovers", 0)
            delays.extend(one_way_delays(result.packet_log))
        points.append(
            A3Point(
                hysteresis_db=hysteresis,
                time_to_trigger=ttt,
                ho_per_s=handovers / (settings.duration * len(settings.seeds)),
                ping_pong=ping_pong,
                owd_p95_ms=to_ms(float(np.percentile(delays, 95))),
            )
        )
    return A3Ablation(points=points)


@dataclass
class BufferPoint:
    """One uplink-buffer depth's latency/loss trade-off."""

    buffer_bytes: int
    owd_p99_ms: float
    loss_rate: float
    latency_below_threshold: float


@dataclass
class BufferAblation:
    """Deep vs shallow uplink buffers (bufferbloat, Section 5)."""

    points: list[BufferPoint]

    def render(self) -> str:
        """Text table of the sweep."""
        return format_table(
            ["buffer MB", "OWD p99 ms", "loss", "lat<300"],
            [
                [
                    f"{to_megabytes(p.buffer_bytes):.1f}",
                    f"{p.owd_p99_ms:.0f}",
                    f"{p.loss_rate * 100:.2f}%",
                    f"{p.latency_below_threshold:.2f}",
                ]
                for p in self.points
            ],
            title="Uplink buffer-depth ablation (urban, air, static bitrate)",
        )


def buffer_ablation(
    settings: ExperimentSettings,
    *,
    buffers: tuple[int, ...] = (250_000, 1_000_000, 6_000_000),
) -> BufferAblation:
    """Sweep the radio buffer depth on static urban runs."""
    points = []
    for buffer_bytes in buffers:
        delays: list[float] = []
        playback_vals: list[float] = []
        lost = 0
        sent = 0
        for seed in settings.seeds:
            config = ScenarioConfig(
                environment="urban",
                platform="air",
                cc="static",
                seed=seed,
                duration=settings.duration,
                uplink_buffer_bytes=buffer_bytes,
            )
            result = run_session(config)
            delays.extend(one_way_delays(result.packet_log))
            playback_vals.extend(
                record.playback_latency
                for record in result.playback
                if record.play_time >= settings.warmup
            )
            sent += result.packets_sent
            lost += result.packets_sent - len(result.packet_log)
        cdf = Cdf.from_samples(playback_vals)
        points.append(
            BufferPoint(
                buffer_bytes=buffer_bytes,
                owd_p99_ms=to_ms(float(np.percentile(delays, 99))),
                loss_rate=lost / max(sent, 1),
                latency_below_threshold=cdf.fraction_below(RP_LATENCY_THRESHOLD),
            )
        )
    return BufferAblation(points=points)
