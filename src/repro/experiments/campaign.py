"""Campaign drivers: run scenario matrices and lightweight probes.

Three run modes with very different costs:

* :func:`run_matrix` — full video-pipeline sessions (expensive; used
  by the video-performance figures);
* :func:`run_channel_probe` — cellular channel only, no video
  (cheap; used by Fig. 4's handover statistics, which in the paper
  come from RRC logs independent of the video workload);
* :func:`run_ping_probe` — small ICMP-like probes over the channel
  (cheap; used by Fig. 13's altitude-vs-RTT analysis, which the paper
  measured with pings "without cross traffic").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cellular.channel import CellularChannel
from repro.cellular.handover import HandoverEvent
from repro.cellular.operators import get_profile
from repro.core.config import ScenarioConfig
from repro.core.session import (
    SessionResult,
    build_channel_config,
    build_trajectory,
    run_session,
)
from repro.experiments.settings import ExperimentSettings
from repro.net.packet import Datagram
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop, PeriodicTimer
from repro.util.rng import RngStreams


def run_matrix(
    base_configs: list[ScenarioConfig], settings: ExperimentSettings
) -> dict[str, list[SessionResult]]:
    """Run every config across the settings' seeds.

    Returns results grouped by the config's label (seed excluded), one
    entry per seed.
    """
    grouped: dict[str, list[SessionResult]] = {}
    for base in base_configs:
        for seed in settings.seeds:
            config = base.with_overrides(seed=seed, duration=settings.duration)
            result = run_session(config)
            key = _series_label(config)
            grouped.setdefault(key, []).append(result)
    return grouped


def _series_label(config: ScenarioConfig) -> str:
    return f"{config.cc.value}-{config.environment.value}-{config.platform.value}-{config.operator}"


@dataclass
class ChannelProbeResult:
    """Channel-only observation of one scenario across seeds."""

    label: str
    handovers: list[HandoverEvent]
    duration_total: float
    uplink_samples: list[float]
    altitudes: list[float]
    cells_seen: int
    ping_pong: int

    @property
    def ho_frequency(self) -> float:
        """Handovers per second across all seeds."""
        return len(self.handovers) / self.duration_total

    @property
    def het_values(self) -> list[float]:
        """All handover execution times, seconds."""
        return [event.execution_time for event in self.handovers]


def run_channel_probe(
    config: ScenarioConfig, settings: ExperimentSettings
) -> ChannelProbeResult:
    """Run the cellular channel alone (no video) across seeds."""
    handovers: list[HandoverEvent] = []
    uplink: list[float] = []
    altitudes: list[float] = []
    cells: set[tuple[int, int]] = set()
    ping_pong = 0
    for seed in settings.seeds:
        run_config = config.with_overrides(seed=seed, duration=settings.duration)
        loop = EventLoop()
        streams = RngStreams(seed)
        profile = get_profile(run_config.operator, run_config.environment.value)
        layout = profile.build_layout(streams.derive("layout"))
        trajectory = build_trajectory(run_config, streams)
        channel = CellularChannel(
            loop,
            layout,
            profile,
            trajectory,
            streams.child("channel"),
            config=build_channel_config(run_config),
        )
        channel.start()
        loop.run_until(settings.duration)
        handovers.extend(channel.engine.events)
        uplink.extend(sample.uplink_bps for sample in channel.samples)
        altitudes.extend(sample.altitude for sample in channel.samples)
        cells.update((seed, cell) for cell in channel.cells_seen)
        ping_pong += channel.engine.ping_pong_count()
    return ChannelProbeResult(
        label=_series_label(config),
        handovers=handovers,
        duration_total=settings.duration * len(settings.seeds),
        uplink_samples=uplink,
        altitudes=altitudes,
        cells_seen=len(cells),
        ping_pong=ping_pong,
    )


@dataclass
class PingSample:
    """One echo measurement: send time, RTT and altitude at send."""

    time: float
    rtt: float
    altitude: float


def run_ping_probe(
    config: ScenarioConfig,
    settings: ExperimentSettings,
    *,
    rate_hz: float = 20.0,
    ping_bytes: int = 92,  # 64-byte ICMP payload + headers
) -> list[PingSample]:
    """Measure echo RTTs over the cellular channel (Fig. 13 workload)."""
    samples: list[PingSample] = []
    for seed in settings.seeds:
        run_config = config.with_overrides(seed=seed, duration=settings.duration)
        loop = EventLoop()
        streams = RngStreams(seed)
        profile = get_profile(run_config.operator, run_config.environment.value)
        layout = profile.build_layout(streams.derive("layout"))
        trajectory = build_trajectory(run_config, streams)
        channel = CellularChannel(
            loop,
            layout,
            profile,
            trajectory,
            streams.child("channel"),
            config=build_channel_config(run_config),
        )

        downlink_holder: list[NetworkPath] = []

        def on_echo(datagram: Datagram) -> None:
            sent_time, altitude = datagram.payload
            samples.append(
                PingSample(
                    time=sent_time,
                    rtt=loop.now - sent_time,
                    altitude=altitude,
                )
            )

        def on_uplink_delivery(datagram: Datagram) -> None:
            echo = Datagram(size_bytes=datagram.size_bytes, payload=datagram.payload)
            downlink_holder[0].send(echo)

        uplink = NetworkPath(
            loop,
            channel.uplink_rate,
            on_uplink_delivery,
            base_delay=run_config.base_owd,
            jitter_std=run_config.owd_jitter_std,
            rng=streams.derive("jitter-up"),
        )
        downlink = NetworkPath(
            loop,
            channel.downlink_rate,
            on_echo,
            base_delay=run_config.base_owd,
            jitter_std=run_config.owd_jitter_std,
            rng=streams.derive("jitter-down"),
        )
        downlink_holder.append(downlink)
        channel.attach_path(uplink)
        channel.attach_path(downlink)

        def send_ping() -> None:
            position = trajectory.position(loop.now)
            uplink.send(
                Datagram(
                    size_bytes=ping_bytes,
                    payload=(loop.now, position.altitude),
                )
            )

        channel.start()
        PeriodicTimer(loop, 1.0 / rate_hz, send_ping)
        loop.run_until(settings.duration)
    return samples
