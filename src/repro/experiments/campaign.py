"""Campaign drivers: run scenario matrices and lightweight probes.

Three run modes with very different costs:

* :func:`run_matrix` — full video-pipeline sessions (expensive; used
  by the video-performance figures);
* :func:`run_channel_probe` — cellular channel only, no video
  (cheap; used by Fig. 4's handover statistics, which in the paper
  come from RRC logs independent of the video workload);
* :func:`run_ping_probe` — small ICMP-like probes over the channel
  (cheap; used by Fig. 13's altitude-vs-RTT analysis, which the paper
  measured with pings "without cross traffic").

All three decompose their (config x seed) matrix into independent
work units and execute them through a :class:`CampaignRunner`, so any
campaign parallelizes over a process pool (``workers=N``) and repeats
for free from the on-disk result cache. ``workers=1`` without a cache
preserves the classic serial in-process path. Results are grouped in
submission order, so the grouped output is identical for every worker
count.

Campaign-owned runners additionally execute each scenario's seed sweep
as one struct-of-arrays batch (:mod:`repro.runner.batch`): channel
probes run through the lockstep batched kernel and sessions share one
:class:`~repro.util.rng.SweepDrawPlan` refill per stream. Batched
results are packet-for-packet identical to scalar execution (pinned by
``tests/test_fingerprints.py``), and non-batchable units — ping
probes, fleets, ``obs=True`` sessions — transparently fall back to
the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cellular.handover import HandoverEvent
from repro.core.config import ScenarioConfig
from repro.core.session import SessionResult
from repro.experiments.probes import ChannelProbeSeed, PingSample
from repro.experiments.settings import ExperimentSettings
from repro.runner import (
    WORK_CHANNEL_PROBE,
    WORK_PING_PROBE,
    WORK_SESSION,
    CampaignRunner,
    ResultCache,
)
from repro.runner.engine import ProgressFn
from repro.runner.work import make_unit


def _resolve_runner(
    runner: CampaignRunner | None,
    workers: int | None,
    cache: ResultCache | None,
    progress: ProgressFn | None,
) -> tuple[CampaignRunner, bool]:
    """Return ``(engine, owned)`` — the runner to use and whether this
    call created it.

    Internally-created runners must be closed by the caller when the
    campaign ends (their pools are persistent since PR 3, so leaving
    them open leaks worker processes); caller-supplied runners stay
    open for reuse across campaigns.

    Owned runners enable seed-sweep batching (``batch=True``): the
    scenario matrices built here repeat configs across seeds, which is
    exactly the shape :mod:`repro.runner.batch` turns into
    struct-of-arrays sweeps — bit-identical to scalar execution, so it
    is safe as a default. A caller-supplied runner keeps whatever
    ``batch`` setting it was constructed with.
    """
    if runner is not None:
        return runner, False
    return (
        CampaignRunner(
            workers if workers is not None else 1,
            cache=cache,
            progress=progress,
            batch=True,
        ),
        True,
    )


def run_matrix(
    base_configs: list[ScenarioConfig],
    settings: ExperimentSettings,
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    runner: CampaignRunner | None = None,
    progress: ProgressFn | None = None,
    obs: bool = False,
) -> dict[str, list[SessionResult]]:
    """Run every config across the settings' seeds.

    Returns results grouped by the config's label (seed excluded), one
    entry per seed. Pass ``workers``/``cache`` (or a preconfigured
    ``runner``) to parallelize and cache the underlying sessions; the
    grouped result is identical for any worker count. With
    ``obs=True`` every session runs instrumented and ships its metric
    snapshot in ``result.extra["metrics"]`` plus its SLO diagnosis in
    ``result.extra["diagnosis"]``; the runner additionally merges them
    into ``runner.metrics`` and ``runner.diagnosis``, so campaign-wide
    violation counts and primary-cause tallies (e.g. the fraction of
    latency violations attributable to handover, Fig. 9) are available
    without reprocessing individual sessions.
    """
    engine, owned = _resolve_runner(runner, workers, cache, progress)
    units = [
        make_unit(
            WORK_SESSION,
            base.with_overrides(seed=seed, duration=settings.duration),
            **({"obs": True} if obs else {}),
        )
        for base in base_configs
        for seed in settings.seeds
    ]
    try:
        results = engine.run(units)
    finally:
        if owned:
            engine.close()
    grouped: dict[str, list[SessionResult]] = {}
    for unit, result in zip(units, results):
        key = _series_label(unit.config)
        grouped.setdefault(key, []).append(result)
    return grouped


def _series_label(config: ScenarioConfig) -> str:
    return f"{config.cc.value}-{config.environment.value}-{config.platform.value}-{config.operator}"


@dataclass
class ChannelProbeResult:
    """Channel-only observation of one scenario across seeds."""

    label: str
    handovers: list[HandoverEvent]
    duration_total: float
    uplink_samples: list[float]
    altitudes: list[float]
    cells_seen: int
    ping_pong: int

    @property
    def ho_frequency(self) -> float:
        """Handovers per second across all seeds (0.0 if no probe time).

        A zero-duration probe (empty seed list, ``duration=0``) has no
        observation window, so its frequency is defined as 0 rather
        than raising ``ZeroDivisionError`` deep inside figure code.
        """
        if self.duration_total <= 0.0:
            return 0.0
        return len(self.handovers) / self.duration_total

    @property
    def het_values(self) -> list[float]:
        """All handover execution times, seconds."""
        return [event.execution_time for event in self.handovers]


def run_channel_probe(
    config: ScenarioConfig,
    settings: ExperimentSettings,
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    runner: CampaignRunner | None = None,
    progress: ProgressFn | None = None,
) -> ChannelProbeResult:
    """Run the cellular channel alone (no video) across seeds."""
    engine, owned = _resolve_runner(runner, workers, cache, progress)
    units = [
        make_unit(
            WORK_CHANNEL_PROBE,
            config.with_overrides(seed=seed, duration=settings.duration),
        )
        for seed in settings.seeds
    ]
    try:
        seed_results: list[ChannelProbeSeed] = engine.run(units)
    finally:
        if owned:
            engine.close()
    handovers: list[HandoverEvent] = []
    uplink: list[float] = []
    altitudes: list[float] = []
    cells_seen = 0
    ping_pong = 0
    for seed_result in seed_results:
        handovers.extend(seed_result.handovers)
        uplink.extend(seed_result.uplink_samples)
        altitudes.extend(seed_result.altitudes)
        cells_seen += seed_result.cells_seen
        ping_pong += seed_result.ping_pong
    return ChannelProbeResult(
        label=_series_label(config),
        handovers=handovers,
        duration_total=settings.duration * len(settings.seeds),
        uplink_samples=uplink,
        altitudes=altitudes,
        cells_seen=cells_seen,
        ping_pong=ping_pong,
    )


def run_ping_probe(
    config: ScenarioConfig,
    settings: ExperimentSettings,
    *,
    rate_hz: float = 20.0,
    ping_bytes: int = 92,  # 64-byte ICMP payload + headers
    workers: int | None = None,
    cache: ResultCache | None = None,
    runner: CampaignRunner | None = None,
    progress: ProgressFn | None = None,
) -> list[PingSample]:
    """Measure echo RTTs over the cellular channel (Fig. 13 workload)."""
    engine, owned = _resolve_runner(runner, workers, cache, progress)
    units = [
        make_unit(
            WORK_PING_PROBE,
            config.with_overrides(seed=seed, duration=settings.duration),
            rate_hz=rate_hz,
            ping_bytes=ping_bytes,
        )
        for seed in settings.seeds
    ]
    try:
        seed_results = engine.run(units)
    finally:
        if owned:
            engine.close()
    samples: list[PingSample] = []
    for seed_samples in seed_results:
        samples.extend(seed_samples)
    return samples
