"""Experiment runners for the operator-comparison figures.

* Fig. 10 — rural throughput and handover frequency, P1 vs P2;
* Fig. 12 — the full video-performance comparison over both
  operators in the rural environment (Appendix A.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.render import format_table, render_boxplots, render_cdf
from repro.core.config import ScenarioConfig
from repro.experiments.campaign import (
    ChannelProbeResult,
    run_channel_probe,
    run_matrix,
)
from repro.experiments.settings import ExperimentSettings
from repro.metrics.stats import BoxplotSummary, Cdf
from repro.runner import CampaignRunner
from repro.util.units import to_mbps
from repro.metrics.network import goodput_series
from repro.metrics.video import (
    RP_LATENCY_THRESHOLD,
    SSIM_THRESHOLD,
    fps_series,
    playback_latencies,
    ssim_samples,
)


@dataclass
class Fig10Result:
    """Fig. 10: rural capacity and HO frequency per operator."""

    throughput: dict[str, BoxplotSummary]  # operator -> Mbps summary
    probes: dict[str, ChannelProbeResult]  # operator -> channel probe

    def mean_throughput(self, operator: str) -> float:
        """Mean rural uplink capacity of ``operator`` in Mbps."""
        return self.throughput[operator].mean

    def ho_frequency(self, operator: str) -> float:
        """Aerial handover rate of ``operator`` in the rural area."""
        return self.probes[operator].ho_frequency

    def render(self) -> str:
        """Text rendering of both panels."""
        part_a = render_boxplots(
            self.throughput,
            title="Fig 10(a): rural uplink capacity per operator (Mbps)",
            unit="Mbps",
        )
        part_b = format_table(
            ["operator", "HO/s (air)", "cells seen"],
            [
                [op, f"{probe.ho_frequency:.3f}", str(probe.cells_seen)]
                for op, probe in self.probes.items()
            ],
            title="Fig 10(b): rural handover frequency per operator",
        )
        return part_a + "\n\n" + part_b


def fig10_operators(
    settings: ExperimentSettings, *, runner: CampaignRunner | None = None
) -> Fig10Result:
    """Probe the rural channel for both operators."""
    throughput = {}
    probes = {}
    for operator in ("P1", "P2"):
        config = ScenarioConfig(
            environment="rural", platform="air", cc="static", operator=operator
        )
        probe = run_channel_probe(config, settings, runner=runner)
        probes[operator] = probe
        throughput[operator] = BoxplotSummary.from_samples(
            [to_mbps(rate) for rate in probe.uplink_samples]
        )
    return Fig10Result(throughput=throughput, probes=probes)


@dataclass
class Fig12Result:
    """Fig. 12: rural video performance per method and operator."""

    goodput: dict[str, BoxplotSummary]
    fps: dict[str, Cdf]
    latency: dict[str, Cdf]
    ssim: dict[str, Cdf]

    def mean_goodput(self, cc: str, operator: str) -> float:
        """Mean goodput (Mbps) of one method over one operator."""
        return self.goodput[f"{cc}-rural-air-{operator}"].mean

    def ssim_above_threshold(self, cc: str, operator: str) -> float:
        """Fraction of frames meeting the SSIM threshold."""
        return self.ssim[f"{cc}-rural-air-{operator}"].fraction_above(
            SSIM_THRESHOLD
        )

    def latency_below_threshold(self, cc: str, operator: str) -> float:
        """Fraction of frames within the RP latency threshold."""
        return self.latency[f"{cc}-rural-air-{operator}"].fraction_below(
            RP_LATENCY_THRESHOLD
        )

    def render(self) -> str:
        """Text rendering of all four panels."""
        blocks = [
            render_boxplots(
                self.goodput,
                title="Fig 12(a): rural goodput per operator (Mbps)",
                unit="Mbps",
            ),
            render_cdf(
                self.fps,
                [1, 10, 20, 28, 30],
                title="Fig 12(b): FPS CDF",
                fmt="{:.0f}",
            ),
            render_cdf(
                self.latency,
                [0.15, 0.2, 0.3, 0.5, 1.0],
                title="Fig 12(c): playback latency CDF (s)",
                unit="s",
            ),
            render_cdf(
                self.ssim,
                [0.25, 0.5, 0.75, 0.9],
                title="Fig 12(d): SSIM CDF",
            ),
        ]
        return "\n\n".join(blocks)


def fig12_mno(
    settings: ExperimentSettings, *, runner: CampaignRunner | None = None
) -> Fig12Result:
    """Run the rural matrix over both operators."""
    # The paper's static rural bitrate was picked for P1 (8 Mbps); it
    # is kept for P2 as well, matching the appendix methodology.
    configs = [
        ScenarioConfig(
            environment="rural", platform="air", cc=cc, operator=operator
        )
        for cc in ("static", "scream", "gcc")
        for operator in ("P1", "P2")
    ]
    grouped = run_matrix(configs, settings, runner=runner)
    goodput: dict[str, BoxplotSummary] = {}
    fps: dict[str, Cdf] = {}
    latency: dict[str, Cdf] = {}
    ssim: dict[str, Cdf] = {}
    for label, results in grouped.items():
        goodput_samples: list[float] = []
        fps_samples: list[float] = []
        lat_samples: list[float] = []
        ssim_vals: list[float] = []
        for result in results:
            goodput_samples.extend(
                to_mbps(rate)
                for t, rate in goodput_series(
                    result.packet_log, duration=result.duration
                )
                if t >= settings.warmup
            )
            playback = [
                r for r in result.playback if r.play_time >= settings.warmup
            ]
            fps_samples.extend(
                value
                for t, value in fps_series(playback, duration=result.duration)
                if t >= settings.warmup
            )
            lat_samples.extend(playback_latencies(playback))
            frames_encoded = max(
                result.sender_stats.frames_encoded
                - int(settings.warmup * result.config.fps),
                1,
            )
            ssim_vals.extend(ssim_samples(playback, frames_encoded=frames_encoded))
        goodput[label] = BoxplotSummary.from_samples(goodput_samples)
        fps[label] = Cdf.from_samples(fps_samples)
        latency[label] = Cdf.from_samples(lat_samples)
        ssim[label] = Cdf.from_samples(ssim_vals)
    return Fig12Result(goodput=goodput, fps=fps, latency=latency, ssim=ssim)
