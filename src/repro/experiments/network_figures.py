"""Experiment runners for the network-level figures (Section 4.1).

* Fig. 4 — handover frequency and HET, air vs ground, urban vs rural;
* Fig. 5 — one-way latency CDFs, air vs ground, urban vs rural;
* Fig. 9 — max/min latency ratio in 1 s windows around handovers;
* Fig. 13 — ping RTT by altitude band.

Each runner returns a small dataclass with the figure's series plus a
``render()`` text block mirroring the published plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.render import format_table, render_boxplots, render_cdf
from repro.cellular.handover import HET_SUCCESS_THRESHOLD
from repro.core.config import ScenarioConfig
from repro.experiments.campaign import (
    ChannelProbeResult,
    run_channel_probe,
    run_matrix,
    run_ping_probe,
)
from repro.experiments.settings import ExperimentSettings
from repro.metrics.howindow import HoRatioSummary, handover_latency_ratios
from repro.runner import CampaignRunner
from repro.util.units import to_ms
from repro.metrics.stats import BoxplotSummary, Cdf
from repro.metrics.network import one_way_delays


def _scenarios_air_ground() -> list[ScenarioConfig]:
    return [
        ScenarioConfig(environment=env, platform=plat, cc="static")
        for env in ("urban", "rural")
        for plat in ("air", "ground")
    ]


@dataclass
class Fig4Result:
    """Fig. 4: handover statistics per scenario."""

    probes: dict[str, ChannelProbeResult]

    def ho_frequency(self, label: str) -> float:
        """Handover rate (events/s) for a scenario label."""
        return self.probes[label].ho_frequency

    def het_summary(self, label: str) -> BoxplotSummary | None:
        """HET boxplot summary for a scenario label."""
        values = self.probes[label].het_values
        if not values:
            return None
        return BoxplotSummary.from_samples(values)

    def render(self) -> str:
        """Text rendering of Fig. 4(a) and (b)."""
        freq_rows = []
        for label, probe in self.probes.items():
            hets = probe.het_values
            success = (
                sum(1 for h in hets if h <= HET_SUCCESS_THRESHOLD) / len(hets)
                if hets
                else float("nan")
            )
            freq_rows.append(
                [
                    label,
                    f"{probe.ho_frequency:.3f}",
                    str(len(probe.handovers)),
                    f"{success:.2f}",
                    str(probe.ping_pong),
                    str(probe.cells_seen),
                ]
            )
        part_a = format_table(
            ["scenario", "HO/s", "count", "HET<=49.5ms", "ping-pong", "cells"],
            freq_rows,
            title="Fig 4(a): handover frequency (air vs ground)",
        )
        part_b = render_boxplots(
            {label: self.het_summary(label) for label in self.probes},
            title="Fig 4(b): handover execution time (ms)",
            scale=1e3,
            unit="ms",
        )
        return part_a + "\n\n" + part_b


def fig4_handover(
    settings: ExperimentSettings, *, runner: CampaignRunner | None = None
) -> Fig4Result:
    """Run the Fig. 4 scenario matrix (channel-only, cheap)."""
    probes = {}
    for config in _scenarios_air_ground():
        probe = run_channel_probe(config, settings, runner=runner)
        probes[probe.label] = probe
    return Fig4Result(probes=probes)


@dataclass
class Fig5Result:
    """Fig. 5: one-way latency CDFs per scenario."""

    cdfs: dict[str, Cdf]

    def fraction_below(self, label: str, threshold: float) -> float:
        """CDF value at ``threshold`` seconds for one scenario."""
        return self.cdfs[label].fraction_below(threshold)

    def render(self) -> str:
        """Text rendering of the Fig. 5 CDF."""
        points = [0.02, 0.03, 0.05, 0.1, 0.2, 0.5, 1.0]
        return render_cdf(
            self.cdfs,
            points,
            title="Fig 5: one-way latency CDF (x in seconds)",
            unit="s",
            fmt="{:.2f}",
        )


def fig5_latency(
    settings: ExperimentSettings, *, runner: CampaignRunner | None = None
) -> Fig5Result:
    """Run the Fig. 5 matrix: static video over air/ground x urban/rural."""
    grouped = run_matrix(_scenarios_air_ground(), settings, runner=runner)
    cdfs = {}
    for label, results in grouped.items():
        delays: list[float] = []
        for result in results:
            delays.extend(one_way_delays(result.packet_log))
        cdfs[label] = Cdf.from_samples(delays)
    return Fig5Result(cdfs=cdfs)


@dataclass
class Fig9Result:
    """Fig. 9: latency ratios around handovers."""

    summary: HoRatioSummary
    handover_count: int

    def render(self) -> str:
        """Text rendering of the before/after boxplots."""
        return render_boxplots(
            {"before HO": self.summary.before, "after HO": self.summary.after},
            title=(
                "Fig 9: max/min one-way-latency ratio in 1 s windows "
                f"around {self.handover_count} aerial handovers"
            ),
        )


def fig9_ho_ratio(
    settings: ExperimentSettings, *, runner: CampaignRunner | None = None
) -> Fig9Result:
    """Pool latency ratios around handovers over aerial flights."""
    configs = [
        ScenarioConfig(environment=env, platform="air", cc="static")
        for env in ("urban", "rural")
    ]
    grouped = run_matrix(configs, settings, runner=runner)
    ratios = []
    count = 0
    for results in grouped.values():
        for result in results:
            count += len(result.handovers)
            ratios.extend(
                handover_latency_ratios(result.packet_log, result.handovers)
            )
    return Fig9Result(summary=HoRatioSummary.from_ratios(ratios), handover_count=count)


#: Altitude bands of Fig. 13, metres above ground.
ALTITUDE_BANDS = ((0.0, 20.0), (21.0, 60.0), (61.0, 100.0), (101.0, 140.0))


@dataclass
class Fig13Result:
    """Fig. 13: ping RTT CDFs per altitude band and environment."""

    cdfs: dict[str, dict[str, Cdf]]  # environment -> band -> cdf

    def band_cdf(self, environment: str, band: str) -> Cdf:
        """RTT CDF of one altitude band."""
        return self.cdfs[environment][band]

    def render(self) -> str:
        """Text rendering of both panels."""
        blocks = []
        points = [0.04, 0.05, 0.07, 0.1, 0.2, 0.5, 1.0]
        for environment, bands in self.cdfs.items():
            blocks.append(
                render_cdf(
                    bands,
                    points,
                    title=f"Fig 13 ({environment}): ping RTT CDF by altitude band (s)",
                    unit="s",
                )
            )
        return "\n\n".join(blocks)


def fig13_altitude(
    settings: ExperimentSettings, *, runner: CampaignRunner | None = None
) -> Fig13Result:
    """Measure ping RTT by altitude band in both environments."""
    cdfs: dict[str, dict[str, Cdf]] = {}
    for environment in ("urban", "rural"):
        config = ScenarioConfig(environment=environment, platform="air", cc="static")
        samples = run_ping_probe(config, settings, runner=runner)
        bands: dict[str, Cdf] = {}
        for low, high in ALTITUDE_BANDS:
            rtts = [s.rtt for s in samples if low <= s.altitude <= high]
            if len(rtts) >= 10:
                bands[f"{int(low)}-{int(high)}m"] = Cdf.from_samples(rtts)
        cdfs[environment] = bands
    return Fig13Result(cdfs=cdfs)


def fig4_to_series(result: Fig4Result) -> dict[str, float]:
    """Flatten Fig. 4 into the headline comparisons the paper makes."""
    def freq(env: str, plat: str) -> float:
        return result.ho_frequency(f"static-{env}-{plat}-P1")

    air_urban = freq("urban", "air")
    grd_urban = freq("urban", "ground")
    air_rural = freq("rural", "air")
    grd_rural = freq("rural", "ground")
    hets = [
        h
        for label in result.probes
        for h in result.probes[label].het_values
    ]
    return {
        "air_urban_ho_s": air_urban,
        "grd_urban_ho_s": grd_urban,
        "air_rural_ho_s": air_rural,
        "grd_rural_ho_s": grd_rural,
        "air_over_ground_urban": air_urban / max(grd_urban, 1e-9),
        "air_over_ground_rural": air_rural / max(grd_rural, 1e-9),
        "het_median_ms": to_ms(float(np.median(hets))) if hets else float("nan"),
        "het_max_ms": to_ms(float(np.max(hets))) if hets else float("nan"),
    }
