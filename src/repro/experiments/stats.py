"""Headline-statistics experiments (Section 4.1 / 4.2 numbers).

* PER level and burstiness (paper: 0.06-0.07 %, consecutive drops);
* stall rates per method (paper urban: static 0.11, SCReAM 0.89,
  GCC 1.37 stalls/min).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.render import format_table
from repro.core.config import ScenarioConfig
from repro.core.session import run_session
from repro.experiments.settings import ExperimentSettings
from repro.metrics.network import LossMetrics
from repro.metrics.video import StallMetrics


@dataclass
class PerResult:
    """Packet-error-rate measurement across scenarios."""

    loss_rates: dict[str, float]
    mean_burst: float

    def render(self) -> str:
        """Text table next to the paper's 0.06-0.07 %."""
        rows = [
            [label, f"{rate * 100:.3f}%"] for label, rate in self.loss_rates.items()
        ]
        rows.append(["mean loss-burst length", f"{self.mean_burst:.1f} packets"])
        return format_table(
            ["scenario", "PER"],
            rows,
            title="Packet error rate (paper: 0.06-0.07 %, bursty)",
        )


def per_experiment(settings: ExperimentSettings) -> PerResult:
    """Measure the end-to-end PER of static runs in both environments."""
    loss_rates = {}
    bursts: list[float] = []
    for environment in ("urban", "rural"):
        rates = []
        for seed in settings.seeds:
            config = ScenarioConfig(
                environment=environment,
                platform="air",
                cc="static",
                seed=seed,
                duration=settings.duration,
            )
            result = run_session(config)
            metrics = LossMetrics.from_result(result)
            rates.append(metrics.loss_rate)
            if metrics.mean_burst_length > 0:
                bursts.append(metrics.mean_burst_length)
        loss_rates[environment] = float(np.mean(rates))
    return PerResult(
        loss_rates=loss_rates,
        mean_burst=float(np.mean(bursts)) if bursts else 0.0,
    )


@dataclass
class StallResult:
    """Stall rates per bitrate-control method (urban)."""

    stalls_per_minute: dict[str, float]

    def render(self) -> str:
        """Text table next to the paper's stall rates."""
        paper = {"static": 0.11, "scream": 0.89, "gcc": 1.37}
        return format_table(
            ["method", "stalls/min (measured)", "stalls/min (paper)"],
            [
                [cc, f"{rate:.2f}", f"{paper.get(cc, float('nan')):.2f}"]
                for cc, rate in self.stalls_per_minute.items()
            ],
            title="Urban stall rates (inter-frame gap > 300 ms)",
        )


def stall_experiment(settings: ExperimentSettings) -> StallResult:
    """Measure urban stall rates for all three methods."""
    stalls = {}
    for cc in ("static", "scream", "gcc"):
        count = 0.0
        minutes = 0.0
        for seed in settings.seeds:
            config = ScenarioConfig(
                environment="urban",
                platform="air",
                cc=cc,
                seed=seed,
                duration=settings.duration,
            )
            result = run_session(config)
            playback = [
                r for r in result.playback if r.play_time >= settings.warmup
            ]
            metrics = StallMetrics.from_playback(
                playback, duration=settings.duration - settings.warmup
            )
            count += metrics.stall_count
            minutes += (settings.duration - settings.warmup) / 60.0
        stalls[cc] = count / max(minutes, 1e-9)
    return StallResult(stalls_per_minute=stalls)
