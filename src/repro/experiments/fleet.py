"""Fleet-density experiment: per-session QoE vs. sessions per cell.

The paper's headline numbers come from one UAV with every cell to
itself; this experiment asks the question the measurement study could
not — what happens to remote-piloting QoE when N RPAVs stream over the
*same* cells. For each fleet size the campaign runs
:func:`repro.core.fleet.run_fleet` across seeds (fleets shard over
worker processes exactly like seeds do), then aggregates per-session
QoE: playback-latency SLO violations, stalls/minute, goodput, the PRB
share the shared-cell scheduler actually granted, and — when run
instrumented — the fraction of latency violations the diagnosis layer
attributes to ``cell_congestion``.

The expected picture (and what the regression test pins): QoE degrades
monotonically with density — goodput and PRB share fall, congestion
time rises — while per-cell allocated capacity never exceeds the PRB
budget.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.analysis.render import format_table
from repro.cellular.cell import CellCapacityConfig, merge_occupancy
from repro.core.config import ScenarioConfig
from repro.core.fleet import FleetResult
from repro.experiments.campaign import _resolve_runner
from repro.experiments.settings import ExperimentSettings
from repro.metrics.video import VideoSummary
from repro.obs import DiagnosisSummary, ObsLevel
from repro.obs.attribute import CELL_CONGESTION
from repro.runner import WORK_FLEET, CampaignRunner, ResultCache
from repro.runner.engine import ProgressFn
from repro.runner.work import WorkUnit, make_unit
from repro.util.units import bytes_to_bits, to_mbps

#: Fleet sizes swept by default (sessions sharing the layout).
DEFAULT_DENSITIES = (1, 2, 4, 8)
#: Tight default spread (m) so the fleet contends for the same cells.
DEFAULT_SPREAD_RADIUS = 50.0


def fleet_unit(
    config: ScenarioConfig,
    *,
    num_sessions: int,
    seed_stride: int = 1000,
    spread_radius: float = DEFAULT_SPREAD_RADIUS,
    cell_capacity: CellCapacityConfig | None = None,
    obs: bool | str | ObsLevel = False,
    trace_members: tuple[int, ...] = (),
) -> WorkUnit:
    """Build one :data:`WORK_FLEET` campaign unit.

    The capacity config is flattened to a plain tuple so the unit's
    cache fingerprint stays JSON-able and stable; ``obs`` accepts the
    full :class:`ObsLevel` spectrum (``True`` means ``trace`` for
    backward compatibility) and lands in the params — and therefore
    the fingerprint — as the level's string value, so traced, metered
    and dark runs never share cache entries.
    """
    params: dict = {
        "num_sessions": num_sessions,
        "seed_stride": seed_stride,
        "spread_radius": spread_radius,
    }
    if cell_capacity is not None:
        params["cell_capacity"] = dataclasses.astuple(cell_capacity)
    level = ObsLevel.coerce(obs)
    if level is not ObsLevel.OFF:
        params["obs"] = level.value
    if trace_members:
        params["trace_members"] = tuple(int(m) for m in trace_members)
    return make_unit(WORK_FLEET, config, **params)


@dataclass
class FleetDensityPoint:
    """Aggregated per-session QoE at one fleet size."""

    num_sessions: int
    fleets: int  #: fleet runs aggregated (one per seed)
    #: Mean fraction of played frames over the 300 ms RP latency SLO.
    latency_violation_frac: float
    median_latency_ms: float
    stalls_per_minute: float
    #: Mean delivered video goodput per session (bits/s).
    goodput_bps: float
    #: Mean uplink PRB share granted across sessions and ticks.
    mean_uplink_share: float
    #: Mean simulated seconds per session below the congestion share.
    congestion_seconds: float
    #: Peak concurrent sessions observed on any one cell.
    peak_sessions_per_cell: int
    #: Fraction of latency violations attributed to cell congestion
    #: by the diagnosis layer (``None`` when run uninstrumented).
    congestion_attribution: float | None = None


@dataclass
class FleetDensityResult:
    """QoE-vs-density sweep output (one point per fleet size)."""

    points: list[FleetDensityPoint]
    label: str

    def render(self) -> str:
        """Text table of the density sweep."""
        rows = []
        for point in self.points:
            rows.append([
                str(point.num_sessions),
                f"{point.latency_violation_frac * 100:.1f} %",
                f"{point.median_latency_ms:.0f}",
                f"{point.stalls_per_minute:.2f}",
                f"{to_mbps(point.goodput_bps):.2f}",
                f"{point.mean_uplink_share:.2f}",
                f"{point.congestion_seconds:.1f}",
                str(point.peak_sessions_per_cell),
                (
                    f"{point.congestion_attribution * 100:.0f} %"
                    if point.congestion_attribution is not None
                    else "-"
                ),
            ])
        return format_table(
            [
                "fleet", "lat>SLO", "med ms", "stalls/min", "Mbps",
                "PRB share", "congest s", "peak/cell", "attrib",
            ],
            rows,
            title=f"Per-session QoE vs. fleet density ({self.label})",
        )


def _session_goodput(result, warmup: float) -> float:
    """Delivered video bits/s of one session after warmup."""
    window = result.duration - warmup
    if window <= 0.0:
        return 0.0
    received = sum(
        entry.size_bytes
        for entry in result.packet_log
        if entry.received_at >= warmup
    )
    return bytes_to_bits(received) / window


def _aggregate_point(
    num_sessions: int,
    fleets: list[FleetResult],
    warmup: float,
    instrumented: bool,
) -> FleetDensityPoint:
    violation = 0.0
    median_latency = 0.0
    stalls = 0.0
    goodput = 0.0
    share = 0.0
    congestion = 0.0
    sessions = 0
    for fleet in fleets:
        for index, session in enumerate(fleet.sessions):
            summary = VideoSummary.from_result(session, warmup=warmup)
            violation += 1.0 - summary.latency_below_threshold
            median_latency += summary.median_latency_ms
            stalls += summary.stalls_per_minute
            goodput += _session_goodput(session, warmup)
            samples = [
                s.uplink_share
                for s in session.capacity_samples
                if s.time >= warmup
            ]
            share += sum(samples) / max(len(samples), 1)
            congestion += fleet.congestion_time[index]
            sessions += 1
    peak = merge_occupancy(fleet.peak_occupancy for fleet in fleets)
    attribution: float | None = None
    if instrumented:
        merged = DiagnosisSummary()
        for fleet in fleets:
            summary_dict = fleet.extra.get("diagnosis", {}).get("summary")
            if summary_dict:
                merged.merge(DiagnosisSummary.from_dict(summary_dict))
        attribution = merged.attribution_fraction(
            "playback_latency", CELL_CONGESTION
        )
    n = max(sessions, 1)
    return FleetDensityPoint(
        num_sessions=num_sessions,
        fleets=len(fleets),
        latency_violation_frac=violation / n,
        median_latency_ms=median_latency / n,
        stalls_per_minute=stalls / n,
        goodput_bps=goodput / n,
        mean_uplink_share=share / n,
        congestion_seconds=congestion / n,
        peak_sessions_per_cell=max(peak.values(), default=0),
        congestion_attribution=attribution,
    )


def run_fleet_density(
    config: ScenarioConfig,
    settings: ExperimentSettings,
    *,
    densities: tuple[int, ...] = DEFAULT_DENSITIES,
    spread_radius: float = DEFAULT_SPREAD_RADIUS,
    cell_capacity: CellCapacityConfig | None = None,
    obs: bool | str | ObsLevel = False,
    workers: int | None = None,
    cache: ResultCache | None = None,
    runner: CampaignRunner | None = None,
    progress: ProgressFn | None = None,
) -> FleetDensityResult:
    """Sweep fleet density and aggregate per-session QoE.

    One :data:`WORK_FLEET` unit per (density, seed) pair — fleets fan
    out over worker processes exactly like seeded sessions do, and
    repeat runs are served from the result cache. On a batching
    runner (``CampaignRunner(batch=True)``) the planner additionally
    groups each density's seed sweep into per-worker fleet batches
    with per-unit cache fan-back, so an interrupted sweep resumes
    from the fleets that completed; each fleet itself runs the
    vectorized fast path (SoA contention + member-stacked tick
    plans). ``obs="metrics"`` keeps that fast path *and* the batching
    planner while adding the vectorized fleet metrics plane;
    ``obs="trace"`` (or ``True``) runs every fleet under a shared
    recorder (scalar-scheduled, batching excluded) and the
    per-density points additionally carry the fraction of latency
    violations the diagnosis layer pins on ``cell_congestion``.
    """
    level = ObsLevel.coerce(obs)
    engine, owned = _resolve_runner(runner, workers, cache, progress)
    units = [
        fleet_unit(
            config.with_overrides(seed=seed, duration=settings.duration),
            num_sessions=density,
            spread_radius=spread_radius,
            cell_capacity=cell_capacity,
            obs=level,
        )
        for density in densities
        for seed in settings.seeds
    ]
    try:
        results = engine.run(units)
    finally:
        if owned:
            engine.close()
    per_density: dict[int, list[FleetResult]] = {d: [] for d in densities}
    for unit, result in zip(units, results):
        num_sessions = dict(unit.params)["num_sessions"]
        per_density[num_sessions].append(result)
    instrumented = level is ObsLevel.TRACE
    points = [
        _aggregate_point(
            density, per_density[density], settings.warmup, instrumented
        )
        for density in densities
    ]
    label = (
        f"{config.cc.value}-{config.environment.value}-"
        f"{config.platform.value}-{config.operator}"
    )
    return FleetDensityResult(points=points, label=label)
