"""Command-and-control (C2) traffic alongside the video stream.

The remote-piloting loop of the paper's Fig. 1 is bidirectional: "the
pilots send command packets to the UAVs and receive video and
telemetry streams in return". The measurement campaign focuses on the
video uplink; the related work it cites (Jin et al.) reports command
latencies of ~30 ms against video latencies of seconds — a gap this
module reproduces: small command datagrams ride the downlink and
telemetry rides the uplink *through the same cellular channel* as the
video, so handover outages and bufferbloat hit all three flows
coherently.

``run_control_session`` runs a standard video session with C2 traffic
injected and reports per-flow latency; with ``with_video=False`` it
isolates the C2 flows (an idle-link baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.render import format_table
from repro.cellular.channel import CellularChannel
from repro.cellular.operators import get_profile
from repro.core.config import ScenarioConfig
from repro.core.receiver import VideoReceiver
from repro.util.units import to_ms
from repro.core.sender import VideoSender
from repro.core.session import (
    build_channel_config,
    build_controller,
    build_trajectory,
)
from repro.net.loss import GilbertElliottLoss
from repro.net.packet import Datagram, reset_datagram_ids
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop, PeriodicTimer
from repro.util.rng import RngStreams
from repro.video.encoder import EncoderModel
from repro.video.player import PlaybackRecord
from repro.video.source import SourceVideo

#: Command rate from pilot to UAV (joystick updates).
COMMAND_RATE_HZ = 50.0
#: Command datagram size: stick positions + sequence + auth.
COMMAND_BYTES = 96
#: Telemetry rate from UAV to pilot (attitude, GPS, battery).
TELEMETRY_RATE_HZ = 10.0
TELEMETRY_BYTES = 220


@dataclass
class C2Sample:
    """One delivered C2 datagram's latency."""

    sent_at: float
    latency: float


@dataclass
class ControlResult:
    """Latency results of one C2(+video) run."""

    config: ScenarioConfig
    with_video: bool
    command_samples: list[C2Sample]
    telemetry_samples: list[C2Sample]
    commands_sent: int
    telemetry_sent: int
    playback: list[PlaybackRecord] = field(default_factory=list)

    @property
    def command_loss_rate(self) -> float:
        """Fraction of command packets that never arrived."""
        if self.commands_sent == 0:
            return 0.0
        return 1.0 - len(self.command_samples) / self.commands_sent

    def command_latency_ms(self, percentile: float = 50.0) -> float:
        """Command one-way latency percentile in milliseconds."""
        values = [s.latency for s in self.command_samples]
        return to_ms(float(np.percentile(values, percentile))) if values else float("nan")

    def telemetry_latency_ms(self, percentile: float = 50.0) -> float:
        """Telemetry one-way latency percentile in milliseconds."""
        values = [s.latency for s in self.telemetry_samples]
        return to_ms(float(np.percentile(values, percentile))) if values else float("nan")

    def video_latency_ms(self, percentile: float = 50.0) -> float:
        """Video playback latency percentile in milliseconds."""
        values = [r.playback_latency for r in self.playback]
        return to_ms(float(np.percentile(values, percentile))) if values else float("nan")

    def render(self) -> str:
        """Per-flow latency table (cf. the related-work comparison)."""
        rows = [
            [
                "command (pilot->UAV)",
                f"{self.command_latency_ms(50):.0f}",
                f"{self.command_latency_ms(99):.0f}",
                f"{self.command_loss_rate * 100:.2f}%",
            ],
            [
                "telemetry (UAV->pilot)",
                f"{self.telemetry_latency_ms(50):.0f}",
                f"{self.telemetry_latency_ms(99):.0f}",
                "-",
            ],
        ]
        if self.playback:
            rows.append(
                [
                    "video playback",
                    f"{self.video_latency_ms(50):.0f}",
                    f"{self.video_latency_ms(99):.0f}",
                    "-",
                ]
            )
        return format_table(
            ["flow", "median ms", "p99 ms", "loss"],
            rows,
            title=f"C2 + video latency ({self.config.label()})",
        )


def run_control_session(
    config: ScenarioConfig, *, with_video: bool = True
) -> ControlResult:
    """Run commands + telemetry (and optionally video) over one channel."""
    reset_datagram_ids()
    loop = EventLoop()
    streams = RngStreams(config.seed)
    profile = get_profile(config.operator, config.environment.value)
    layout = profile.build_layout(streams.derive("layout"))
    trajectory = build_trajectory(config, streams)
    channel = CellularChannel(
        loop,
        layout,
        profile,
        trajectory,
        streams.child("channel"),
        config=build_channel_config(config),
        horizon=config.duration,
    )

    command_samples: list[C2Sample] = []
    telemetry_samples: list[C2Sample] = []
    receiver_holder: list[VideoReceiver] = []
    counters = {"commands": 0, "telemetry": 0}

    def on_uplink(datagram: Datagram) -> None:
        payload = datagram.payload
        if isinstance(payload, tuple) and payload[0] == "telemetry":
            telemetry_samples.append(
                C2Sample(sent_at=payload[1], latency=loop.now - payload[1])
            )
            return
        if receiver_holder:
            receiver_holder[0].on_datagram(datagram)

    def on_downlink(datagram: Datagram) -> None:
        payload = datagram.payload
        if isinstance(payload, tuple) and payload[0] == "command":
            command_samples.append(
                C2Sample(sent_at=payload[1], latency=loop.now - payload[1])
            )
            return
        if receiver_holder:
            receiver_holder[0].on_feedback_delivered(datagram)

    uplink = NetworkPath(
        loop, channel.uplink_rate, on_uplink,
        base_delay=config.base_owd,
        jitter_std=config.owd_jitter_std,
        loss_model=GilbertElliottLoss.from_rate_and_burst(
            config.loss_rate, config.loss_mean_burst, streams.derive("loss-up")
        ),
        buffer_bytes=config.uplink_buffer_bytes,
        rng=streams.derive("jitter-up"),
    )
    downlink = NetworkPath(
        loop, channel.downlink_rate, on_downlink,
        base_delay=config.base_owd,
        jitter_std=config.owd_jitter_std,
        loss_model=GilbertElliottLoss.from_rate_and_burst(
            config.loss_rate, config.loss_mean_burst, streams.derive("loss-down")
        ),
        buffer_bytes=config.downlink_buffer_bytes,
        rng=streams.derive("jitter-down"),
    )
    channel.attach_path(uplink)
    channel.attach_path(downlink)

    playback: list[PlaybackRecord] = []
    sender = None
    if with_video:
        controller = build_controller(config)
        source = SourceVideo(streams.derive("source"), fps=config.fps)
        encoder = EncoderModel(
            streams.derive("encoder"),
            fps=config.fps,
            initial_bitrate=controller.target_bitrate(0.0),
        )
        sender = VideoSender(loop, source, encoder, controller, uplink)
        receiver = VideoReceiver(
            loop, controller, downlink,
            fps=config.fps,
            jitter_buffer_latency=config.jitter_buffer_latency,
            scream_ack_window=config.scream_ack_window,
        )
        receiver_holder.append(receiver)

    def send_command() -> None:
        counters["commands"] += 1
        downlink.send(
            Datagram(size_bytes=COMMAND_BYTES, payload=("command", loop.now))
        )

    def send_telemetry() -> None:
        counters["telemetry"] += 1
        uplink.send(
            Datagram(size_bytes=TELEMETRY_BYTES, payload=("telemetry", loop.now))
        )

    channel.start()
    PeriodicTimer(loop, 1.0 / COMMAND_RATE_HZ, send_command)
    PeriodicTimer(loop, 1.0 / TELEMETRY_RATE_HZ, send_telemetry)
    if sender is not None:
        sender.start()
        receiver_holder[0].start()
    loop.run_until(config.duration)
    if sender is not None:
        sender.stop()
        receiver_holder[0].stop()
        playback = receiver_holder[0].player.records

    return ControlResult(
        config=config,
        with_video=with_video,
        command_samples=command_samples,
        telemetry_samples=telemetry_samples,
        commands_sent=counters["commands"],
        telemetry_sent=counters["telemetry"],
        playback=playback,
    )
