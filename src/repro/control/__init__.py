"""Command-and-control (C2) traffic subsystem (Fig. 1's second half)."""

from repro.control.session import (
    COMMAND_RATE_HZ,
    COMMAND_BYTES,
    TELEMETRY_RATE_HZ,
    TELEMETRY_BYTES,
    C2Sample,
    ControlResult,
    run_control_session,
)

__all__ = [
    "COMMAND_RATE_HZ",
    "COMMAND_BYTES",
    "TELEMETRY_RATE_HZ",
    "TELEMETRY_BYTES",
    "C2Sample",
    "ControlResult",
    "run_control_session",
]
