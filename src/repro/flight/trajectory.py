"""Flight and ground trajectories.

Reproduces the measurement trajectory of Appendix A.2 / Fig. 11: lift
off vertically to 40 m, fly a ~200 m horizontal leap, repeat at 80 m
and 120 m, then descend straight to the take-off location — about six
minutes of air time. Ground (baseline) runs mimic the motorbike rides
the authors used: horizontal movement at flight-like speeds at street
level, including stationary periods (the paper notes the ground data
set contains more time without horizontal movement).

Positions are local ENU coordinates in metres; altitude is metres
above ground.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Position:
    """A point on the trajectory."""

    x: float
    y: float
    altitude: float
    speed: float = 0.0

    def horizontal_distance_to(self, other: "Position") -> float:
        """Ground-plane distance to ``other`` in metres."""
        return float(np.hypot(self.x - other.x, self.y - other.y))

    def distance_to(self, other: "Position") -> float:
        """3-D distance to ``other`` in metres."""
        return float(
            np.sqrt(
                (self.x - other.x) ** 2
                + (self.y - other.y) ** 2
                + (self.altitude - other.altitude) ** 2
            )
        )


class WaypointTrajectory:
    """Piecewise-linear trajectory through timed waypoints."""

    def __init__(self, times: list[float], points: list[Position]) -> None:
        if len(times) != len(points):
            raise ValueError("times and points must have equal length")
        if len(times) < 2:
            raise ValueError("need at least two waypoints")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("times must be strictly increasing")
        self._times = times
        self._points = points

    @property
    def duration(self) -> float:
        """Total trajectory duration in seconds."""
        return self._times[-1] - self._times[0]

    def positions_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`position` (without speed) for many times.

        Returns an ``(n, 3)`` array of ``(x, y, altitude)`` rows.
        ``np.interp`` clamps to the end waypoints exactly like the
        scalar method.
        """
        wp_times = np.asarray(self._times, dtype=float)
        xs = np.interp(times, wp_times, [p.x for p in self._points])
        ys = np.interp(times, wp_times, [p.y for p in self._points])
        alts = np.interp(times, wp_times, [p.altitude for p in self._points])
        return np.column_stack([xs, ys, alts])

    def waypoint_key(self) -> tuple:
        """Hashable identity of this trajectory (for geometry caches)."""
        return (
            tuple(self._times),
            tuple((p.x, p.y, p.altitude) for p in self._points),
        )

    def geometry_key(self) -> tuple:
        """``(base waypoint key, (dx, dy))`` for offset-aware caches.

        The channel's geometry cache keys on this pair so translated
        copies of one base path (fleet ring formations) share the
        interpolated base positions and differ only in the cheap
        ground-plane shift — a plain trajectory is its own base with a
        zero offset.
        """
        return (self.waypoint_key(), (0.0, 0.0))

    def position(self, t: float) -> Position:
        """Interpolated position at time ``t`` (clamped to the ends)."""
        if t <= self._times[0]:
            return self._points[0]
        if t >= self._times[-1]:
            return self._points[-1]
        i = bisect.bisect_right(self._times, t) - 1
        t0, t1 = self._times[i], self._times[i + 1]
        p0, p1 = self._points[i], self._points[i + 1]
        frac = (t - t0) / (t1 - t0)
        dx = p1.x - p0.x
        dy = p1.y - p0.y
        dz = p1.altitude - p0.altitude
        seg_len = float(np.sqrt(dx * dx + dy * dy + dz * dz))
        speed = seg_len / (t1 - t0)
        return Position(
            x=p0.x + frac * dx,
            y=p0.y + frac * dy,
            altitude=p0.altitude + frac * dz,
            speed=speed,
        )


class TranslatedTrajectory(WaypointTrajectory):
    """A base trajectory rigidly shifted in the ground plane.

    Fleet ring formations fly translated copies of one shared base
    path. The shift is applied *after* interpolation (``lerp(x) + dx``
    rather than interpolating pre-shifted waypoints): linear
    interpolation is only translation-equivariant in exact arithmetic,
    and applying the offset post-interpolation is what lets every ring
    member reuse one cached base-position table — the geometry cache
    keys on ``(base waypoint key, offset)`` and recomputes only the
    per-member loss/gain pass. Altitude is untouched.
    """

    def __init__(
        self, base: WaypointTrajectory, dx: float, dy: float
    ) -> None:
        super().__init__(
            list(base._times),
            [
                Position(p.x + dx, p.y + dy, p.altitude, p.speed)
                for p in base._points
            ],
        )
        self._base = base
        self._offset = (float(dx), float(dy))

    def geometry_key(self) -> tuple:
        return (self._base.waypoint_key(), self._offset)

    def position(self, t: float) -> Position:
        dx, dy = self._offset
        p = self._base.position(t)
        if dx == 0.0 and dy == 0.0:
            return p
        return Position(p.x + dx, p.y + dy, p.altitude, p.speed)

    def positions_at(self, times: np.ndarray) -> np.ndarray:
        dx, dy = self._offset
        pos = self._base.positions_at(times)
        if dx != 0.0 or dy != 0.0:
            pos[:, 0] += dx
            pos[:, 1] += dy
        return pos


#: Climb/descend rate of the DJI-M600-class platform (m/s).
VERTICAL_SPEED = 2.5
#: Median horizontal cruise speed reported in the paper (13 km/h).
CRUISE_SPEED = 13.0 / 3.6


def paper_flight_trajectory(
    *,
    leap_length: float = 200.0,
    levels: tuple[float, ...] = (40.0, 80.0, 120.0),
    cruise_speed: float = CRUISE_SPEED,
    vertical_speed: float = VERTICAL_SPEED,
    hover_time: float = 16.0,
    origin: tuple[float, float] = (0.0, 0.0),
) -> WaypointTrajectory:
    """Build the Fig. 11 measurement trajectory.

    Vertical climb to each level followed by a horizontal leap,
    alternating direction, then a straight descent. The platform
    hovers briefly at each waypoint (stabilization before the next
    manoeuvre), which brings the air time to ~6 minutes as in
    Appendix A.2.
    """
    times: list[float] = [0.0]
    x0, y0 = origin
    points: list[Position] = [Position(x0, y0, 0.0)]
    t = 0.0
    x = x0
    altitude = 0.0
    direction = 1.0

    def add(new_t: float, position: Position) -> None:
        times.append(new_t)
        points.append(position)

    for level in levels:
        climb = (level - altitude) / vertical_speed
        t += climb
        altitude = level
        add(t, Position(x, y0, altitude))
        if hover_time > 0:
            t += hover_time
            add(t, Position(x, y0, altitude))
        t += leap_length / cruise_speed
        x += direction * leap_length
        direction = -direction
        add(t, Position(x, y0, altitude))
        if hover_time > 0:
            t += hover_time
            add(t, Position(x, y0, altitude))
    t += altitude / vertical_speed
    add(t, Position(x, y0, 0.0))
    return WaypointTrajectory(times, points)


def ground_trajectory(
    *,
    duration: float = 360.0,
    span: float = 600.0,
    speed: float = CRUISE_SPEED,
    idle_fraction: float = 0.35,
    rng: np.random.Generator,
    origin: tuple[float, float] = (0.0, 0.0),
    altitude: float = 1.5,
) -> WaypointTrajectory:
    """Build a motorbike-style ground run.

    Drives back and forth over ``span`` metres with interspersed
    stationary periods totalling ``idle_fraction`` of the run. The
    route's randomness comes entirely from ``rng``; derive it from the
    scenario's :class:`repro.util.rng.RngStreams` so a ground route
    never shares a stream with another component.
    """
    times: list[float] = [0.0]
    x0, y0 = origin
    points: list[Position] = [Position(x0, y0, altitude)]
    t = 0.0
    x = x0
    direction = 1.0
    while t < duration:
        if rng.random() < idle_fraction:
            dwell = float(rng.uniform(5.0, 30.0))
            t += dwell
            times.append(t)
            points.append(Position(x, y0, altitude))
            continue
        leg = float(rng.uniform(0.3, 1.0)) * span
        t += leg / speed
        x += direction * leg
        direction = -direction
        times.append(t)
        points.append(Position(x, y0, altitude))
    return WaypointTrajectory(times, points)
