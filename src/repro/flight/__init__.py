"""UAV and ground-vehicle trajectories (Fig. 11, Appendix A.2)."""

from repro.flight.trajectory import (
    Position,
    WaypointTrajectory,
    paper_flight_trajectory,
    ground_trajectory,
    VERTICAL_SPEED,
    CRUISE_SPEED,
)

__all__ = [
    "Position",
    "WaypointTrajectory",
    "paper_flight_trajectory",
    "ground_trajectory",
    "VERTICAL_SPEED",
    "CRUISE_SPEED",
]
