"""Cell layouts for the urban and rural measurement areas.

Fig. 3 of the paper shows the two flight zones: the urban campus
surrounded by a dense ring of base stations (the UAV connected to 32
distinct cells there) and the rural outskirts with sparse coverage
(18 cells over a much larger area). Operators do not publish exact
site data, so — like the paper, which plots approximate locations
from the Bundesnetzagentur EMF database — we synthesize layouts with
matching densities: a jittered grid of sites around the flight area,
each site hosting up to three sector cells modelled as independent
cells at the site position.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flight.trajectory import Position


@dataclass(frozen=True)
class Cell:
    """One LTE cell (sector)."""

    cell_id: int
    x: float
    y: float
    height: float
    tx_power_dbm: float = 46.0
    downtilt_deg: float = 6.0

    def position(self) -> Position:
        """Antenna position as a :class:`Position`."""
        return Position(self.x, self.y, self.height)


@dataclass
class CellLayout:
    """A set of cells covering a measurement area."""

    cells: list[Cell]
    name: str = "layout"

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("layout needs at least one cell")
        ids = [cell.cell_id for cell in self.cells]
        if len(set(ids)) != len(ids):
            raise ValueError("cell ids must be unique")

    def __len__(self) -> int:
        return len(self.cells)

    def positions(self) -> np.ndarray:
        """``(n, 3)`` array of cell antenna positions."""
        return np.array(
            [[cell.x, cell.y, cell.height] for cell in self.cells], dtype=float
        )

    def cell_by_id(self, cell_id: int) -> Cell:
        """Look up a cell by id."""
        for cell in self.cells:
            if cell.cell_id == cell_id:
                return cell
        raise KeyError(f"no cell with id {cell_id}")


def grid_layout(
    *,
    num_sites: int,
    area_radius: float,
    rng: np.random.Generator,
    sectors_per_site: int = 2,
    site_height: float = 30.0,
    jitter: float = 0.25,
    name: str = "layout",
    tx_power_dbm: float = 46.0,
    downtilt_deg: float = 6.0,
    exclusion_radius: float = 0.0,
) -> CellLayout:
    """Synthesize a jittered-grid layout around the origin.

    Sites are placed on a roughly square grid covering a disc of
    ``area_radius`` metres centred on the flight area, with positional
    jitter of ``jitter`` grid spacings. Sector cells share the site
    position (the antenna-pattern model differentiates them through
    per-cell shadowing streams). Sites falling within
    ``exclusion_radius`` of the origin are pushed out to that radius —
    the flight areas themselves host no towers (Fig. 3: the rural
    zone in particular sits in open space away from the sparse BSs).
    """
    if num_sites < 1:
        raise ValueError(f"num_sites must be >= 1, got {num_sites}")
    side = int(np.ceil(np.sqrt(num_sites)))
    spacing = 2.0 * area_radius / side
    cells: list[Cell] = []
    cell_id = 0
    placed = 0
    for row in range(side):
        for col in range(side):
            if placed >= num_sites:
                break
            x = -area_radius + (col + 0.5) * spacing
            y = -area_radius + (row + 0.5) * spacing
            x += float(rng.normal(0.0, jitter * spacing))
            y += float(rng.normal(0.0, jitter * spacing))
            radius = float(np.hypot(x, y))
            if exclusion_radius > 0.0 and radius < exclusion_radius:
                if radius < 1.0:
                    angle = float(rng.uniform(0.0, 2.0 * np.pi))
                    x, y = np.cos(angle), np.sin(angle)
                    radius = 1.0
                scale = exclusion_radius / radius
                x, y = x * scale, y * scale
            for _ in range(sectors_per_site):
                cells.append(
                    Cell(
                        cell_id=cell_id,
                        x=x,
                        y=y,
                        height=site_height,
                        tx_power_dbm=tx_power_dbm,
                        downtilt_deg=downtilt_deg,
                    )
                )
                cell_id += 1
            placed += 1
    return CellLayout(cells=cells, name=name)


def urban_layout(rng: np.random.Generator, *, sites: int = 16) -> CellLayout:
    """Dense urban layout: ~16 sites x 2 sectors within ~800 m.

    Matches the paper's urban zone where 32 distinct cells were seen
    with inter-site distances of a few hundred metres.
    """
    return grid_layout(
        num_sites=sites,
        area_radius=800.0,
        rng=rng,
        sectors_per_site=2,
        site_height=28.0,
        name="urban",
    )


def rural_layout(rng: np.random.Generator, *, sites: int = 9) -> CellLayout:
    """Sparse rural layout: ~9 sites x 2 sectors over ~4 km.

    Matches the paper's rural zone (18 cells, open space, kilometre-
    scale inter-site distances).
    """
    return grid_layout(
        num_sites=sites,
        area_radius=4_000.0,
        rng=rng,
        sectors_per_site=2,
        site_height=35.0,
        name="rural",
    )
