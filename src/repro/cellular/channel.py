"""The end-to-end cellular channel driven by a trajectory.

:class:`CellularChannel` ties the substrate together: every 100 ms
(the LTE measurement period) it

1. reads the UE position from the trajectory,
2. computes per-cell RSRP (path loss + antenna pattern + shadowing),
3. advances the A3 handover engine — an executed handover silences
   the attached network paths for the sampled HET,
4. derives the uplink/downlink capacity from the serving cell's
   signal quality and the interference situation, applying the pre-
   and post-handover degradation windows responsible for the paper's
   latency spikes around handovers (Fig. 8/9), and the high-altitude
   interference events behind the RTT outliers above 100 m (Fig. 13).

The instantaneous capacity is exposed as plain ``rate_fn`` callables
for :class:`repro.net.path.NetworkPath`, and 1 Hz RSSI samples are
logged exactly as coarsely as the paper's LTE dongles reported them.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.cellular.cell import CellContention
from repro.cellular.handover import A3Config, HandoverEngine, HetSampler
from repro.cellular.layout import CellLayout
from repro.cellular.operators import OperatorProfile
from repro.cellular.propagation import (
    PropagationConfig,
    ShadowingProcess,
    antenna_gain_db_array,
    path_loss_db_array,
)
from repro.flight.trajectory import Position, WaypointTrajectory
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop
from repro.obs import NULL_RECORDER, NullRecorder
from repro.obs.detect import EwmaZScore
from repro.util.rng import RngStreams

#: UE measurement period (100 ms, standard LTE).
MEASUREMENT_PERIOD = 0.1
#: Effective usable uplink bandwidth (Hz) after control overhead.
EFFECTIVE_UL_BANDWIDTH = 7.5e6
#: Fraction of neighbouring-cell power contributing to interference.
INTERFERENCE_LOAD = 0.02
#: Uplink link budget (dB): UE tx power + BS receive gain - noise
#: floor. ``SNR_ul = UL_BUDGET_DB - path_loss``. Calibrated so the
#: urban area sustains ~30-45 Mbps and the rural area ~8-13 Mbps,
#: matching the paper's Fig. 6 operating points.
UL_BUDGET_DB = 106.0
#: Histogram buckets for the SINR metric (dB; spans outage to ideal).
SINR_BUCKETS = (-10.0, -5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 40.0)

#: Tick-count growth increment when a run outlives the precomputed
#: geometry horizon (60 simulated seconds per extension).
_GEO_CHUNK_TICKS = 600


@lru_cache(maxsize=8)
def _tick_positions(
    traj_key: tuple, anchor: float, start_tick: int, n_ticks: int
) -> np.ndarray:
    """UE positions at measurement ticks, cached per trajectory.

    Split out of :func:`_tick_geometry` because the trajectory is
    often shared across runs whose *layouts* differ: an air-platform
    seed sweep flies the fixed paper trajectory over per-seed
    perturbed layouts, so a batched sweep interpolates the positions
    once and only the per-layout loss/gain passes repeat.
    """
    wp_times, wp_points = traj_key
    trajectory = WaypointTrajectory(
        list(wp_times), [Position(x, y, alt) for x, y, alt in wp_points]
    )
    ticks = anchor + (start_tick + np.arange(n_ticks)) * MEASUREMENT_PERIOD
    return trajectory.positions_at(ticks)


@lru_cache(maxsize=8)
def _tick_geometry(
    traj_key: tuple,
    offset: tuple,
    cell_key: tuple,
    prop_key: tuple,
    anchor: float,
    start_tick: int,
    n_ticks: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic per-tick, per-cell radio geometry, vectorized.

    For measurement ticks ``anchor + (start_tick + k) * 0.1`` this
    precomputes everything about the tick that does not depend on a
    random draw: the UE position along the trajectory, the 3-D path
    loss to every cell and the down-tilted antenna gain toward the UE.
    Returns ``(rsrp_det, loss, altitudes)`` where ``rsrp_det[k, i]``
    is ``tx_power - loss + gain`` for cell ``i`` (shadowing and
    fading are added per tick at run time) and ``loss[k, i]`` is the
    3-D path loss that also feeds the uplink budget.

    Keyed on value tuples (waypoints, ground-plane offset, cell
    parameters, propagation config), so repeated runs over the same
    trajectory and layout — same-seed re-runs, parallel-vs-serial
    equality checks, cached campaign replays — reuse the arrays across
    channel instances. ``offset`` is the translated-trajectory shift
    (see :class:`~repro.flight.trajectory.TranslatedTrajectory`):
    every member of a fleet ring shares the base position table in
    :func:`_tick_positions` and only the loss/gain pass below runs per
    member.
    """
    config = PropagationConfig(*prop_key)
    pos = _tick_positions(traj_key, anchor, start_tick, n_ticks)
    if offset != (0.0, 0.0):
        # _tick_positions rows are lru-cached and shared; copy before
        # shifting, and shift only the ground plane (altitude stays).
        pos = pos.copy()
        pos[:, 0] += offset[0]
        pos[:, 1] += offset[1]
    cell_ids = np.array([c[0] for c in cell_key], dtype=float)
    cx = np.array([c[1] for c in cell_key])
    cy = np.array([c[2] for c in cell_key])
    ch = np.array([c[3] for c in cell_key])
    tx_power = np.array([c[4] for c in cell_key])
    downtilt = np.array([c[5] for c in cell_key])
    dx = pos[:, 0:1] - cx[None, :]
    dy = pos[:, 1:2] - cy[None, :]
    dz = pos[:, 2:3] - ch[None, :]
    horizontal = np.hypot(dx, dy)
    dist3d = np.sqrt(dx * dx + dy * dy + dz * dz)
    altitudes = pos[:, 2].copy()
    loss = path_loss_db_array(dist3d, pos[:, 2:3], config)
    gain = antenna_gain_db_array(horizontal, dz, cell_ids, downtilt, config)
    rsrp_det = tx_power[None, :] - loss + gain
    return rsrp_det, loss, altitudes


@dataclass(slots=True)
class CapacitySample:
    """One 100 ms snapshot of the channel state (for traces/analysis)."""

    time: float
    uplink_bps: float
    downlink_bps: float
    serving_cell: int
    rsrp_dbm: float
    sinr_db: float
    altitude: float
    in_handover: bool
    #: Uplink PRB share granted by the shared-cell scheduler
    #: (1.0 when the channel runs uncontended).
    uplink_share: float = 1.0


@dataclass(slots=True)
class RssiReport:
    """Coarse 1 Hz signal report, as the paper's LTE dongles logged."""

    time: float
    rssi_dbm: float
    cell_id: int


@dataclass
class ChannelConfig:
    """Behavioural knobs of the cellular channel."""

    propagation: PropagationConfig = field(default_factory=PropagationConfig)
    a3: A3Config = field(default_factory=A3Config)
    het: HetSampler = field(default_factory=HetSampler)
    #: Capacity multiplier while the A3 condition builds (pre-HO
    #: degradation window; the cause of the Fig. 9 "before" spikes).
    pre_handover_factor: float = 0.5
    #: Capacity multiplier right after handover completion.
    post_handover_factor: float = 0.8
    #: Duration of the post-handover ramp, seconds.
    post_handover_ramp: float = 0.3
    #: Fast-fading std-dev (dB) on the ground and in the air.
    fading_std_ground_db: float = 1.0
    fading_std_air_db: float = 2.0
    fading_corr_time: float = 1.0
    #: Altitude above which interference dropout events start (m).
    outlier_altitude: float = 100.0
    #: Dropout event rate at 20 m above the threshold (events/s).
    outlier_rate: float = 0.03
    outlier_capacity_factor: float = 0.1
    outlier_duration_range: tuple[float, float] = (0.3, 1.0)
    #: Make-before-break handover (the Dual Active Protocol Stack of
    #: 3GPP Rel-16 the paper discusses in Section 5): when True,
    #: handover execution keeps the old link alive, so no outage is
    #: injected and only the radio-quality degradation remains.
    make_before_break: bool = False
    #: UE RSRP measurement noise (dB) on the ground and in the air;
    #: aerial links fluctuate more (side lobes, higher noise floor).
    meas_noise_ground_db: float = 0.5
    meas_noise_air_db: float = 2.0
    #: Per-cell fast RSRP fading that only appears in the air (side-
    #: lobe multipath): std-dev at full altitude and correlation time.
    air_fastfade_std_db: float = 3.5
    air_fastfade_corr_time: float = 0.8


class CellularChannel:
    """Trajectory-driven LTE channel for one UE.

    Parameters
    ----------
    loop:
        Event loop (the channel ticks itself at 10 Hz).
    layout:
        Cell deployment to operate in.
    profile:
        Operator plan/deployment profile (capacity caps and scaling).
    trajectory:
        UE position source.
    streams:
        Random-stream factory for shadowing/fading/HET draws.
    horizon:
        Expected run duration in seconds; the deterministic per-tick
        geometry is precomputed for the whole horizon in one
        vectorized pass. Runs that outlive the horizon (or pass
        ``None``) extend the precomputation in 60 s chunks.
    contention:
        Optional shared-cell PRB scheduler
        (:class:`repro.cellular.cell.CellContention`). When given,
        this channel registers as UE ``ue_id``, reports its rates
        every tick, and its link rates are scaled by the granted PRB
        share; the handover engine additionally sees the scheduler's
        load-balancing offsets and admission blocks. ``None`` (the
        default) is the uncontended single-UE paper model.
    ue_id:
        This channel's session id within the shared scheduler.
    uplink_demand_bps / downlink_demand_bps:
        Offered-load hints sizing PRB requests (``None`` =
        full-buffer: request the whole budget).
    """

    def __init__(
        self,
        loop: EventLoop,
        layout: CellLayout,
        profile: OperatorProfile,
        trajectory: WaypointTrajectory,
        streams: RngStreams,
        *,
        config: ChannelConfig | None = None,
        horizon: float | None = None,
        obs: NullRecorder = NULL_RECORDER,
        contention: CellContention | None = None,
        ue_id: int = 0,
        uplink_demand_bps: float | None = None,
        downlink_demand_bps: float | None = None,
    ) -> None:
        self._loop = loop
        self.obs = obs
        self.layout = layout
        self.profile = profile
        self.trajectory = trajectory
        self.config = config if config is not None else ChannelConfig()
        self._shadowing = ShadowingProcess(
            len(layout), self.config.propagation, streams.derive("shadowing")
        )
        self.engine = HandoverEngine(
            len(layout),
            streams.derive("handover"),
            config=self.config.a3,
            het_sampler=self.config.het,
        )
        self.engine.obs = obs
        self._fading_rng = streams.derive("fading")
        self._meas_rng = streams.derive("measurement")
        self._fastfade_rng = streams.derive("fastfade")
        self._outlier_rng = streams.derive("outliers")
        self._fading_db = 0.0
        self._fastfade = np.zeros(len(layout))
        self._shadow = np.zeros(len(layout))
        self._horizon = horizon
        self._tick_index = 0
        self._anchor = 0.0
        self._det: np.ndarray | None = None
        self._loss3d: np.ndarray | None = None
        self._altitudes: np.ndarray | None = None
        self._geo_keys: tuple | None = None
        self._uplink_bps = 1e6
        self._downlink_bps = 10e6
        self._sinr_db = 0.0
        self._outlier_until: float | None = None
        self._post_ho_until: float | None = None
        self._paths: list[NetworkPath] = []
        #: Precomputed per-tick stochastic planes (a
        #: :class:`repro.cellular.batch.TickPlan`); ``None`` means the
        #: per-tick draw path.
        self._plan = None
        #: Shared :class:`repro.cellular.batch.FleetTickState` hoisting
        #: the L3 filter and interference powers across a fleet's
        #: members (``None`` outside fleet-fast runs), plus this
        #: member's row in its stacked planes.
        self._plan_state = None
        self._plan_row = 0
        #: Shared fleet tick driver (``None`` -> self re-arm).
        self._fleet_ticker = None
        self.samples: list[CapacitySample] = []
        self.rssi_log: list[RssiReport] = []
        self.cells_seen: set[int] = set()
        self._last_rssi_time = -1.0
        self._started = False
        self._contention = contention
        self._ue_id = ue_id
        #: Mirror of this UE's attached cell — ``attach`` is a no-op
        #: when the serving cell is unchanged, so the call is skipped
        #: entirely on the (overwhelmingly common) steady-state tick.
        self._attached_cell = -1
        self._share_ul = 1.0
        self._congestion_t0: float | None = None
        self._congestion_min = 1.0
        #: Simulated seconds this session spent below the congestion
        #: share threshold (accumulated even without a recorder).
        self.congestion_time = 0.0
        if contention is not None:
            contention.register(
                ue_id,
                demand_ul_bps=uplink_demand_bps,
                demand_dl_bps=downlink_demand_bps,
            )
        #: Streaming low-side detector over uplink capacity: marks
        #: capacity-dip episodes as trace spans for root-cause
        #: attribution (fed at the 10 Hz measurement rate).
        self.capacity_dip = EwmaZScore(
            obs, "channel.capacity_dip", direction=-1.0, warmup=50,
            min_delta=3e6,
        )

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_path(self, path: NetworkPath) -> None:
        """Register a path whose outage state this channel controls."""
        self._paths.append(path)

    def uplink_rate(self, now: float) -> float:
        """Instantaneous uplink capacity in bits/s (rate_fn for paths)."""
        return self._uplink_bps

    def downlink_rate(self, now: float) -> float:
        """Instantaneous downlink capacity in bits/s."""
        return self._downlink_bps

    def install_plan(
        self, plan, *, state=None, row: int = 0, ticker=None
    ) -> None:
        """Install precomputed per-tick stochastic planes.

        ``plan`` is a :class:`repro.cellular.batch.TickPlan` covering
        this channel's whole horizon, built with one block RNG refill
        per stream (see :func:`repro.cellular.batch.build_tick_plans`).
        A planned channel skips the per-tick shadowing/fast-fading/
        measurement/fading draws in :meth:`_tick` and reads the
        precomputed rows instead — bit-identical values, consumed from
        the same derived streams. Must be installed before
        :meth:`start`; ticking past the plan's horizon raises (the
        block refills already consumed the generators, so a scalar
        fallback could not be bit-identical).

        ``state``/``row`` additionally enroll the channel in a shared
        :class:`repro.cellular.batch.FleetTickState`: the L3 filter
        recursion and the interference powers are then advanced once
        per tick for the whole fleet and this member reads row ``row``
        (see :func:`repro.cellular.batch.install_fleet_plans`).
        ``ticker`` hands tick scheduling to a shared
        :class:`repro.cellular.batch.FleetTicker`: after the
        synchronous tick 0 this channel stops re-arming itself and
        the ticker drives every member with one loop event per tick.
        """
        if self._started:
            raise RuntimeError("cannot install a plan on a started channel")
        self._plan = plan
        self._plan_state = state
        self._plan_row = row
        self._fleet_ticker = ticker

    def start(self) -> None:
        """Begin the 10 Hz measurement/update loop."""
        if self._started:
            raise RuntimeError("channel already started")
        self._started = True
        self._anchor = self._loop.now
        self._tick()

    # ------------------------------------------------------------------
    # precomputed geometry
    # ------------------------------------------------------------------
    def _geometry_row(self, k: int) -> tuple[np.ndarray, np.ndarray, float]:
        """Deterministic ``(rsrp_det, loss, altitude)`` for tick ``k``."""
        if self._det is None or k >= len(self._det):
            self._extend_geometry(k)
        return self._det[k], self._loss3d[k], float(self._altitudes[k])

    def _extend_geometry(self, k: int) -> None:
        if self._geo_keys is None:
            traj_key, offset = self.trajectory.geometry_key()
            self._geo_keys = (
                traj_key,
                offset,
                tuple(
                    (c.cell_id, c.x, c.y, c.height, c.tx_power_dbm, c.downtilt_deg)
                    for c in self.layout.cells
                ),
                dataclasses.astuple(self.config.propagation),
            )
        start = 0 if self._det is None else len(self._det)
        if start == 0 and self._horizon is not None:
            # +2: one tick at t=0 plus a guard row at the boundary.
            n = max(int(math.ceil(self._horizon / MEASUREMENT_PERIOD)) + 2, k + 1)
        else:
            n = max(_GEO_CHUNK_TICKS, k + 1 - start)
        det, loss, alts = _tick_geometry(
            *self._geo_keys, self._anchor, start, n
        )
        if start == 0:
            self._det, self._loss3d, self._altitudes = det, loss, alts
        else:
            self._det = np.concatenate([self._det, det])
            self._loss3d = np.concatenate([self._loss3d, loss])
            self._altitudes = np.concatenate([self._altitudes, alts])

    # ------------------------------------------------------------------
    # per-tick update
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self._loop.now
        plan = self._plan
        state = None
        if plan is None:
            det_row, loss_row, altitude = self._geometry_row(self._tick_index)
            shadow = self._shadowing.sample(now, altitude)
            frac = min(altitude / 40.0, 1.0)
            noise_std = self.config.meas_noise_ground_db + frac * (
                self.config.meas_noise_air_db - self.config.meas_noise_ground_db
            )
            rho = math.exp(
                -MEASUREMENT_PERIOD / self.config.air_fastfade_corr_time
            )
            self._fastfade = rho * self._fastfade + math.sqrt(
                1 - rho * rho
            ) * self._fastfade_rng.normal(0.0, 1.0, size=self._fastfade.shape)
            rsrp = (
                det_row
                + shadow
                + self._meas_rng.normal(0.0, noise_std, size=det_row.shape)
                + frac * self.config.air_fastfade_std_db * self._fastfade
            )
        else:
            # Planned tick: every stochastic plane was precomputed by
            # build_tick_plans with one block refill per stream —
            # bit-identical values, no per-tick draws. The outlier
            # stream below stays live (its draws are altitude-gated and
            # cannot be counted ahead of time).
            k = self._tick_index
            if k >= len(plan.rsrp):
                raise RuntimeError(
                    "tick plan exhausted: channel ticked past its planned "
                    "horizon (the block refills already consumed the RNG "
                    "streams, so a scalar fallback cannot be bit-identical)"
                )
            altitude = plan.altitudes[k]
            loss_row = plan.loss[k]
            self._shadow = plan.shadow_db[k]
            self._fastfade = plan.fastfade[k]
            self._fading_db = plan.fading[k]
            state = self._plan_state
            if state is not None:
                # Fleet-fast: the L3 filter recursion and the
                # interference powers advance once per tick for every
                # member (one matrix op each); this member only reads
                # its rows below.
                state.advance(k)
            else:
                rsrp = plan.rsrp[k]
        if self._contention is None:
            event = self.engine.measure(now, rsrp, altitude=altitude)
        elif state is not None:
            ticker = self._fleet_ticker
            if (
                ticker is not None
                and ticker.hint_k == self._tick_index
                and ticker.hint_topo == self._contention._topo_version
            ):
                # The fleet-wide masked argmax from this tick's
                # precompute is still valid (nobody attached since);
                # skip the per-member ranking entirely.
                event = self.engine.measure_prefiltered(
                    now,
                    state.f_matrix[self._plan_row],
                    altitude=altitude,
                    hint=(
                        int(ticker.hint_best[self._plan_row]),
                        float(ticker.hint_margin[self._plan_row]),
                    ),
                )
            else:
                event = self.engine.measure_prefiltered(
                    now,
                    state.f_matrix[self._plan_row],
                    altitude=altitude,
                    offsets=self._contention.offsets(),
                    blocked=self._contention.blocked_cells(self._ue_id),
                )
        else:
            event = self.engine.measure(
                now,
                rsrp,
                altitude=altitude,
                offsets=self._contention.offsets(),
                blocked=self._contention.blocked_cells(self._ue_id),
            )
        if plan is None:
            self._shadow = shadow
        if event is not None:
            self._begin_outage(event.execution_time)
        self.cells_seen.add(self.engine.serving_cell)
        if plan is None:
            self._update_fading(altitude)
        self._update_outliers(now, altitude)
        if state is None:
            uplink, downlink, sinr = self._capacity(now, altitude, loss_row)
        else:
            # Neighbour interference from the hoisted power matrix: a
            # slice-based others-sum replacing np.delete + np.power per
            # member (value-identical; same pattern as run_lockstep,
            # guarded by the fleet fingerprint gates). The ticker
            # precomputes the sums fleet-wide; a member whose serving
            # cell moved this tick recomputes its own.
            sc = self.engine.serving_cell
            ticker = self._fleet_ticker
            if (
                ticker is not None
                and ticker.sums_k == self._tick_index
                and ticker.tick_serving[self._plan_row] == sc
            ):
                others_sum = float(ticker.others_mw[self._plan_row])
            else:
                prow = state.powered[self._plan_row]
                others = np.empty(len(prow) - 1)
                others[:sc] = prow[:sc]
                others[sc:] = prow[sc + 1:]
                others_sum = float(others.sum())
            serving_mw = 10.0 ** (float(self.engine._filtered[sc]) / 10.0)
            ratio = INTERFERENCE_LOAD * others_sum / max(serving_mw, 1e-30)
            uplink, downlink, sinr = self._capacity(
                now, altitude, loss_row, interference_ratio=ratio
            )
        if self._contention is not None:
            uplink, downlink = self._contend(now, uplink, downlink)
        self._uplink_bps = uplink
        self._downlink_bps = downlink
        self._sinr_db = sinr
        serving_rsrp = self.engine.serving_rsrp()
        if self.obs.enabled:
            self.obs.gauge("channel/uplink_bps", uplink)
            self.obs.gauge("channel/downlink_bps", downlink)
            self.obs.observe("channel/sinr_db", sinr, buckets=SINR_BUCKETS)
            self.capacity_dip.update(now, uplink)
        self.samples.append(
            CapacitySample(
                time=now,
                uplink_bps=uplink,
                downlink_bps=downlink,
                serving_cell=self.engine.serving_cell,
                rsrp_dbm=serving_rsrp,
                sinr_db=sinr,
                altitude=altitude,
                in_handover=self.engine.in_handover,
                uplink_share=self._share_ul,
            )
        )
        if now - self._last_rssi_time >= 1.0:
            self._last_rssi_time = now
            self.rssi_log.append(
                RssiReport(
                    time=now,
                    rssi_dbm=serving_rsrp,
                    cell_id=self.engine.serving_cell,
                )
            )
        self._tick_index += 1
        if self._fleet_ticker is not None:
            # The shared FleetTicker drives all subsequent ticks with
            # one loop event for the whole fleet; the last member's
            # synchronous tick 0 arms it.
            if self._tick_index == 1:
                self._fleet_ticker.notify_started(self._anchor)
            return
        # Anchored re-arm (cf. PeriodicTimer): tick k fires at exactly
        # anchor + k * period, so tick times line up with the
        # precomputed geometry rows and never accumulate float drift.
        self._loop.schedule_at(
            self._anchor + self._tick_index * MEASUREMENT_PERIOD, self._tick
        )

    def _begin_outage(self, het: float) -> None:
        if self.config.make_before_break:
            # DAPS: both protocol stacks stay active through the
            # handover; the execution gap does not interrupt the link.
            return
        for path in self._paths:
            path.set_up(False)
        self._post_ho_until = self._loop.now + het + self.config.post_handover_ramp

        def back_up() -> None:
            for path in self._paths:
                path.set_up(True)

        self._loop.call_later(het, back_up)

    # ------------------------------------------------------------------
    # shared-cell contention
    # ------------------------------------------------------------------
    def _contend(
        self, now: float, uplink: float, downlink: float
    ) -> tuple[float, float]:
        """Scale this tick's rates by the granted PRB share.

        A sole occupant is granted share 1.0 in both directions and
        the multiplications are skipped entirely, so an uncontended
        fleet member produces bit-identical rates to the single-
        session path.
        """
        contention = self._contention
        cell = self.engine.serving_cell
        if cell != self._attached_cell:
            contention.attach(self._ue_id, cell)
            self._attached_cell = cell
        contention.update_rates(self._ue_id, uplink, downlink)
        share_ul, share_dl = contention.shares(self._ue_id)
        if share_ul != 1.0:
            uplink = max(uplink * share_ul, 1e4)
        if share_dl != 1.0:
            downlink = max(downlink * share_dl, 1e4)
        self._share_ul = share_ul
        self._track_congestion(now, share_ul)
        return uplink, downlink

    def _track_congestion(self, now: float, share: float) -> None:
        if share < self._contention.config.congestion_share:
            self.congestion_time += MEASUREMENT_PERIOD
            if self._congestion_t0 is None:
                self._congestion_t0 = now
                self._congestion_min = share
            else:
                self._congestion_min = min(self._congestion_min, share)
        elif self._congestion_t0 is not None:
            self._close_congestion(now)

    def _close_congestion(self, end: float) -> None:
        if self.obs.enabled:
            self.obs.span_at(
                "cell.congestion",
                self._congestion_t0,
                end,
                cell=self.engine.serving_cell,
                min_share=float(self._congestion_min),
            )
            self.obs.count("channel/congestion_episodes")
        self._congestion_t0 = None
        self._congestion_min = 1.0

    def finish_congestion(self, now: float) -> None:
        """Close a still-open congestion span at session teardown."""
        if self._congestion_t0 is not None:
            self._close_congestion(now)

    def _update_fading(self, altitude: float) -> None:
        rho = math.exp(-MEASUREMENT_PERIOD / self.config.fading_corr_time)
        frac = min(altitude / 40.0, 1.0)
        std = self.config.fading_std_ground_db + frac * (
            self.config.fading_std_air_db - self.config.fading_std_ground_db
        )
        noise = float(self._fading_rng.normal(0.0, 1.0))
        self._fading_db = rho * self._fading_db + math.sqrt(1 - rho * rho) * (
            noise * std
        )

    def _update_outliers(self, now: float, altitude: float) -> None:
        if self._outlier_until is not None and now >= self._outlier_until:
            self._outlier_until = None
        if self._outlier_until is not None:
            return
        excess = altitude - self.config.outlier_altitude
        if excess <= 0:
            return
        rate = self.config.outlier_rate * min(excess / 20.0, 2.0)
        if self._outlier_rng.random() < rate * MEASUREMENT_PERIOD:
            low, high = self.config.outlier_duration_range
            self._outlier_until = now + float(self._outlier_rng.uniform(low, high))
            if self.obs.enabled:
                self.obs.span_at(
                    "channel.interference_outlier",
                    now,
                    self._outlier_until,
                    altitude=float(altitude),
                )
                self.obs.count("channel/interference_outliers")

    def _capacity(
        self,
        now: float,
        altitude: float,
        loss_row: np.ndarray,
        interference_ratio: float | None = None,
    ) -> tuple[float, float, float]:
        """Per-tick capacity from the serving cell's link quality.

        ``interference_ratio`` lets the batched executor pass a
        neighbour-interference ratio computed once for a whole seed
        batch (value-identical to the per-call computation below,
        gated by the fingerprint suite); scalar callers leave it
        ``None``.
        """
        filtered = self.engine.filtered_rsrp
        if filtered is None:
            return self._uplink_bps, self._downlink_bps, 0.0
        serving = self.engine.serving_cell
        # Uplink budget: the BS receive antenna is wide in the uplink,
        # so the uplink SNR follows the 3-D path loss to the serving
        # site (plus the serving cell's shadowing and fast fading) —
        # not the down-tilted downlink pattern that drives handovers.
        loss = float(loss_row[serving])
        # The serving cell's aerial fast fading enters the uplink SNR:
        # a handover is usually preceded by the serving cell fading
        # below its neighbours, so capacity dips *before* the A3 event
        # fires — the origin of the paper's pre-handover latency
        # spikes (Fig. 8/9).
        alt_frac = min(altitude / 40.0, 1.0)
        serving_fastfade = (
            alt_frac
            * self.config.air_fastfade_std_db
            * float(self._fastfade[serving])
        )
        snr_db = (
            UL_BUDGET_DB
            - loss
            + 0.5 * float(self._shadow[serving])
            + self._fading_db
            + serving_fastfade
        )
        # Interference rise: in the air many neighbour cells are
        # received nearly as strongly as the serving one, raising the
        # effective interference floor; on the ground the serving cell
        # dominates and the rise is negligible.
        if interference_ratio is None:
            serving_mw = 10.0 ** (float(filtered[serving]) / 10.0)
            others_mw = np.power(10.0, np.delete(filtered, serving) / 10.0)
            interference_ratio = INTERFERENCE_LOAD * float(np.sum(others_mw)) / max(
                serving_mw, 1e-30
            )
        sinr_lin = 10.0 ** (snr_db / 10.0) / (1.0 + interference_ratio)
        sinr_db_eff = 10.0 * math.log10(max(sinr_lin, 1e-6))
        uplink = (
            EFFECTIVE_UL_BANDWIDTH
            * math.log2(1.0 + sinr_lin)
            * self.profile.capacity_scale
        )
        uplink = min(uplink, self.profile.uplink_plan_cap)
        downlink = min(6.0 * uplink, self.profile.downlink_plan_cap)
        # Additional pre-handover degradation while the A3 timer runs:
        # the radio link that is about to hand over is already poor
        # (interference from the overtaking cell).
        pending_age = self.engine.a3_pending_age(now)
        if pending_age > 0.0:
            depth = min(pending_age / self.config.a3.time_to_trigger, 1.0)
            factor = 1.0 - (1.0 - self.config.pre_handover_factor) * depth
            uplink *= factor
            downlink *= factor
        if self._post_ho_until is not None:
            if now < self._post_ho_until:
                uplink *= self.config.post_handover_factor
                downlink *= self.config.post_handover_factor
            else:
                self._post_ho_until = None
        if self._outlier_until is not None:
            uplink *= self.config.outlier_capacity_factor
            downlink *= self.config.outlier_capacity_factor
        return max(uplink, 1e4), max(downlink, 1e4), sinr_db_eff
