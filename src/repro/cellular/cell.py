"""PRB/load-aware shared-cell capacity model for fleet simulation.

The paper's measurement UAV had every cell to itself; a deployed RPAV
fleet does not. This module makes cells *contended*: each cell in a
layout owns a physical-resource-block (PRB) budget, attached sessions
request PRBs sized by their SINR-derived spectral efficiency (a UE in
a weak radio position needs more PRBs for the same bitrate), and a
per-tick proportional scheduler splits the budget so per-session
capacity shrinks as cells fill up.

Three mechanisms (after the ai-ran-sim ``Cell`` exemplar):

* **PRB scheduling** — :func:`allocate_prbs` is a largest-remainder
  proportional allocator; the sum of allocated PRBs never exceeds the
  cell budget, and a sole occupant always receives the whole budget
  (share exactly 1.0), which keeps an N=1 fleet bit-identical to the
  single-session path.
* **Admission control** — a cell at ``max_sessions`` rejects new
  attachments: it is excluded from initial cell selection and from A3
  handover candidates of non-attached UEs.
* **Load balancing** — crowded cells advertise a negative
  cell-individual offset (CIO) that is added to the A3 margin, so
  loaded cells become less attractive targets *and* shed attached UEs
  toward emptier neighbours.

Everything here is deterministic and RNG-free: contention state is a
pure function of the attach/update call sequence, which the shared
event loop orders deterministically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class CellCapacityConfig:
    """Per-cell resource budget and load-management knobs.

    Attributes
    ----------
    num_prb_ul / num_prb_dl:
        PRB budget per scheduling tick in each direction (100 PRBs =
        one 20 MHz LTE carrier).
    max_sessions:
        Admission cap: attachments beyond this are rejected (the cell
        is hidden from cell selection and A3 candidates).
    lb_step_db / lb_max_db:
        Load-balancing cell-individual offset: each attached session
        beyond the first lowers the cell's advertised attractivity by
        ``lb_step_db`` dB, clamped at ``lb_max_db``.
    congestion_share:
        Uplink PRB share below which a session is considered congested
        (opens a ``cell.congestion`` trace span for attribution).
    """

    num_prb_ul: int = 100
    num_prb_dl: int = 100
    max_sessions: int = 8
    lb_step_db: float = 2.0
    lb_max_db: float = 6.0
    congestion_share: float = 0.75

    def __post_init__(self) -> None:
        if self.num_prb_ul < 1 or self.num_prb_dl < 1:
            raise ValueError("PRB budgets must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")


def allocate_prbs(requests: list[int], budget: int) -> list[int]:
    """Split ``budget`` PRBs proportionally to ``requests``.

    Largest-remainder (Hamilton) allocation: every requester receives
    ``budget * request / total`` rounded down, then the leftover PRBs
    go to the largest fractional remainders (ties broken by position,
    so the result is deterministic). The allocation always sums to
    exactly ``budget`` — spare capacity is redistributed under the
    full-buffer assumption — and a single requester receives the whole
    budget.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if not requests:
        return []
    if any(r < 0 for r in requests):
        raise ValueError("requests must be non-negative")
    total = sum(requests)
    if total <= 0:
        return [0] * len(requests)
    quotas = [budget * r / total for r in requests]
    allocation = [int(q) for q in quotas]
    leftover = budget - sum(allocation)
    remainders = sorted(
        range(len(requests)),
        key=lambda i: (-(quotas[i] - allocation[i]), i),
    )
    for i in remainders[:leftover]:
        allocation[i] += 1
    return allocation


class _UeState:
    """Latest radio state one attached session reported."""

    __slots__ = ("cell", "unc_ul_bps", "unc_dl_bps", "demand_ul_bps", "demand_dl_bps")

    def __init__(self) -> None:
        self.cell: int | None = None
        self.unc_ul_bps = 0.0
        self.unc_dl_bps = 0.0
        self.demand_ul_bps: float | None = None
        self.demand_dl_bps: float | None = None


class CellContention:
    """Shared-cell PRB scheduler, admission gate and CIO source.

    One instance is shared by every :class:`CellularChannel` of a
    fleet. Channels ``register`` once, ``attach`` whenever their
    serving cell changes, ``update_rates`` each measurement tick, and
    read back their PRB ``shares``; the handover engine consumes
    :meth:`offsets` (load-balancing CIO added to the A3 margin) and
    :meth:`blocked_cells` (admission control).
    """

    def __init__(
        self, num_cells: int, config: CellCapacityConfig | None = None
    ) -> None:
        if num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        self.config = config if config is not None else CellCapacityConfig()
        self.num_cells = num_cells
        self._ues: dict[int, _UeState] = {}
        self._members: dict[int, list[int]] = {}
        self._offsets = np.zeros(num_cells)
        #: Highest concurrent attachment count ever seen per cell.
        self.peak_attached: dict[int, int] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(
        self,
        ue_id: int,
        *,
        demand_ul_bps: float | None = None,
        demand_dl_bps: float | None = None,
    ) -> None:
        """Declare a session (before its first measurement tick).

        ``demand_*_bps`` size the session's PRB requests; ``None``
        means full-buffer (request the whole budget).
        """
        if ue_id in self._ues:
            raise ValueError(f"ue {ue_id} already registered")
        state = _UeState()
        state.demand_ul_bps = demand_ul_bps
        state.demand_dl_bps = demand_dl_bps
        self._ues[ue_id] = state

    def attach(self, ue_id: int, cell: int) -> None:
        """Move ``ue_id`` onto ``cell`` (no-op if already attached)."""
        state = self._ues[ue_id]
        if state.cell == cell:
            return
        if not 0 <= cell < self.num_cells:
            raise ValueError(f"cell {cell} out of range")
        if state.cell is not None:
            self._members[state.cell].remove(ue_id)
        state.cell = cell
        members = self._members.setdefault(cell, [])
        members.append(ue_id)
        members.sort()
        self.peak_attached[cell] = max(
            self.peak_attached.get(cell, 0), len(members)
        )
        self._refresh_offsets()

    def attached_count(self, cell: int) -> int:
        """Sessions currently attached to ``cell``."""
        return len(self._members.get(cell, ()))

    def _refresh_offsets(self) -> None:
        config = self.config
        self._offsets.fill(0.0)
        for cell, members in self._members.items():
            extra = len(members) - 1
            if extra > 0:
                self._offsets[cell] = -min(
                    config.lb_max_db, config.lb_step_db * extra
                )

    # ------------------------------------------------------------------
    # handover inputs
    # ------------------------------------------------------------------
    def offsets(self) -> np.ndarray:
        """Per-cell CIO vector (dB) added to A3 measurements.

        All zeros while no cell holds more than one session, so a
        single-session fleet evaluates the exact same A3 margins as
        the uncontended path.
        """
        return self._offsets

    def blocked_cells(self, ue_id: int) -> tuple[int, ...]:
        """Cells ``ue_id`` may not enter (admission control).

        A cell is blocked when it is at ``max_sessions`` and the UE is
        not one of them; the UE's own serving cell is never blocked.
        """
        cap = self.config.max_sessions
        blocked = tuple(
            cell
            for cell, members in self._members.items()
            if len(members) >= cap and ue_id not in members
        )
        return blocked

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def update_rates(
        self, ue_id: int, unc_ul_bps: float, unc_dl_bps: float
    ) -> None:
        """Report a session's uncontended (full-budget) link rates."""
        state = self._ues[ue_id]
        state.unc_ul_bps = unc_ul_bps
        state.unc_dl_bps = unc_dl_bps

    @staticmethod
    def _request(
        demand_bps: float | None, unc_bps: float, budget: int
    ) -> int:
        """PRBs needed to serve ``demand_bps`` at this UE's efficiency.

        The per-PRB rate is ``unc_bps / budget`` (the full-budget rate
        spread over the budget), so a UE with poor SINR requests more
        PRBs for the same demand. Full-buffer (``None``) or
        unsatisfiable demands request the whole budget.
        """
        if demand_bps is None or unc_bps <= 0.0:
            return budget
        needed = math.ceil(demand_bps * budget / unc_bps)
        return max(1, min(budget, needed))

    def shares(self, ue_id: int) -> tuple[float, float]:
        """Current (uplink, downlink) PRB share of ``ue_id`` in [0, 1].

        A sole occupant's share is exactly ``1.0`` in both directions
        (bit-identity with the uncontended path); co-attached sessions
        split each budget proportionally to their PRB requests.
        """
        state = self._ues[ue_id]
        cell = state.cell
        if cell is None:
            return 1.0, 1.0
        members = self._members[cell]
        if len(members) == 1:
            return 1.0, 1.0
        config = self.config
        index = members.index(ue_id)
        ul_requests = [
            self._request(
                self._ues[u].demand_ul_bps,
                self._ues[u].unc_ul_bps,
                config.num_prb_ul,
            )
            for u in members
        ]
        dl_requests = [
            self._request(
                self._ues[u].demand_dl_bps,
                self._ues[u].unc_dl_bps,
                config.num_prb_dl,
            )
            for u in members
        ]
        ul_alloc = allocate_prbs(ul_requests, config.num_prb_ul)
        dl_alloc = allocate_prbs(dl_requests, config.num_prb_dl)
        return (
            ul_alloc[index] / config.num_prb_ul,
            dl_alloc[index] / config.num_prb_dl,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def cell_load(self, cell: int) -> float:
        """Uplink PRB utilization of ``cell`` in [0, 1].

        Utilization counts PRBs that serve actual demand
        (``min(allocated, requested)``), not the full-buffer surplus,
        so a lone low-demand UE does not read as a saturated cell.
        """
        members = self._members.get(cell)
        if not members:
            return 0.0
        budget = self.config.num_prb_ul
        requests = [
            self._request(
                self._ues[u].demand_ul_bps, self._ues[u].unc_ul_bps, budget
            )
            for u in members
        ]
        allocation = allocate_prbs(requests, budget)
        used = sum(min(a, r) for a, r in zip(allocation, requests))
        return used / budget

    def loads(self) -> dict[int, float]:
        """Uplink PRB utilization of every occupied cell."""
        return {
            cell: self.cell_load(cell)
            for cell in sorted(self._members)
            if self._members[cell]
        }

    def occupancy(self) -> dict[int, int]:
        """Attached-session count of every occupied cell."""
        return {
            cell: len(members)
            for cell, members in sorted(self._members.items())
            if members
        }


def fleet_demand_bps(max_bitrate: float, static_bitrate: float) -> float:
    """Uplink PRB demand hint for one video session (bits/s).

    The offered load of a session is its encoder ceiling plus
    packetization/RTP overhead — the scheduler sizes PRB requests from
    this, not from the plan cap, so well-placed UEs leave headroom for
    cell mates instead of hoarding the whole budget.
    """
    return 1.25 * max(max_bitrate, static_bitrate)


def merge_occupancy(maps: Iterable[dict[int, int]]) -> dict[int, int]:
    """Merge per-fleet peak-occupancy maps by per-cell maximum."""
    merged: dict[int, int] = {}
    for occupancy in maps:
        for cell, count in occupancy.items():
            merged[cell] = max(merged.get(cell, 0), count)
    return merged
