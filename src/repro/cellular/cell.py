"""PRB/load-aware shared-cell capacity model for fleet simulation.

The paper's measurement UAV had every cell to itself; a deployed RPAV
fleet does not. This module makes cells *contended*: each cell in a
layout owns a physical-resource-block (PRB) budget, attached sessions
request PRBs sized by their SINR-derived spectral efficiency (a UE in
a weak radio position needs more PRBs for the same bitrate), and a
per-tick proportional scheduler splits the budget so per-session
capacity shrinks as cells fill up.

Three mechanisms (after the ai-ran-sim ``Cell`` exemplar):

* **PRB scheduling** — :func:`allocate_prbs` is a largest-remainder
  proportional allocator; the sum of allocated PRBs never exceeds the
  cell budget, and a sole occupant always receives the whole budget
  (share exactly 1.0), which keeps an N=1 fleet bit-identical to the
  single-session path.
* **Admission control** — a cell at ``max_sessions`` rejects new
  attachments: it is excluded from initial cell selection and from A3
  handover candidates of non-attached UEs.
* **Load balancing** — crowded cells advertise a negative
  cell-individual offset (CIO) that is added to the A3 margin, so
  loaded cells become less attractive targets *and* shed attached UEs
  toward emptier neighbours.

Everything here is deterministic and RNG-free: contention state is a
pure function of the attach/update call sequence, which the shared
event loop orders deterministically.

Two implementations share this contract. :class:`CellContention` is
the production struct-of-arrays scheduler: per-UE radio state lives in
flat numpy arrays, membership is an ``(n_ues, n_cells)`` boolean
plane, PRB requests (and their per-cell sums) are maintained
incrementally, and the hot per-tick share query answers from a
sort-free largest-remainder rank (:func:`_member_share`;
:func:`allocate_prbs_array` is the full array-wise allocator). :class:`ScalarCellContention` is the
original dict/loop implementation, kept verbatim as the bit-identity
reference: the fingerprint suite pins vectorized == scalar
packet-for-packet, and ``benchmarks/test_fleet_scale.py`` measures
the fast path against it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np


@dataclass(frozen=True)
class CellCapacityConfig:
    """Per-cell resource budget and load-management knobs.

    Attributes
    ----------
    num_prb_ul / num_prb_dl:
        PRB budget per scheduling tick in each direction (100 PRBs =
        one 20 MHz LTE carrier).
    max_sessions:
        Admission cap: attachments beyond this are rejected (the cell
        is hidden from cell selection and A3 candidates).
    lb_step_db / lb_max_db:
        Load-balancing cell-individual offset: each attached session
        beyond the first lowers the cell's advertised attractivity by
        ``lb_step_db`` dB, clamped at ``lb_max_db``.
    congestion_share:
        Uplink PRB share below which a session is considered congested
        (opens a ``cell.congestion`` trace span for attribution).
    """

    num_prb_ul: int = 100
    num_prb_dl: int = 100
    max_sessions: int = 8
    lb_step_db: float = 2.0
    lb_max_db: float = 6.0
    congestion_share: float = 0.75

    def __post_init__(self) -> None:
        if self.num_prb_ul < 1 or self.num_prb_dl < 1:
            raise ValueError("PRB budgets must be >= 1")
        if self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")


def allocate_prbs(requests: list[int], budget: int) -> list[int]:
    """Split ``budget`` PRBs proportionally to ``requests``.

    Largest-remainder (Hamilton) allocation: every requester receives
    ``budget * request / total`` rounded down, then the leftover PRBs
    go to the largest fractional remainders (ties broken by position,
    so the result is deterministic). The allocation always sums to
    exactly ``budget`` — spare capacity is redistributed under the
    full-buffer assumption — and a single requester receives the whole
    budget.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    if not requests:
        return []
    if any(r < 0 for r in requests):
        raise ValueError("requests must be non-negative")
    total = sum(requests)
    if total <= 0:
        return [0] * len(requests)
    quotas = [budget * r / total for r in requests]
    allocation = [int(q) for q in quotas]
    leftover = budget - sum(allocation)
    remainders = sorted(
        range(len(requests)),
        key=lambda i: (-(quotas[i] - allocation[i]), i),
    )
    for i in remainders[:leftover]:
        allocation[i] += 1
    return allocation


def allocate_prbs_array(requests: np.ndarray, budget: int) -> np.ndarray:
    """Array-wise :func:`allocate_prbs`, bit-identical to the scalar one.

    The quotient ``budget * request / total`` stays exactly equal to
    the scalar Python division for any realistic PRB budget (both
    routes convert int operands below 2**53 to float64 exactly and
    the division is correctly rounded), truncating ``astype`` matches
    ``int()`` for non-negative quotas, and the stable argsort on the
    negated remainders reproduces the scalar's ``(-remainder, index)``
    tie-break. ``tests/test_fleet.py`` asserts elementwise equality
    against the scalar allocator under large random request vectors.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    req = np.asarray(requests, dtype=np.int64)
    if req.size == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(req < 0):
        raise ValueError("requests must be non-negative")
    total = int(req.sum())
    if total <= 0:
        return np.zeros(req.size, dtype=np.int64)
    quotas = req * budget / total
    allocation = quotas.astype(np.int64)
    leftover = budget - int(allocation.sum())
    order = np.argsort(-(quotas - allocation), kind="stable")
    allocation[order[:leftover]] += 1
    return allocation


def _member_share(
    requests: np.ndarray, index: int, budget: int, total: int
) -> float:
    """One member's largest-remainder PRB share, without the full sort.

    Equals ``allocate_prbs(requests, budget)[index] / budget`` exactly:
    the member's floor quota plus one leftover PRB iff its position in
    the scalar allocator's ``(-remainder, index)`` ordering — the
    count of strictly larger remainders plus earlier equal ones —
    falls inside the leftover. Replacing the O(m log m) argsort with
    two O(m) comparisons is what keeps the hot :meth:`shares` path
    flat as cells fill toward large admission caps. ``total`` is the
    incrementally maintained request sum of the cell, identical to
    ``requests.sum()``.
    """
    if total <= 0:
        return 0.0
    quotas = requests * budget / total
    floors = quotas.astype(np.int64)
    mine = int(floors[index])
    leftover = budget - int(floors.sum())
    if leftover > 0:
        remainders = quotas - floors
        my_remainder = remainders[index]
        rank = int((remainders > my_remainder).sum()) + int(
            (remainders[:index] == my_remainder).sum()
        )
        if rank < leftover:
            mine += 1
    return mine / budget


def _request_prbs(demand_bps: float, unc_bps: float, budget: int) -> int:
    """PRBs needed to serve ``demand_bps`` at this UE's efficiency.

    The per-PRB rate is ``unc_bps / budget`` (the full-budget rate
    spread over the budget), so a UE with poor SINR requests more PRBs
    for the same demand. Full-buffer (NaN demand) or unsatisfiable
    demands request the whole budget.
    """
    if math.isnan(demand_bps) or unc_bps <= 0.0:
        return budget
    needed = math.ceil(demand_bps * budget / unc_bps)
    return max(1, min(budget, needed))


class CellContention:
    """Shared-cell PRB scheduler, admission gate and CIO source.

    One instance is shared by every :class:`CellularChannel` of a
    fleet. Channels ``register`` once, ``attach`` whenever their
    serving cell changes, ``update_rates`` each measurement tick, and
    read back their PRB ``shares``; the handover engine consumes
    :meth:`offsets` (load-balancing CIO added to the A3 margin) and
    :meth:`blocked_cells` (admission control).

    Struct-of-arrays layout (the fleet-scale fast path): every
    registered UE owns a slot in flat per-UE state (serving cell,
    uncontended rates, demands, current PRB requests), membership is
    an ``(n_ues, n_cells)`` boolean plane with per-cell occupancy
    counts, the load-balancing offsets refresh as one vectorized
    expression, and :meth:`shares` answers from a per-cell allocation
    cache keyed by a request version: the full largest-remainder
    allocation (:func:`allocate_prbs_array`) is recomputed only when
    a member's request or the membership actually changes, and every
    co-member's query in between is a dict lookup plus one indexed
    division. PRB requests and their per-cell sums are maintained
    *incrementally* — each
    :meth:`update_rates` rewrites only that UE's request (and bumps
    the cell's request version only when the request moved), which
    reproduces the scalar semantics exactly: when UE ``i`` asks for
    its share mid-tick, co-members that already ticked contribute
    fresh requests and the rest contribute last tick's. Admission
    blocks are cached per UE and invalidated by a topology version
    that bumps on every attach, so the per-tick blocked query costs a
    dict lookup between handovers. All outputs are value-identical to
    :class:`ScalarCellContention` (exact float equality, pinned by the
    fleet fingerprint gates); only the ``blocked_cells`` tuple order
    differs (ascending cell id vs. first-occupied order), which no
    consumer depends on — blocked cells are only masked to ``-inf``.
    """

    def __init__(
        self, num_cells: int, config: CellCapacityConfig | None = None
    ) -> None:
        if num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        self.config = config if config is not None else CellCapacityConfig()
        self.num_cells = num_cells
        self._slots: dict[int, int] = {}
        self._ids: list[int] = []
        cap = 16
        # Scalar per-UE state lives in plain Python lists (read and
        # written one UE at a time — numpy scalar indexing would cost
        # more than it saves); only the state the hot share query
        # *gathers across members* is a numpy array.
        self._cells: list[int] = []  #: serving cell per slot (-1 = none)
        self._unc_ul: list[float] = []
        self._unc_dl: list[float] = []
        self._dem_ul: list[float] = []  #: NaN = full-buffer
        self._dem_dl: list[float] = []
        #: Current PRB requests, ``(cap, 2)`` int64 (columns: UL, DL) —
        #: the share query fancy-indexes member rows in one gather —
        #: plus Python mirrors for the incremental bookkeeping.
        self._req = np.zeros((cap, 2), dtype=np.int64)
        self._req_ul_py: list[int] = []
        self._req_dl_py: list[int] = []
        self._budgets = np.array(
            [self.config.num_prb_ul, self.config.num_prb_dl], dtype=np.int64
        )
        self._member = np.zeros((cap, num_cells), dtype=bool)
        self._counts = np.zeros(num_cells, dtype=np.int64)
        self._counts_py: list[int] = [0] * num_cells
        #: Per-cell sums of the attached members' PRB requests,
        #: maintained incrementally (plain Python ints — the hot
        #: :meth:`shares` path reads them without a numpy reduction).
        self._sum_ul: list[int] = [0] * num_cells
        self._sum_dl: list[int] = [0] * num_cells
        self._offsets = np.zeros(num_cells)
        #: Cells currently at the admission cap (ascending cell ids).
        self._at_cap: np.ndarray = np.zeros(0, dtype=np.int64)
        #: Bumped on every attach; invalidates per-UE blocked caches
        #: and per-cell member rosters.
        self._topo_version = 0
        self._blocked_cache: dict[int, tuple[int, tuple[int, ...]]] = {}
        #: Per-cell ``(sorted ue ids, aligned slots)`` rosters, built
        #: lazily and dropped when the cell's membership changes.
        self._rosters: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        #: Per-UE ``(topo version, member slots, own index)`` resolved
        #: roster positions — between handovers the share query skips
        #: the roster lookup and binary search entirely.
        self._share_cache: dict[int, tuple[int, np.ndarray, int]] = {}
        #: Per-cell request-state version: bumped whenever a member's
        #: PRB request or the cell's membership changes. Shares are a
        #: pure function of the member requests, so the per-cell
        #: allocation cache below stays valid while the version holds.
        self._req_version: list[int] = [0] * num_cells
        #: Per-cell ``(request version, ul alloc, dl alloc)`` in roster
        #: order (plain lists — the hit path indexes one element) —
        #: one largest-remainder run serves every co-member's share
        #: query until a request actually changes.
        self._alloc_cache: dict[int, tuple[int, list[int], list[int]]] = {}
        #: Highest concurrent attachment count ever seen per cell.
        self.peak_attached: dict[int, int] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        cap = len(self._req) * 2
        grown_member = np.zeros((cap, self.num_cells), dtype=bool)
        grown_member[: len(self._member)] = self._member
        self._member = grown_member
        grown_req = np.zeros((cap, 2), dtype=np.int64)
        grown_req[: len(self._req)] = self._req
        self._req = grown_req

    def register(
        self,
        ue_id: int,
        *,
        demand_ul_bps: float | None = None,
        demand_dl_bps: float | None = None,
    ) -> None:
        """Declare a session (before its first measurement tick).

        ``demand_*_bps`` size the session's PRB requests; ``None``
        means full-buffer (request the whole budget).
        """
        if ue_id in self._slots:
            raise ValueError(f"ue {ue_id} already registered")
        slot = len(self._ids)
        if slot >= len(self._req):
            self._grow()
        self._slots[ue_id] = slot
        self._ids.append(ue_id)
        self._cells.append(-1)
        self._unc_ul.append(0.0)
        self._unc_dl.append(0.0)
        self._dem_ul.append(
            math.nan if demand_ul_bps is None else demand_ul_bps
        )
        self._dem_dl.append(
            math.nan if demand_dl_bps is None else demand_dl_bps
        )
        # Uncontended rate starts at 0 -> full-budget requests, exactly
        # like the scalar reference before the first update_rates.
        self._req[slot, 0] = self.config.num_prb_ul
        self._req[slot, 1] = self.config.num_prb_dl
        self._req_ul_py.append(self.config.num_prb_ul)
        self._req_dl_py.append(self.config.num_prb_dl)

    def attach(self, ue_id: int, cell: int) -> None:
        """Move ``ue_id`` onto ``cell`` (no-op if already attached)."""
        slot = self._slots[ue_id]
        old = self._cells[slot]
        if old == cell:
            return
        if not 0 <= cell < self.num_cells:
            raise ValueError(f"cell {cell} out of range")
        req_ul = self._req_ul_py[slot]
        req_dl = self._req_dl_py[slot]
        if old >= 0:
            self._member[slot, old] = False
            self._counts[old] -= 1
            self._counts_py[old] -= 1
            self._sum_ul[old] -= req_ul
            self._sum_dl[old] -= req_dl
            self._rosters.pop(old, None)
            self._req_version[old] += 1
        self._cells[slot] = cell
        self._member[slot, cell] = True
        self._counts[cell] += 1
        count = self._counts_py[cell] + 1
        self._counts_py[cell] = count
        self._sum_ul[cell] += req_ul
        self._sum_dl[cell] += req_dl
        self._rosters.pop(cell, None)
        self._req_version[cell] += 1
        if count > self.peak_attached.get(cell, 0):
            self.peak_attached[cell] = count
        self._refresh_offsets()
        self._at_cap = np.nonzero(
            self._counts >= self.config.max_sessions
        )[0].astype(np.int64)
        self._topo_version += 1

    def attached_count(self, cell: int) -> int:
        """Sessions currently attached to ``cell``."""
        if not 0 <= cell < self.num_cells:
            return 0
        return self._counts_py[cell]

    def _refresh_offsets(self) -> None:
        config = self.config
        extra = self._counts - 1
        self._offsets[:] = np.where(
            extra > 0,
            -np.minimum(config.lb_max_db, config.lb_step_db * extra),
            0.0,
        )

    def _roster(self, cell: int) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted ue ids, aligned slots)`` of one cell's members."""
        roster = self._rosters.get(cell)
        if roster is None:
            slots = np.nonzero(self._member[:, cell])[0]
            ids = np.fromiter(
                (self._ids[s] for s in slots),
                dtype=np.int64,
                count=len(slots),
            )
            order = np.argsort(ids, kind="stable")
            roster = (ids[order], slots[order])
            self._rosters[cell] = roster
        return roster

    # ------------------------------------------------------------------
    # handover inputs
    # ------------------------------------------------------------------
    def offsets(self) -> np.ndarray:
        """Per-cell CIO vector (dB) added to A3 measurements.

        All zeros while no cell holds more than one session, so a
        single-session fleet evaluates the exact same A3 margins as
        the uncontended path.
        """
        return self._offsets

    def blocked_cells(self, ue_id: int) -> tuple[int, ...]:
        """Cells ``ue_id`` may not enter (admission control).

        A cell is blocked when it is at ``max_sessions`` and the UE is
        not one of them; the UE's own serving cell is never blocked.
        The result is constant between attaches, so it is cached per
        UE against the topology version.
        """
        if self._at_cap.size == 0:
            return ()
        slot = self._slots.get(ue_id)
        if slot is None:
            return tuple(int(c) for c in self._at_cap)
        cached = self._blocked_cache.get(slot)
        if cached is not None and cached[0] == self._topo_version:
            return cached[1]
        own = self._cells[slot]
        blocked = tuple(int(c) for c in self._at_cap if c != own)
        self._blocked_cache[slot] = (self._topo_version, blocked)
        return blocked

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def update_rates(
        self, ue_id: int, unc_ul_bps: float, unc_dl_bps: float
    ) -> None:
        """Report a session's uncontended (full-budget) link rates.

        Also refreshes this UE's PRB requests in place — the request
        planes are therefore always current *for the UEs that already
        ticked*, which is exactly the mid-tick state the scalar
        reference rebuilds from scratch on every ``shares`` query.
        """
        slot = self._slots[ue_id]
        self._unc_ul[slot] = unc_ul_bps
        self._unc_dl[slot] = unc_dl_bps
        config = self.config
        req_ul = _request_prbs(
            self._dem_ul[slot], unc_ul_bps, config.num_prb_ul
        )
        req_dl = _request_prbs(
            self._dem_dl[slot], unc_dl_bps, config.num_prb_dl
        )
        old_ul = self._req_ul_py[slot]
        old_dl = self._req_dl_py[slot]
        if req_ul == old_ul and req_dl == old_dl:
            return
        cell = self._cells[slot]
        if cell >= 0:
            self._sum_ul[cell] += req_ul - old_ul
            self._sum_dl[cell] += req_dl - old_dl
            self._req_version[cell] += 1
        self._req_ul_py[slot] = req_ul
        self._req_dl_py[slot] = req_dl
        self._req[slot, 0] = req_ul
        self._req[slot, 1] = req_dl

    def shares(self, ue_id: int) -> tuple[float, float]:
        """Current (uplink, downlink) PRB share of ``ue_id`` in [0, 1].

        A sole occupant's share is exactly ``1.0`` in both directions
        (bit-identity with the uncontended path); co-attached sessions
        split each budget proportionally to their PRB requests.
        """
        slot = self._slots[ue_id]
        cell = self._cells[slot]
        if cell < 0:
            return 1.0, 1.0
        if self._counts_py[cell] == 1:
            return 1.0, 1.0
        cached = self._share_cache.get(slot)
        if cached is None or cached[0] != self._topo_version:
            ids, member_slots = self._roster(cell)
            cached = (
                self._topo_version,
                member_slots,
                int(np.searchsorted(ids, ue_id)),
            )
            self._share_cache[slot] = cached
        version = self._req_version[cell]
        alloc = self._alloc_cache.get(cell)
        config = self.config
        if alloc is None or alloc[0] != version:
            requests = self._req[cached[1]]
            alloc = (
                version,
                allocate_prbs_array(
                    requests[:, 0], config.num_prb_ul
                ).tolist(),
                allocate_prbs_array(
                    requests[:, 1], config.num_prb_dl
                ).tolist(),
            )
            self._alloc_cache[cell] = alloc
        index = cached[2]
        return (
            alloc[1][index] / config.num_prb_ul,
            alloc[2][index] / config.num_prb_dl,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def cell_load(self, cell: int) -> float:
        """Uplink PRB utilization of ``cell`` in [0, 1].

        Utilization counts PRBs that serve actual demand
        (``min(allocated, requested)``), not the full-buffer surplus,
        so a lone low-demand UE does not read as a saturated cell.
        """
        if not 0 <= cell < self.num_cells or self._counts_py[cell] == 0:
            return 0.0
        budget = self.config.num_prb_ul
        _, slots = self._roster(cell)
        requests = self._req[slots, 0]
        allocation = allocate_prbs_array(requests, budget)
        used = int(np.minimum(allocation, requests).sum())
        return used / budget

    def loads(self) -> dict[int, float]:
        """Uplink PRB utilization of every occupied cell."""
        return {
            int(cell): self.cell_load(int(cell))
            for cell in np.nonzero(self._counts)[0]
        }

    def occupancy(self) -> dict[int, int]:
        """Attached-session count of every occupied cell."""
        return {
            int(cell): int(self._counts[cell])
            for cell in np.nonzero(self._counts)[0]
        }


class _UeState:
    """Latest radio state one attached session reported."""

    __slots__ = ("cell", "unc_ul_bps", "unc_dl_bps", "demand_ul_bps", "demand_dl_bps")

    def __init__(self) -> None:
        self.cell: int | None = None
        self.unc_ul_bps = 0.0
        self.unc_dl_bps = 0.0
        self.demand_ul_bps: float | None = None
        self.demand_dl_bps: float | None = None


class ScalarCellContention:
    """Reference dict/loop implementation of :class:`CellContention`.

    The original (pre-vectorization) scheduler, kept verbatim: the
    fleet fingerprint gates run every pinned fleet config against both
    implementations and assert exact packet-log equality, and the
    N=64 scale bench measures the fast path's speedup against a fleet
    built on this class. Do not optimize it.
    """

    def __init__(
        self, num_cells: int, config: CellCapacityConfig | None = None
    ) -> None:
        if num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        self.config = config if config is not None else CellCapacityConfig()
        self.num_cells = num_cells
        self._ues: dict[int, _UeState] = {}
        self._members: dict[int, list[int]] = {}
        self._offsets = np.zeros(num_cells)
        #: Highest concurrent attachment count ever seen per cell.
        self.peak_attached: dict[int, int] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(
        self,
        ue_id: int,
        *,
        demand_ul_bps: float | None = None,
        demand_dl_bps: float | None = None,
    ) -> None:
        """Declare a session (before its first measurement tick)."""
        if ue_id in self._ues:
            raise ValueError(f"ue {ue_id} already registered")
        state = _UeState()
        state.demand_ul_bps = demand_ul_bps
        state.demand_dl_bps = demand_dl_bps
        self._ues[ue_id] = state

    def attach(self, ue_id: int, cell: int) -> None:
        """Move ``ue_id`` onto ``cell`` (no-op if already attached)."""
        state = self._ues[ue_id]
        if state.cell == cell:
            return
        if not 0 <= cell < self.num_cells:
            raise ValueError(f"cell {cell} out of range")
        if state.cell is not None:
            self._members[state.cell].remove(ue_id)
        state.cell = cell
        members = self._members.setdefault(cell, [])
        members.append(ue_id)
        members.sort()
        self.peak_attached[cell] = max(
            self.peak_attached.get(cell, 0), len(members)
        )
        self._refresh_offsets()

    def attached_count(self, cell: int) -> int:
        """Sessions currently attached to ``cell``."""
        return len(self._members.get(cell, ()))

    def _refresh_offsets(self) -> None:
        config = self.config
        self._offsets.fill(0.0)
        for cell, members in self._members.items():
            extra = len(members) - 1
            if extra > 0:
                self._offsets[cell] = -min(
                    config.lb_max_db, config.lb_step_db * extra
                )

    # ------------------------------------------------------------------
    # handover inputs
    # ------------------------------------------------------------------
    def offsets(self) -> np.ndarray:
        """Per-cell CIO vector (dB) added to A3 measurements."""
        return self._offsets

    def blocked_cells(self, ue_id: int) -> tuple[int, ...]:
        """Cells ``ue_id`` may not enter (admission control)."""
        cap = self.config.max_sessions
        blocked = tuple(
            cell
            for cell, members in self._members.items()
            if len(members) >= cap and ue_id not in members
        )
        return blocked

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def update_rates(
        self, ue_id: int, unc_ul_bps: float, unc_dl_bps: float
    ) -> None:
        """Report a session's uncontended (full-budget) link rates."""
        state = self._ues[ue_id]
        state.unc_ul_bps = unc_ul_bps
        state.unc_dl_bps = unc_dl_bps

    @staticmethod
    def _request(
        demand_bps: float | None, unc_bps: float, budget: int
    ) -> int:
        """PRBs needed to serve ``demand_bps`` at this UE's efficiency."""
        if demand_bps is None or unc_bps <= 0.0:
            return budget
        needed = math.ceil(demand_bps * budget / unc_bps)
        return max(1, min(budget, needed))

    def shares(self, ue_id: int) -> tuple[float, float]:
        """Current (uplink, downlink) PRB share of ``ue_id`` in [0, 1]."""
        state = self._ues[ue_id]
        cell = state.cell
        if cell is None:
            return 1.0, 1.0
        members = self._members[cell]
        if len(members) == 1:
            return 1.0, 1.0
        config = self.config
        index = members.index(ue_id)
        ul_requests = [
            self._request(
                self._ues[u].demand_ul_bps,
                self._ues[u].unc_ul_bps,
                config.num_prb_ul,
            )
            for u in members
        ]
        dl_requests = [
            self._request(
                self._ues[u].demand_dl_bps,
                self._ues[u].unc_dl_bps,
                config.num_prb_dl,
            )
            for u in members
        ]
        ul_alloc = allocate_prbs(ul_requests, config.num_prb_ul)
        dl_alloc = allocate_prbs(dl_requests, config.num_prb_dl)
        return (
            ul_alloc[index] / config.num_prb_ul,
            dl_alloc[index] / config.num_prb_dl,
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def cell_load(self, cell: int) -> float:
        """Uplink PRB utilization of ``cell`` in [0, 1]."""
        members = self._members.get(cell)
        if not members:
            return 0.0
        budget = self.config.num_prb_ul
        requests = [
            self._request(
                self._ues[u].demand_ul_bps, self._ues[u].unc_ul_bps, budget
            )
            for u in members
        ]
        allocation = allocate_prbs(requests, budget)
        used = sum(min(a, r) for a, r in zip(allocation, requests))
        return used / budget

    def loads(self) -> dict[int, float]:
        """Uplink PRB utilization of every occupied cell."""
        return {
            cell: self.cell_load(cell)
            for cell in sorted(self._members)
            if self._members[cell]
        }

    def occupancy(self) -> dict[int, int]:
        """Attached-session count of every occupied cell."""
        return {
            cell: len(members)
            for cell, members in sorted(self._members.items())
            if members
        }


def fleet_demand_bps(max_bitrate: float, static_bitrate: float) -> float:
    """Uplink PRB demand hint for one video session (bits/s).

    The offered load of a session is its encoder ceiling plus
    packetization/RTP overhead — the scheduler sizes PRB requests from
    this, not from the plan cap, so well-placed UEs leave headroom for
    cell mates instead of hoarding the whole budget.
    """
    return 1.25 * max(max_bitrate, static_bitrate)


def normalize_cell_map(mapping: dict) -> dict[int, int]:
    """Coerce a cell-id-keyed count map back to ``int`` keys/values.

    A :class:`~repro.core.fleet.FleetResult`'s occupancy/peak maps
    survive the pickle result cache unchanged, but any JSON round-trip
    (report exports, history artifacts, hand-rolled caches) stringifies
    the int cell ids — ``{"3": 2}`` instead of ``{3: 2}`` — which then
    silently double-counts cells in :func:`merge_occupancy` merges.
    Normalizing on load makes the maps shape-stable either way.
    """
    return {int(cell): int(count) for cell, count in mapping.items()}


def merge_occupancy(maps: Iterable[dict]) -> dict[int, int]:
    """Merge per-fleet peak-occupancy maps by per-cell maximum.

    Keys are coerced through :func:`normalize_cell_map`, so maps that
    went through a JSON round-trip (string cell ids) merge correctly
    with native ones.
    """
    merged: dict[int, int] = {}
    for occupancy in maps:
        for cell, count in occupancy.items():
            cell = int(cell)
            merged[cell] = max(merged.get(cell, 0), int(count))
    return merged
