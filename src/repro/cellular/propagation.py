"""Radio propagation: path loss, BS antenna pattern, shadowing.

The model captures the three effects the paper identifies as the root
causes of aerial connectivity churn (Section 4.1):

* **altitude-dependent path-loss exponent** — on the ground, clutter
  gives near-NLoS propagation (exponent ~3.5 urban); in the air the
  channel approaches free space (~2.1), so *many* distant cells are
  received at similar strength;
* **down-tilted BS antennas** — ground users sit in the main lobe;
  an aerial UE above the horizon falls into the side lobes, losing
  the main-lobe gain and picking up angle-dependent ripple ("the UAV
  can enter the side-lobe coverage area of the antennas, which can
  contribute to the link fluctuations");
* **shadowing** — temporally correlated (Ornstein-Uhlenbeck) per-cell
  fading, stronger on the ground (buildings) than in the air.

Together these make the strongest-cell margin small and noisy in the
air — which is exactly what drives the order-of-magnitude handover
increase the paper measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cellular.layout import Cell
from repro.flight.trajectory import Position


@dataclass
class PropagationConfig:
    """Tunable propagation parameters.

    Use :meth:`urban` / :meth:`rural` for presets calibrated against
    the paper's capacity observations (urban uplink up to ~40 Mbps,
    rural ~8-12 Mbps with fluctuations).
    """

    ref_loss_db: float = 38.0  # path loss at 1 m
    break_distance: float = 100.0  # dual-slope breakpoint, metres
    exponent_ground: float = 3.5
    exponent_air: float = 2.1
    air_transition_alt: float = 40.0  # exponent reaches air value here
    antenna_gain_max_db: float = 15.0
    vertical_beamwidth_deg: float = 10.0
    sidelobe_floor_db: float = -18.0  # relative to main-lobe peak
    sidelobe_ripple_db: float = 4.0
    shadow_std_ground_db: float = 6.0
    shadow_std_air_db: float = 2.5
    shadow_corr_time: float = 12.0  # OU time constant, seconds

    @classmethod
    def urban(cls) -> "PropagationConfig":
        """Urban macro: strong clutter on the ground, short breakpoint."""
        return cls(shadow_std_ground_db=3.0)

    @classmethod
    def rural(cls) -> "PropagationConfig":
        """Rural: open space — milder ground exponent, long breakpoint."""
        return cls(
            break_distance=300.0,
            exponent_ground=2.2,
            shadow_std_ground_db=2.5,
        )

    def exponent(self, altitude: float) -> float:
        """Beyond-breakpoint path-loss exponent at ``altitude`` metres."""
        frac = min(max(altitude / self.air_transition_alt, 0.0), 1.0)
        return self.exponent_ground + frac * (
            self.exponent_air - self.exponent_ground
        )


def path_loss_db(distance: float, altitude: float, config: PropagationConfig) -> float:
    """Dual-slope log-distance path loss for a 3-D link.

    Free-space-like (exponent 2) up to the breakpoint, then the
    altitude-dependent exponent beyond it.
    """
    d = max(distance, 1.0)
    near = min(d, config.break_distance)
    loss = config.ref_loss_db + 20.0 * math.log10(near)
    if d > config.break_distance:
        loss += (
            10.0
            * config.exponent(altitude)
            * math.log10(d / config.break_distance)
        )
    return loss


def path_loss_db_array(
    distances: np.ndarray, altitudes: np.ndarray, config: PropagationConfig
) -> np.ndarray:
    """Vectorized :func:`path_loss_db` over a ``(ticks, cells)`` grid.

    ``distances`` has shape ``(T, C)``; ``altitudes`` has shape
    ``(T, 1)`` (one UE altitude per tick, broadcast across cells).
    Mirrors the scalar math exactly, including the dual-slope
    breakpoint and the altitude-dependent exponent.
    """
    d = np.maximum(distances, 1.0)
    near = np.minimum(d, config.break_distance)
    loss = config.ref_loss_db + 20.0 * np.log10(near)
    frac = np.clip(altitudes / config.air_transition_alt, 0.0, 1.0)
    exponent = config.exponent_ground + frac * (
        config.exponent_air - config.exponent_ground
    )
    beyond = d > config.break_distance
    loss += np.where(
        beyond,
        10.0 * exponent * np.log10(np.maximum(d, config.break_distance) / config.break_distance),
        0.0,
    )
    return loss


def antenna_gain_db_array(
    horizontal: np.ndarray,
    dz: np.ndarray,
    cell_ids: np.ndarray,
    downtilts: np.ndarray,
    config: PropagationConfig,
) -> np.ndarray:
    """Vectorized :func:`antenna_gain_db` over a ``(ticks, cells)`` grid.

    ``horizontal`` and ``dz`` have shape ``(T, C)``; ``cell_ids`` and
    ``downtilts`` have shape ``(C,)``. Reproduces the 3GPP parabolic
    main lobe, the side-lobe floor and the deterministic above-horizon
    ripple of the scalar version.
    """
    elevation = np.degrees(np.arctan2(dz, np.maximum(horizontal, 1.0)))
    off_boresight = elevation + downtilts
    attenuation = 12.0 * (off_boresight / config.vertical_beamwidth_deg) ** 2
    attenuation = np.minimum(attenuation, -config.sidelobe_floor_db)
    gain = config.antenna_gain_max_db - attenuation
    phase = np.sin(elevation * 1.7 + cell_ids * 2.39) + np.sin(
        elevation * 0.61 + cell_ids
    )
    return gain + np.where(
        elevation > 0.0, 0.5 * config.sidelobe_ripple_db * phase, 0.0
    )


def antenna_gain_db(
    ue: Position, cell: Cell, config: PropagationConfig
) -> float:
    """BS antenna gain toward the UE, including side-lobe ripple.

    The vertical pattern is the standard 3GPP parabolic main lobe
    around the (down-tilted) boresight with a side-lobe floor. Above
    the horizon the UE sees deterministic, angle-dependent ripple
    standing in for the real side-lobe structure.
    """
    horizontal = ue.horizontal_distance_to(cell.position())
    dz = ue.altitude - cell.height
    elevation = math.degrees(math.atan2(dz, max(horizontal, 1.0)))
    # Boresight points *down* by the downtilt angle.
    off_boresight = elevation + cell.downtilt_deg
    attenuation = 12.0 * (off_boresight / config.vertical_beamwidth_deg) ** 2
    attenuation = min(attenuation, -config.sidelobe_floor_db)
    gain = config.antenna_gain_max_db - attenuation
    if elevation > 0.0:
        # Side-lobe ripple: deterministic pseudo-random function of the
        # elevation angle and cell id, so movement re-samples it.
        phase = math.sin(elevation * 1.7 + cell.cell_id * 2.39) + math.sin(
            elevation * 0.61 + cell.cell_id
        )
        gain += 0.5 * config.sidelobe_ripple_db * phase
    return gain


class ShadowingProcess:
    """Per-cell temporally correlated (OU) shadow fading in dB."""

    def __init__(
        self,
        num_cells: int,
        config: PropagationConfig,
        rng: np.random.Generator,
    ) -> None:
        if num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        self._config = config
        self._rng = rng
        self._values = rng.normal(0.0, 1.0, size=num_cells)
        self._last_time: float | None = None

    def sample(self, now: float, altitude: float) -> np.ndarray:
        """Advance the processes to ``now`` and return dB offsets.

        The returned array has one entry per cell, scaled by the
        altitude-dependent shadowing strength.
        """
        if self._last_time is None:
            self._last_time = now
        dt = max(now - self._last_time, 0.0)
        self._last_time = now
        if dt > 0:
            rho = math.exp(-dt / self._config.shadow_corr_time)
            noise = self._rng.normal(0.0, 1.0, size=self._values.shape)
            self._values = rho * self._values + math.sqrt(1 - rho * rho) * noise
        frac = min(max(altitude / self._config.air_transition_alt, 0.0), 1.0)
        std = self._config.shadow_std_ground_db + frac * (
            self._config.shadow_std_air_db - self._config.shadow_std_ground_db
        )
        return self._values * std


def rsrp_dbm(
    ue: Position,
    cell: Cell,
    shadow_db: float,
    config: PropagationConfig,
) -> float:
    """Reference signal received power from ``cell`` at the UE."""
    distance = ue.distance_to(cell.position())
    loss = path_loss_db(distance, ue.altitude, config)
    gain = antenna_gain_db(ue, cell, config)
    return cell.tx_power_dbm - loss + gain + shadow_db
