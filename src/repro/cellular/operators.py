"""Mobile network operator profiles (P1 and P2).

The paper uses two MNOs: P1 (default, 300 Mbps down / 50 Mbps up plan
cap) and P2 (competitor, 500/50 plan cap). Their urban deployments are
similarly dense, but in the rural area P1's site density is
significantly lower than P2's; consequently P2 shows higher rural
throughput *and* more frequent handovers (Fig. 10, Appendix A.3).

An :class:`OperatorProfile` bundles the deployment density, capacity
scaling and plan caps for one operator in one environment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellular.layout import CellLayout, grid_layout


@dataclass(frozen=True)
class OperatorProfile:
    """Deployment and plan parameters for one MNO in one environment.

    Attributes
    ----------
    name / environment:
        Operator label ("P1"/"P2") and area ("urban"/"rural").
    sites / area_radius / site_height:
        Deployment geometry fed to the layout builder.
    uplink_plan_cap:
        Subscription uplink cap in bits/s (both operators: 50 Mbps).
    capacity_scale:
        Multiplier on the SINR-derived capacity — models spectrum
        holdings / carrier aggregation differences between operators.
    """

    name: str
    environment: str
    sites: int
    area_radius: float
    site_height: float
    uplink_plan_cap: float = 40e6
    downlink_plan_cap: float = 300e6
    capacity_scale: float = 1.0
    exclusion_radius: float = 0.0

    def build_layout(self, rng: np.random.Generator) -> CellLayout:
        """Instantiate this profile's cell layout."""
        return grid_layout(
            num_sites=self.sites,
            area_radius=self.area_radius,
            rng=rng,
            sectors_per_site=2,
            site_height=self.site_height,
            name=f"{self.environment}-{self.name}",
            exclusion_radius=self.exclusion_radius,
        )


#: Default operator (P1) in the urban zone: dense deployment.
P1_URBAN = OperatorProfile(
    name="P1",
    environment="urban",
    sites=16,
    area_radius=800.0,
    site_height=28.0,
    capacity_scale=1.25,
    exclusion_radius=150.0,
)

#: Default operator (P1) in the rural zone: sparse deployment —
#: kilometre-scale inter-site distance limits uplink SINR.
P1_RURAL = OperatorProfile(
    name="P1",
    environment="rural",
    sites=7,
    area_radius=4_000.0,
    site_height=35.0,
    capacity_scale=1.3,
    exclusion_radius=1_500.0,
)

#: Competitor (P2) urban: similar density to P1.
P2_URBAN = OperatorProfile(
    name="P2",
    environment="urban",
    sites=16,
    area_radius=800.0,
    site_height=28.0,
    uplink_plan_cap=45e6,
    downlink_plan_cap=500e6,
    capacity_scale=1.35,
    exclusion_radius=150.0,
)

#: Competitor (P2) rural: denser sites than P1 -> higher capacity but
#: more handovers (Fig. 10).
P2_RURAL = OperatorProfile(
    name="P2",
    environment="rural",
    sites=16,
    area_radius=4_000.0,
    site_height=35.0,
    uplink_plan_cap=45e6,
    downlink_plan_cap=500e6,
    capacity_scale=2.2,
    exclusion_radius=1_200.0,
)

_PROFILES: dict[tuple[str, str], OperatorProfile] = {
    ("P1", "urban"): P1_URBAN,
    ("P1", "rural"): P1_RURAL,
    ("P2", "urban"): P2_URBAN,
    ("P2", "rural"): P2_RURAL,
}


def get_profile(operator: str, environment: str) -> OperatorProfile:
    """Look up the profile for ``operator`` in ``environment``."""
    key = (operator.upper(), environment.lower())
    if key not in _PROFILES:
        raise KeyError(
            f"unknown operator/environment {key}; "
            f"choices: {sorted(_PROFILES)}"
        )
    return _PROFILES[key]
