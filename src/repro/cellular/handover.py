"""Handover decision (A3 event) and execution-time model.

LTE mobility: the UE reports when a neighbour cell's filtered RSRP
exceeds the serving cell's by a *hysteresis* margin for the duration
of *time-to-trigger* (the A3 event); the network then executes the
handover. The execution gap — from RRCConnectionReconfiguration to
RRCConnectionReconfigurationComplete — is the paper's Handover
Execution Time (HET): mostly below the 3GPP 49.5 ms success
threshold, but with heavy outliers in the air ranging up to 4 s
(Fig. 4b), which the paper attributes to RSSI fluctuations and the
elevated noise floor aloft.

:class:`HetSampler` draws from a lognormal body plus an outlier
mixture whose weight is higher in the air; :class:`HandoverEngine`
runs the A3 state machine over per-cell RSRP vectors and emits
:class:`HandoverEvent` records equivalent to the paper's parsed RRC
logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import NULL_RECORDER
from repro.util.units import to_ms

#: 3GPP success threshold for handover execution (TR 36.881).
HET_SUCCESS_THRESHOLD = 0.0495


@dataclass
class HandoverEvent:
    """One executed handover (equivalent of a parsed RRC log entry)."""

    time: float
    source_cell: int
    target_cell: int
    execution_time: float
    altitude: float = 0.0

    @property
    def successful(self) -> bool:
        """Whether the HET met the 3GPP 49.5 ms threshold."""
        return self.execution_time <= HET_SUCCESS_THRESHOLD


@dataclass
class HetSampler:
    """HET distribution: lognormal body + heavy outlier mixture.

    Parameters are calibrated against Fig. 4(b): the body median sits
    around 30 ms; air outliers stretch to ~4 s, ground outliers stay
    an order of magnitude smaller.
    """

    body_median: float = 0.030
    body_sigma: float = 0.45
    outlier_prob_ground: float = 0.015
    outlier_prob_air: float = 0.05
    outlier_median: float = 0.20
    outlier_sigma: float = 1.1
    max_het: float = 4.0

    def sample(self, rng: np.random.Generator, *, airborne: bool) -> float:
        """Draw one execution time in seconds."""
        p_outlier = self.outlier_prob_air if airborne else self.outlier_prob_ground
        if rng.random() < p_outlier:
            value = self.outlier_median * float(
                np.exp(rng.normal(0.0, self.outlier_sigma))
            )
        else:
            value = self.body_median * float(
                np.exp(rng.normal(0.0, self.body_sigma))
            )
        return float(min(max(value, 0.005), self.max_het))


@dataclass
class A3Config:
    """A3 measurement-event parameters (paper Section 5 discusses
    tuning these for aerial use; the ablation bench sweeps them)."""

    hysteresis_db: float = 3.0
    time_to_trigger: float = 0.256
    l3_filter_alpha: float = 0.5  # EWMA weight of the new sample
    #: Minimum quiet time after a handover before a new A3 evaluation
    #: may begin (the network-side HO prohibit timer). Limits the
    #: ping-pong bursts that would otherwise dominate aerial runs.
    prohibit_time: float = 2.0


class HandoverEngine:
    """A3-event state machine over per-cell RSRP measurements.

    Call :meth:`measure` at the measurement period (100 ms, like a
    real UE) with the raw RSRP vector; it returns a pending
    :class:`HandoverEvent` when the A3 condition has held for
    time-to-trigger, or ``None``.
    """

    def __init__(
        self,
        num_cells: int,
        rng: np.random.Generator,
        *,
        config: A3Config | None = None,
        het_sampler: HetSampler | None = None,
        initial_serving: int | None = None,
    ) -> None:
        if num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        self.config = config if config is not None else A3Config()
        self.het_sampler = het_sampler if het_sampler is not None else HetSampler()
        self._rng = rng
        self._filtered: np.ndarray | None = None
        self.serving_cell = initial_serving if initial_serving is not None else 0
        self._a3_candidate: int | None = None
        self._a3_since: float | None = None
        self._in_handover_until: float | None = None
        self.events: list[HandoverEvent] = []
        #: Observability recorder (wired by the owning channel).
        self.obs = NULL_RECORDER

    @property
    def filtered_rsrp(self) -> np.ndarray | None:
        """L3-filtered RSRP vector (dBm), or ``None`` before data."""
        return self._filtered

    @property
    def in_handover(self) -> bool:
        """Whether a handover execution is currently in progress."""
        return self._in_handover_until is not None

    def serving_rsrp(self) -> float:
        """Filtered RSRP of the serving cell."""
        if self._filtered is None:
            return float("-inf")
        return float(self._filtered[self.serving_cell])

    def a3_pending(self) -> bool:
        """Whether the A3 condition is currently building toward TTT."""
        return self._a3_since is not None

    def a3_pending_age(self, now: float) -> float:
        """Seconds the current A3 condition has been building (0 if none)."""
        if self._a3_since is None:
            return 0.0
        return max(0.0, now - self._a3_since)

    def best_neighbour_margin(self) -> float:
        """Filtered RSRP margin of the best neighbour over serving (dB).

        Positive values mean a neighbour is already stronger; the
        channel model uses this to degrade capacity *before* the A3
        event fires — the paper's pre-handover latency spikes start
        roughly half a second before the handover (Section 4.2.2).
        """
        if self._filtered is None or len(self._filtered) < 2:
            return float("-inf")
        neighbours = self._filtered.copy()
        neighbours[self.serving_cell] = -np.inf
        return float(neighbours.max() - self._filtered[self.serving_cell])

    def measure(
        self,
        now: float,
        rsrp: np.ndarray,
        *,
        altitude: float = 0.0,
        offsets: np.ndarray | None = None,
        blocked: tuple[int, ...] | None = None,
    ) -> HandoverEvent | None:
        """Process one RSRP measurement; maybe trigger a handover.

        ``offsets`` is an optional per-cell bias vector in dB (the
        load-balancing cell-individual offsets from
        :class:`repro.cellular.cell.CellContention`) added to the
        filtered RSRP for cell selection and the A3 margin; ``blocked``
        lists cells that must not be selected (admission control).
        Both default to the uncontended single-UE behaviour.
        """
        if self._filtered is None:
            self._filtered = rsrp.astype(float).copy()
            if offsets is None and not blocked:
                self.serving_cell = int(np.argmax(self._filtered))
            else:
                self.serving_cell = self._select_initial(offsets, blocked)
            return None
        alpha = self.config.l3_filter_alpha
        self._filtered = (1 - alpha) * self._filtered + alpha * rsrp
        if self._gate(now):
            return None
        if offsets is None and not blocked:
            neighbours = self._filtered.copy()
            serving_score = self._filtered[self.serving_cell]
        else:
            # Load-aware cell ranking (A3 with CIO: Mn + Ocn > Ms +
            # Ocs + Hys): crowded cells advertise a negative CIO on
            # both sides of the margin, full cells are unselectable.
            neighbours = self._filtered.copy()
            serving_score = self._filtered[self.serving_cell]
            if offsets is not None:
                neighbours = neighbours + offsets
                serving_score = serving_score + offsets[self.serving_cell]
            if blocked:
                for cell in blocked:
                    neighbours[cell] = -np.inf
        neighbours[self.serving_cell] = -np.inf
        best = int(np.argmax(neighbours))
        margin = neighbours[best] - serving_score
        return self._evaluate(now, best, float(margin), altitude)

    def measure_prefiltered(
        self,
        now: float,
        filtered: np.ndarray,
        *,
        altitude: float,
        offsets: np.ndarray | None = None,
        blocked: tuple[int, ...] = (),
        hint: tuple[int, float] | None = None,
    ) -> HandoverEvent | None:
        """:meth:`measure` with the L3 filter already applied.

        The batched fleet path advances the EWMA filter for *all*
        members in one ``(n_members, n_cells)`` matrix op per tick
        (see :class:`repro.cellular.batch.FleetTickState`) and hands
        each engine its row here. ``filtered`` must be exactly the
        value :meth:`measure` would have computed — the matrix
        recursion is elementwise-identical to the per-member one, and
        the fleet fingerprint gates pin the equality. Everything
        after the filter update (first-measurement camping, the
        gate, the CIO-biased neighbour ranking, the A3 state machine)
        is evaluated per member against live contention state, since
        offsets and admission blocks mutate *within* a tick as
        earlier members attach.

        ``hint`` short-circuits the neighbour ranking with a
        ``(best, margin)`` pair the fleet ticker precomputed for the
        whole fleet in one masked argmax — valid only while no member
        has attached since the precompute (the caller checks the
        contention topology version) and no cell is blocked, in which
        case it is value-identical to the per-member ranking below.
        """
        if self._filtered is None:
            self._filtered = filtered
            self.serving_cell = self._select_initial(offsets, blocked)
            return None
        self._filtered = filtered
        if self._gate(now):
            return None
        if hint is not None:
            best, margin = hint
            return self._evaluate(now, best, margin, altitude)
        neighbours = filtered + offsets
        serving_score = (
            filtered[self.serving_cell] + offsets[self.serving_cell]
        )
        if blocked:
            for cell in blocked:
                neighbours[cell] = -np.inf
        neighbours[self.serving_cell] = -np.inf
        best = int(np.argmax(neighbours))
        margin = neighbours[best] - serving_score
        return self._evaluate(now, best, float(margin), altitude)

    def _gate(self, now: float) -> bool:
        """Advance the execution/prohibit windows; ``True`` = no A3
        evaluation this tick.

        Shared between :meth:`measure` and the batched lockstep
        executor (:mod:`repro.cellular.batch`), which computes the
        neighbour margins for a whole seed batch in one vectorized
        pass and must skip exactly the ticks the scalar path skips.
        """
        if self._in_handover_until is not None:
            if now >= self._in_handover_until:
                self._in_handover_until = None
            else:
                return True
        if self.events and now - self.events[-1].time < (
            self.events[-1].execution_time + self.config.prohibit_time
        ):
            self._a3_candidate = None
            self._a3_since = None
            return True
        return False

    def _evaluate(
        self, now: float, best: int, margin: float, altitude: float
    ) -> HandoverEvent | None:
        """A3 hysteresis/TTT state machine on a precomputed margin.

        ``best``/``margin`` must be the strongest-neighbour index and
        its dB margin over the serving score, computed exactly as
        :meth:`measure` does (the batched executor reproduces that
        computation row-wise over its stacked filtered-RSRP matrix).
        """
        if not np.isfinite(margin):
            # Every neighbour blocked (or single-cell layout): stay.
            self._a3_candidate = None
            self._a3_since = None
            return None
        if margin > self.config.hysteresis_db:
            if self._a3_candidate != best:
                self._a3_candidate = best
                self._a3_since = now
                if self.obs.enabled:
                    self.obs.event(
                        "handover.a3_enter",
                        t=now,
                        serving=self.serving_cell,
                        candidate=best,
                        margin_db=float(margin),
                    )
            elif now - (self._a3_since or now) >= self.config.time_to_trigger:
                return self._execute(now, best, altitude)
        else:
            self._a3_candidate = None
            self._a3_since = None
        return None

    def _select_initial(
        self, offsets: np.ndarray | None, blocked: tuple[int, ...] | None
    ) -> int:
        """Initial cell selection under load bias and admission caps.

        Falls back to the unbiased strongest cell when admission
        control has blocked every cell (the UE has to camp somewhere).
        """
        scores = self._filtered.copy()
        if offsets is not None:
            scores = scores + offsets
        if blocked:
            for cell in blocked:
                scores[cell] = -np.inf
        if not np.isfinite(scores.max()):
            return int(np.argmax(self._filtered))
        return int(np.argmax(scores))

    def _execute(
        self, now: float, target: int, altitude: float
    ) -> HandoverEvent:
        het = self.het_sampler.sample(self._rng, airborne=altitude > 10.0)
        event = HandoverEvent(
            time=now,
            source_cell=self.serving_cell,
            target_cell=target,
            execution_time=het,
            altitude=altitude,
        )
        self.events.append(event)
        if self.obs.enabled:
            self.obs.span_at(
                "handover.execution",
                now,
                now + het,
                source=self.serving_cell,
                target=target,
                het_ms=to_ms(het),
            )
            self.obs.count("handover/executed")
            if not event.successful:
                self.obs.count("handover/het_over_threshold")
            self.obs.observe("handover/het_ms", to_ms(het))
        self.serving_cell = target
        self._a3_candidate = None
        self._a3_since = None
        self._in_handover_until = now + het
        return event

    def ping_pong_count(self, window: float = 5.0) -> int:
        """Handovers that return to the previous cell within ``window`` s.

        The paper observed such ping-pong handovers in the rural area
        (Section 5, "Mitigating influence of HOs on RP"). The window
        is measured from the *completion* of the previous handover
        (trigger time plus execution time): a multi-second HET outage
        must not eat into the ping-pong window, or long-HET returns
        would be undercounted.
        """
        count = 0
        for previous, current in zip(self.events, self.events[1:]):
            completed = previous.time + previous.execution_time
            if (
                current.target_cell == previous.source_cell
                and current.time - completed <= window
            ):
                count += 1
        return count
