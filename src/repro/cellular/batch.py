"""Struct-of-arrays batched execution of channel seed sweeps.

A campaign sweep runs the same scenario under N seeds. The scalar
path pays the per-tick Python cost N times: one generator call per
stochastic process per tick, one small-array numpy expression per
tick, one event-loop dispatch per tick — for work that is either
identical across seeds (tick times, trajectory geometry) or trivially
stackable (the AR(1) shadowing/fading/fast-fading recursions, the
measurement-noise scaling, the L3 filter update).

This module restructures a whole sweep into one lockstep batch:

1. :func:`build_tick_plans` precomputes, per seed but with the
   recursions *stacked across seeds* as ``(n_seeds, n_cells)`` state
   matrices, the complete per-tick planes the scalar channel would
   have produced — shadowing dB offsets, aerial fast fading, scalar
   fading, and the assembled per-cell RSRP vector — using one block
   RNG refill per (seed, stream) for the whole horizon.
2. :func:`run_lockstep` then drives all seeds tick by tick through
   the *existing* :class:`~repro.cellular.handover.HandoverEngine`
   and :meth:`CellularChannel._capacity` kernels, so every branchy,
   stateful decision (A3 hysteresis/TTT, HET draws, prohibit timers,
   outlier episodes, pre/post-handover windows) runs the very same
   code the scalar path runs.
3. :func:`install_fleet_plans` applies the same precomputation across
   the *members of one fleet* instead of across seeds: each member's
   channel keeps ticking through the event loop (full sessions need
   the loop for pacing, GCC, handover outages), but every per-tick
   draw is served from the precomputed planes.

Bit-identity contract
---------------------
Every draw comes from the same derived stream in the same order as
the scalar path (block draws consume ``numpy`` bit generators exactly
like the equivalent scalar calls — the RNG-stability tests pin this),
and every floating-point expression replicates the scalar
evaluation order operation for operation. The few spots where the
batched path computes a value by a different-but-IEEE-equal route
(elementwise ops hoisted across a matrix, the slice-based
neighbour-interference sum replacing ``np.delete``) are guarded by
the packet-log fingerprint suite in ``tests/test_fingerprints.py``.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.cellular.channel import (
    INTERFERENCE_LOAD,
    MEASUREMENT_PERIOD,
    CellularChannel,
)
from repro.util.rng import BatchedUniform


def probe_tick_times(duration: float, anchor: float = 0.0) -> list[float]:
    """Measurement-tick times exactly as the event loop fires them.

    Replicates the anchored re-arm in ``CellularChannel._tick``
    (``anchor + k * MEASUREMENT_PERIOD``) and the inclusive
    ``run_until(duration)`` cutoff, so the batch executes precisely
    the ticks the scalar run executes — same count, bit-equal times.
    """
    times: list[float] = []
    k = 0
    while True:
        t = anchor + k * MEASUREMENT_PERIOD
        if t > duration:
            break
        times.append(t)
        k += 1
    return times


class TickPlan:
    """Precomputed per-tick stochastic planes for one seed of a batch.

    ``shadow_db``/``fastfade`` are ``(n_ticks, n_cells)`` views into
    the batch-stacked planes, ``fading`` is a list of Python floats
    (the scalar channel keeps ``_fading_db`` as a Python float),
    ``rsrp`` is the fully assembled measurement vector per tick, and
    ``altitudes`` are the per-tick UE altitudes as Python floats.
    """

    __slots__ = ("shadow_db", "fastfade", "fading", "rsrp", "altitudes", "loss")

    def __init__(
        self,
        shadow_db: np.ndarray,
        fastfade: np.ndarray,
        fading: list[float],
        rsrp: np.ndarray,
        altitudes: list[float],
        loss: np.ndarray,
    ) -> None:
        self.shadow_db = shadow_db
        self.fastfade = fastfade
        self.fading = fading
        self.rsrp = rsrp
        self.altitudes = altitudes
        self.loss = loss


def build_tick_plans(
    channels: Sequence[CellularChannel], times: Sequence[float]
) -> tuple[list[TickPlan], np.ndarray]:
    """Precompute the whole-horizon stochastic planes for a seed batch.

    All channels must share layout size and channel config (the batch
    planner groups work units so that only the seed differs). The AR
    recursions run over ``(n_seeds, n_cells)`` state matrices — one
    numpy op per tick for the whole batch instead of one per seed —
    and each stream is refilled with a single block draw covering
    every tick, consuming the per-seed generators in exactly the
    scalar order.

    Returns the per-seed plans plus the batch-stacked
    ``(n_seeds, n_ticks, n_cells)`` RSRP plane (the per-seed ``rsrp``
    arrays are views into it), so the lockstep loop can slice one
    tick across all seeds without restacking.
    """
    n = len(times)
    n_seeds = len(channels)
    n_cells = len(channels[0].layout)
    cfg = channels[0].config
    prop = cfg.propagation
    for ch in channels:
        if len(ch.layout) != n_cells:
            raise ValueError("batched channels must share the layout size")
        # Geometry for the whole horizon (shared positions cache makes
        # this cheap for fixed-trajectory air sweeps).
        ch._extend_geometry(n - 1)

    det = np.empty((n_seeds, n, n_cells))
    alts = np.empty((n_seeds, n))
    for s, ch in enumerate(channels):
        det[s] = ch._det[:n]
        alts[s] = ch._altitudes[:n]

    # --- shadowing: OU recursion with per-tick dt-dependent rho -----
    # Scalar: rho = exp(-dt / corr); V = rho*V + sqrt(1-rho^2)*noise,
    # with no draw on the first sample (dt == 0). dt comes from the
    # exact tick times, so rho is computed per tick with math.exp —
    # never np.exp, whose vectorized libm may differ in the last ulp.
    corr = prop.shadow_corr_time
    rhos = [0.0] * n
    cs = [0.0] * n
    for t in range(1, n):
        dt = max(times[t] - times[t - 1], 0.0)
        rho = math.exp(-dt / corr)
        rhos[t] = rho
        cs[t] = math.sqrt(1 - rho * rho)
    frac_sh = np.clip(alts / prop.air_transition_alt, 0.0, 1.0)
    shadow_std = prop.shadow_std_ground_db + frac_sh * (
        prop.shadow_std_air_db - prop.shadow_std_ground_db
    )
    shadow_noise = np.empty((n_seeds, max(n - 1, 1), n_cells))
    values = np.empty((n_seeds, n_cells))
    for s, ch in enumerate(channels):
        shadowing = ch._shadowing
        values[s] = shadowing._values
        if n > 1:
            shadow_noise[s] = shadowing._rng.normal(
                0.0, 1.0, size=(n - 1, n_cells)
            )
    shadow_db = np.empty((n_seeds, n, n_cells))
    shadow_db[:, 0, :] = values * shadow_std[:, 0][:, None]
    for t in range(1, n):
        values = rhos[t] * values + cs[t] * shadow_noise[:, t - 1, :]
        shadow_db[:, t, :] = values * shadow_std[:, t][:, None]
    del shadow_noise

    # --- aerial fast fading: AR(1) at the fixed tick period ---------
    rho_ff = math.exp(-MEASUREMENT_PERIOD / cfg.air_fastfade_corr_time)
    c_ff = math.sqrt(1 - rho_ff * rho_ff)
    ff_noise = np.empty((n_seeds, n, n_cells))
    for s, ch in enumerate(channels):
        ff_noise[s] = ch._fastfade_rng.normal(0.0, 1.0, size=(n, n_cells))
    fastfade = np.empty((n_seeds, n, n_cells))
    state = np.zeros((n_seeds, n_cells))
    for t in range(n):
        state = rho_ff * state + c_ff * ff_noise[:, t, :]
        fastfade[:, t, :] = state
    del ff_noise

    # --- measurement noise + RSRP assembly --------------------------
    # Scalar draws normal(0, noise_std, size=n_cells) per tick; a
    # standard-normal block scaled by the per-tick std produces the
    # same values (loc=0, and numpy applies loc + scale*z per
    # element), consuming the stream identically.
    frac40 = np.minimum(alts / 40.0, 1.0)
    meas_std = cfg.meas_noise_ground_db + frac40 * (
        cfg.meas_noise_air_db - cfg.meas_noise_ground_db
    )
    rsrp = det + shadow_db
    meas_noise = np.empty((n_seeds, n, n_cells))
    for s, ch in enumerate(channels):
        meas_noise[s] = ch._meas_rng.normal(0.0, 1.0, size=(n, n_cells))
    rsrp += meas_std[:, :, None] * meas_noise
    del meas_noise
    rsrp += (frac40 * cfg.air_fastfade_std_db)[:, :, None] * fastfade

    # --- scalar fading: AR(1) with altitude-scaled innovation -------
    rho_f = math.exp(-MEASUREMENT_PERIOD / cfg.fading_corr_time)
    c_f = math.sqrt(1 - rho_f * rho_f)
    fading_std = cfg.fading_std_ground_db + frac40 * (
        cfg.fading_std_air_db - cfg.fading_std_ground_db
    )
    fading_noise = np.empty((n_seeds, n))
    for s, ch in enumerate(channels):
        fading_noise[s] = ch._fading_rng.normal(0.0, 1.0, size=n)
    fading = np.empty((n_seeds, n))
    fstate = np.zeros(n_seeds)
    for t in range(n):
        fstate = rho_f * fstate + c_f * (fading_noise[:, t] * fading_std[:, t])
        fading[:, t] = fstate

    plans = [
        TickPlan(
            shadow_db=shadow_db[s],
            fastfade=fastfade[s],
            fading=fading[s].tolist(),
            rsrp=rsrp[s],
            altitudes=alts[s].tolist(),
            loss=channels[s]._loss3d,
        )
        for s in range(n_seeds)
    ]
    return plans, rsrp


class FleetTickState:
    """Per-tick state hoisted across the members of one fleet.

    The scalar fleet pays, per member per tick, one L3-filter EWMA
    update over the cell vector and one ``np.delete`` + ``np.power``
    pass for the neighbour-interference ratio. Stacked over an
    ``(n_members, n_cells)`` matrix both collapse to one numpy op per
    tick for the whole fleet: the filter recursion is elementwise, so
    the matrix update equals the per-member updates row for row, and
    the power matrix feeds each member a slice-based others-sum
    (value-identical to delete-then-power; both routes are pinned by
    the fleet fingerprint gates).

    Only these two planes hoist. Everything that *reads* them — cell
    ranking under load-balancing offsets, admission blocks, the A3
    state machine, PRB contention — stays per member in session order,
    because contention state mutates within a tick as earlier members
    attach (see :meth:`HandoverEngine.measure_prefiltered`).

    Members share one instance and call :meth:`advance` idempotently
    from their own tick callbacks; the first caller per tick does the
    matrix work.
    """

    __slots__ = ("rsrp_planes", "f_matrix", "powered", "_alpha", "_k")

    def __init__(self, rsrp_planes: np.ndarray, alpha: float) -> None:
        self.rsrp_planes = rsrp_planes
        self._alpha = alpha
        self.f_matrix: np.ndarray | None = None
        self.powered: np.ndarray | None = None
        self._k = -1

    def advance(self, k: int) -> None:
        """Advance the hoisted planes to tick ``k`` (idempotent)."""
        if k == self._k:
            return
        if k != self._k + 1:
            raise RuntimeError(
                f"fleet ticks must advance in lockstep: {self._k} -> {k}"
            )
        if self.f_matrix is None:
            # First measurement: the filter initializes to the raw
            # RSRP (scalar: ``rsrp.astype(float).copy()``).
            self.f_matrix = self.rsrp_planes[:, 0, :].copy()
        else:
            alpha = self._alpha
            self.f_matrix = (
                (1 - alpha) * self.f_matrix + alpha * self.rsrp_planes[:, k, :]
            )
        self.powered = np.power(10.0, self.f_matrix / 10.0)
        self._k = k


class FleetTicker:
    """One event-loop callback driving every fleet member's tick.

    The scalar fleet keeps N independent per-channel re-arms on the
    loop heap — N ``schedule_at``/heap-pop pairs per tick for events
    that all fire at the same anchored instant and run in member
    order anyway. The ticker collapses them into one event per tick
    that calls each member's ``_tick`` in session order.

    Ordering is preserved where it matters: the last member's
    synchronous tick 0 arms the ticker (so the shared tick-1 event
    sits after every member's tick-0 media activity, exactly where
    the last per-channel re-arm used to), and each firing re-arms at
    the *end* of the callback, keeping every member's same-instant
    media completions ahead of its own next tick just as the scalar
    scheduling does. Only the relative order of one member's tick
    against *another* member's same-instant media events changes,
    and no same-instant data flows across that edge: channel ticks
    never read media state, media events never read contention
    state. The fleet fingerprint gates pin the equality.

    Each firing also precomputes the A3 neighbour ranking for the
    whole fleet — one masked argmax over the shared filtered-RSRP
    matrix instead of one copy + argmax per member — handed to
    :meth:`HandoverEngine.measure_prefiltered` as a ``hint``. The
    hint is stamped with the contention topology version: a member
    whose predecessors attached mid-tick (new offsets/blocks) fails
    the stamp check and falls back to the live per-member ranking.
    The precompute is skipped outright while any cell sits at the
    admission cap, since blocked-cell masks are per member.
    """

    __slots__ = (
        "_channels", "_plan_channels", "_plane", "_loop", "_state",
        "_contention", "_pending", "_anchor", "_rows", "_cols", "hint_k",
        "hint_topo", "hint_best", "hint_margin", "sums_k", "tick_serving",
        "others_mw",
    )

    def __init__(
        self,
        channels: Sequence[CellularChannel],
        state: FleetTickState | None,
        *,
        plan_channels: Sequence[CellularChannel] | None = None,
        plane=None,
    ) -> None:
        self._channels = list(channels)
        #: Members whose rows back the hoisted planes — the whole
        #: fleet unless trace-sampled members were excluded from
        #: planning. Hint/interference precompute covers these only;
        #: ``_tick`` is still driven for every member in session order.
        self._plan_channels = (
            self._channels if plan_channels is None else list(plan_channels)
        )
        #: Optional :class:`~repro.obs.metrics.FleetMetricsPlane` fed
        #: once per tick, after every member's ``_tick``.
        self._plane = plane
        self._loop = channels[0]._loop
        self._state = state
        self._contention = channels[0]._contention
        self._pending = len(channels)
        self._anchor = 0.0
        self._rows = np.arange(len(self._plan_channels))
        self._cols = np.arange(max(len(channels[0].layout) - 1, 0))
        self.hint_k = -1
        self.hint_topo = -1
        self.hint_best: np.ndarray | None = None
        self.hint_margin: np.ndarray | None = None
        self.sums_k = -1
        self.tick_serving: np.ndarray | None = None
        self.others_mw: np.ndarray | None = None

    def notify_started(self, anchor: float) -> None:
        """Register one member's synchronous tick 0; the last arms
        the shared tick-1 event."""
        self._anchor = anchor
        self._pending -= 1
        if self._pending == 0:
            self._loop.schedule_at(anchor + MEASUREMENT_PERIOD, self._fire)

    def _fire(self) -> None:
        channels = self._channels
        state = self._state
        contention = self._contention
        k = channels[0]._tick_index
        if state is None:
            # No planned members (every member trace-sampled): the
            # ticker still drives the lockstep ticks and feeds the
            # plane, but there are no hoisted planes to advance and
            # nobody reads hints.
            self.sums_k = -1
            self.hint_k = -1
        else:
            state.advance(k)
            rows = self._rows
            plan_channels = self._plan_channels
            serving = np.fromiter(
                (ch.engine.serving_cell for ch in plan_channels),
                dtype=np.int64,
                count=len(plan_channels),
            )
            # Fleet-wide neighbour-interference sums: drop each
            # member's serving column with one fancy gather and reduce
            # along the row. The reduction runs the same pairwise
            # kernel over the same values in the same order as the
            # per-member slice-based sum, so the results are
            # value-identical (fingerprint-gated); a member that hands
            # over mid-tick fails the serving-cell check in ``_tick``
            # and falls back to the per-member sum.
            cols = self._cols
            gathered = state.powered[
                rows[:, None], cols + (cols >= serving[:, None])
            ]
            self.others_mw = gathered.sum(axis=1)
            self.tick_serving = serving
            self.sums_k = k
            if contention is not None and contention._at_cap.size == 0:
                # Fleet-wide A3 ranking: mask each member's serving
                # cell and argmax once. Row-wise this is exactly the
                # per-member ``filtered + offsets`` ranking (the
                # serving score is the same two-operand add the scalar
                # path performs), valid until someone attaches.
                neighbours = state.f_matrix + contention.offsets()
                scores = neighbours[rows, serving]
                neighbours[rows, serving] = -np.inf
                best = neighbours.argmax(axis=1)
                self.hint_best = best
                self.hint_margin = neighbours[rows, best] - scores
                self.hint_topo = contention._topo_version
                self.hint_k = k
            else:
                self.hint_k = -1
        for ch in channels:
            ch._tick()
        if self._plane is not None:
            self._plane.observe_channels(channels)
        self._loop.schedule_at(
            self._anchor + channels[0]._tick_index * MEASUREMENT_PERIOD,
            self._fire,
        )


def install_fleet_plans(
    channels: Sequence[CellularChannel],
    duration: float,
    *,
    exclude: Sequence[int] = (),
    plane=None,
) -> FleetTicker | None:
    """Precompute and install per-member tick plans for a fleet run.

    The same struct-of-arrays pass :func:`build_tick_plans` runs
    across *seeds* for a campaign sweep here runs across the *members*
    of one fleet: all channels share the layout and channel config and
    differ only in their derived RNG streams and their translated
    trajectories, so the AR recursions stack over an
    ``(n_members, n_cells)`` state matrix and each member's streams
    refill with one block draw for the whole horizon. Each member then
    ticks through its own event-loop callback as usual (full sessions
    need the loop for pacing, GCC, handover outages) — but the ticks
    share a :class:`FleetTickState`, so the L3 filter recursion and
    the interference powers also advance once per tick for the whole
    fleet, and :meth:`CellularChannel._tick` reads precomputed rows
    instead of drawing per tick. The branchy per-member state (A3,
    HET, outliers, contention) stays on the exact scalar code path,
    and the fleet fingerprint gates pin planned == per-tick draws
    packet-for-packet.

    ``duration`` must be the fleet's ``run_until`` horizon: the plans
    cover exactly the anchored ticks that horizon fires
    (:func:`probe_tick_times`), and a channel that ticks past its plan
    raises rather than falling back.

    ``exclude`` lists member indices (``FleetConfig.trace_members``)
    left on per-tick scalar draws: the shared ticker still fires their
    ``_tick`` in session order — so cross-member contention mutation
    order is unchanged — but they take the plan-``None`` branch at
    every draw site, which is exactly the reference scalar code path a
    diagnose-quality :class:`~repro.obs.recorder.Recorder` expects to
    observe. ``plane`` attaches a
    :class:`~repro.obs.metrics.FleetMetricsPlane` that the ticker
    feeds once per tick. Returns the ticker (``None`` when nothing
    was installed: no planned members and no plane).
    """
    for ch in channels:
        if ch._started:
            raise ValueError("fleet plans must be installed before start")
    excluded = set(exclude)
    planned = [ch for i, ch in enumerate(channels) if i not in excluded]
    if not planned and plane is None:
        return None
    if planned:
        times = probe_tick_times(duration)
        plans, rsrp_planes = build_tick_plans(planned, times)
        state = FleetTickState(
            rsrp_planes, channels[0].engine.config.l3_filter_alpha
        )
    else:
        plans, state = [], None
    ticker = FleetTicker(channels, state, plan_channels=planned, plane=plane)
    plan_iter = iter(plans)
    row = 0
    for i, ch in enumerate(channels):
        if i in excluded:
            ch.install_plan(None, ticker=ticker)
            continue
        ch.install_plan(next(plan_iter), state=state, row=row, ticker=ticker)
        row += 1
        # Outlier draws mix random() and uniform() on one stream; the
        # block-refilled wrapper serves both bit-identically.
        ch._outlier_rng = BatchedUniform(ch._outlier_rng)
    return ticker


def run_lockstep(
    channels: Sequence[CellularChannel], duration: float
) -> list[list[float]]:
    """Execute a channel-only seed batch tick by tick, in lockstep.

    Returns the per-seed uplink-capacity series (one value per tick,
    bit-identical to the scalar run's ``CapacitySample.uplink_bps``
    log); handovers, cells seen and ping-pong counts are left on each
    channel's engine, exactly where the scalar run leaves them.

    The channels must be freshly built (never started), share their
    configuration apart from the seed, and run uncontended without a
    recorder — the campaign batch planner only routes such units here.
    """
    for ch in channels:
        if ch._started:
            raise ValueError("batched channels must not be started")
        if ch._contention is not None or ch.obs.enabled:
            raise ValueError("batched channels must be uncontended/untraced")
    times = probe_tick_times(duration)
    n = len(times)
    n_seeds = len(channels)
    plans, rsrp_planes = build_tick_plans(channels, times)
    engines = [ch.engine for ch in channels]
    cfg = channels[0].config
    post_ramp = cfg.post_handover_ramp
    mbb = cfg.make_before_break
    alpha = engines[0].config.l3_filter_alpha
    one_minus_alpha = 1 - alpha
    # Outlier draws mix random() and uniform() on one stream; the
    # block-refilled wrapper serves both bit-identically.
    for ch in channels:
        ch._outlier_rng = BatchedUniform(ch._outlier_rng)
    uplinks: list[list[float]] = [[] for _ in range(n_seeds)]
    rows = np.arange(n_seeds)
    f_matrix: np.ndarray | None = None
    serving = np.zeros(n_seeds, dtype=np.intp)
    seed_range = range(n_seeds)
    for t in range(n):
        now = times[t]
        if f_matrix is None:
            # First measurement initializes the L3 filter and camps on
            # the strongest cell; no A3 evaluation, no draws.
            f_matrix = rsrp_planes[:, 0, :].copy()
            serving = f_matrix.argmax(axis=1)
            best = serving
            margins = None
        else:
            f_matrix = one_minus_alpha * f_matrix + alpha * rsrp_planes[:, t, :]
            neighbours = f_matrix.copy()
            neighbours[rows, serving] = -np.inf
            best = neighbours.argmax(axis=1)
            margins = neighbours[rows, best] - f_matrix[rows, serving]
        # Neighbour interference, hoisted: one matrix power instead of
        # one np.delete + np.power per seed (value-identical; the
        # serving-cell term keeps the scalar path's Python ``**``).
        powered = np.power(10.0, f_matrix / 10.0)
        for s in seed_range:
            ch = channels[s]
            eng = engines[s]
            plan = plans[s]
            altitude = plan.altitudes[t]
            eng._filtered = f_matrix[s]
            if margins is None:
                eng.serving_cell = int(serving[s])
            elif not eng._gate(now):
                event = eng._evaluate(
                    now, int(best[s]), float(margins[s]), altitude
                )
                if event is not None:
                    serving[s] = eng.serving_cell
                    if not mbb:
                        ch._post_ho_until = (
                            now + event.execution_time + post_ramp
                        )
            sc = eng.serving_cell
            ch.cells_seen.add(sc)
            ch._fading_db = plan.fading[t]
            ch._shadow = plan.shadow_db[t]
            ch._fastfade = plan.fastfade[t]
            ch._update_outliers(now, altitude)
            serving_mw = 10.0 ** (float(f_matrix[s, sc]) / 10.0)
            prow = powered[s]
            others = np.empty(len(prow) - 1)
            others[:sc] = prow[:sc]
            others[sc:] = prow[sc + 1:]
            ratio = INTERFERENCE_LOAD * float(others.sum()) / max(
                serving_mw, 1e-30
            )
            uplink, downlink, _ = ch._capacity(
                now, altitude, plan.loss[t], interference_ratio=ratio
            )
            ch._uplink_bps = uplink
            ch._downlink_bps = downlink
            uplinks[s].append(uplink)
    return uplinks
