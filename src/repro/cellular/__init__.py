"""LTE cellular substrate: layout, propagation, handovers, channel."""

from repro.cellular.cell import (
    CellCapacityConfig,
    CellContention,
    allocate_prbs,
    fleet_demand_bps,
    merge_occupancy,
)
from repro.cellular.layout import Cell, CellLayout, grid_layout, urban_layout, rural_layout
from repro.cellular.propagation import (
    PropagationConfig,
    ShadowingProcess,
    path_loss_db,
    antenna_gain_db,
    rsrp_dbm,
)
from repro.cellular.handover import (
    A3Config,
    HandoverEngine,
    HandoverEvent,
    HetSampler,
    HET_SUCCESS_THRESHOLD,
)
from repro.cellular.operators import (
    OperatorProfile,
    get_profile,
    P1_URBAN,
    P1_RURAL,
    P2_URBAN,
    P2_RURAL,
)
from repro.cellular.channel import (
    CellularChannel,
    ChannelConfig,
    CapacitySample,
    RssiReport,
    MEASUREMENT_PERIOD,
)

__all__ = [
    "Cell",
    "CellCapacityConfig",
    "CellContention",
    "allocate_prbs",
    "fleet_demand_bps",
    "merge_occupancy",
    "CellLayout",
    "grid_layout",
    "urban_layout",
    "rural_layout",
    "PropagationConfig",
    "ShadowingProcess",
    "path_loss_db",
    "antenna_gain_db",
    "rsrp_dbm",
    "A3Config",
    "HandoverEngine",
    "HandoverEvent",
    "HetSampler",
    "HET_SUCCESS_THRESHOLD",
    "OperatorProfile",
    "get_profile",
    "P1_URBAN",
    "P1_RURAL",
    "P2_URBAN",
    "P2_RURAL",
    "CellularChannel",
    "ChannelConfig",
    "CapacitySample",
    "RssiReport",
    "MEASUREMENT_PERIOD",
]
