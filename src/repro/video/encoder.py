"""Rate-controlled H.264-like encoder model.

Models the x264 software encoder the paper settled on (Section 5,
"SWaP requirements"): given a target bitrate it emits one compressed
frame per source frame with

* a GoP structure — periodic IDR frames several times larger than the
  predicted frames between them;
* per-frame size noise scaled by content complexity;
* a closed rate-control loop (leaky "bit debt") so the long-run output
  rate tracks the target even though individual frames overshoot;
* a small, stable software-encode latency (the property that made the
  authors pick x264 over the VA-API hardware encoder).

Target-bitrate changes take effect at the next frame boundary, which
is what produces the paper's send-queue bitrate mismatch after sudden
CC down-switches.
"""

from __future__ import annotations

import numpy as np

from repro.video.frames import EncodedFrame, FrameType, SourceFrame
from repro.util.rng import BatchedNormal
from repro.util.units import bits_to_bytes, bytes_to_bits


class EncoderModel:
    """Synthetic rate-controlled encoder.

    Parameters
    ----------
    rng:
        Random stream for frame-size noise.
    fps:
        Frame rate; must match the source.
    gop_length:
        Frames per GoP (an IDR every ``gop_length`` frames).
    idr_ratio:
        Size of an IDR frame relative to the GoP-average frame size.
    size_noise_std:
        Lognormal sigma of per-frame size variation.
    encode_latency / encode_latency_jitter:
        Mean and jitter of the software-encode delay per frame.
    min_bitrate / max_bitrate:
        Clamp for :meth:`set_target_bitrate` (the paper's 2-25 Mbps
        operating range).
    """

    def __init__(
        self,
        rng: np.random.Generator | None,
        *,
        fps: float = 30.0,
        gop_length: int = 30,
        idr_ratio: float = 2.0,
        size_noise_std: float = 0.10,
        encode_latency: float = 0.008,
        encode_latency_jitter: float = 0.002,
        min_bitrate: float = 2e6,
        max_bitrate: float = 25e6,
        initial_bitrate: float | None = None,
        normal: BatchedNormal | None = None,
    ) -> None:
        if gop_length < 2:
            raise ValueError(f"gop_length must be >= 2, got {gop_length}")
        if idr_ratio < 1.0:
            raise ValueError(f"idr_ratio must be >= 1, got {idr_ratio}")
        if min_bitrate <= 0 or max_bitrate < min_bitrate:
            raise ValueError("invalid bitrate clamp")
        if rng is None and normal is None:
            raise ValueError("either rng or normal is required")
        # Size noise and latency jitter are both plain normal draws on
        # this stream, so one block-refilled buffer serves both with
        # values bit-identical to the scalar calls it replaced. A
        # seed-sweep batch passes ``normal`` preloaded for the whole
        # run (same stream, one refill per sweep).
        self._normal = normal if normal is not None else BatchedNormal(rng)
        self.fps = fps
        self.gop_length = gop_length
        self.idr_ratio = idr_ratio
        self.size_noise_std = size_noise_std
        self.encode_latency = encode_latency
        self.encode_latency_jitter = encode_latency_jitter
        self.min_bitrate = min_bitrate
        self.max_bitrate = max_bitrate
        self._target_bitrate = float(
            min(max(initial_bitrate or min_bitrate, min_bitrate), max_bitrate)
        )
        self._frames_encoded = 0
        self._bit_debt = 0.0  # positive = we overspent recently
        # Size multiplier for P frames such that one GoP averages 1x:
        # (idr_ratio + (N-1) * p_scale) / N == 1
        self._p_scale = (gop_length - idr_ratio) / (gop_length - 1)
        if self._p_scale <= 0:
            raise ValueError("idr_ratio too large for this gop_length")

    @property
    def target_bitrate(self) -> float:
        """Current encode target in bits/s."""
        return self._target_bitrate

    def set_target_bitrate(self, bitrate: float) -> None:
        """Update the target; applied from the next encoded frame."""
        self._target_bitrate = float(
            min(max(bitrate, self.min_bitrate), self.max_bitrate)
        )

    def encode(self, frame: SourceFrame) -> EncodedFrame:
        """Compress ``frame`` at the current target bitrate."""
        frame_type = (
            FrameType.IDR
            if self._frames_encoded % self.gop_length == 0
            else FrameType.PREDICTED
        )
        budget_bits = self._target_bitrate / self.fps
        scale = self.idr_ratio if frame_type is FrameType.IDR else self._p_scale
        noise = float(
            np.exp(self._normal.normal(-0.5 * self.size_noise_std**2, self.size_noise_std))
        )
        # Rate control: shave the next frame when we recently overspent.
        correction = min(max(1.0 - self._bit_debt / (4.0 * budget_bits), 0.6), 1.2)
        size_bits = budget_bits * scale * frame.complexity * noise * correction
        size_bytes = max(200, int(bits_to_bytes(size_bits)))
        self._bit_debt += bytes_to_bits(size_bytes) - budget_bits
        # Debt decays so a single large IDR doesn't starve a whole GoP.
        self._bit_debt *= 0.95
        latency = self.encode_latency + abs(
            self._normal.normal(0.0, self.encode_latency_jitter)
        )
        self._frames_encoded += 1
        return EncodedFrame(
            frame_id=frame.frame_id,
            capture_time=frame.capture_time,
            size_bytes=size_bytes,
            frame_type=frame_type,
            target_bitrate=self._target_bitrate,
            complexity=frame.complexity,
            encode_latency=latency,
        )
