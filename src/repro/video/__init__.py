"""Video pipeline: source, encoder, quality, decoder and player models."""

from repro.video.frames import (
    FrameType,
    SourceFrame,
    EncodedFrame,
    DecodedFrame,
)
from repro.video.source import SourceVideo, FULL_HD_PIXELS
from repro.video.encoder import EncoderModel
from repro.video.quality import RateDistortionModel, ArtifactModel
from repro.video.decoder import DecoderModel
from repro.video.player import Player, PlaybackRecord

__all__ = [
    "FrameType",
    "SourceFrame",
    "EncodedFrame",
    "DecodedFrame",
    "SourceVideo",
    "FULL_HD_PIXELS",
    "EncoderModel",
    "RateDistortionModel",
    "ArtifactModel",
    "DecoderModel",
    "Player",
    "PlaybackRecord",
]
