"""Playback model with GStreamer-like adaptive playback speed.

The paper's player "optimizes for a pleasant viewing experience under
link congestion: the playback speed reduces proactively when the video
buffer runs low to avoid freezes [...] once the delayed packets
arrive, the playback speed increases to cut down on the elevated
playback latency" (Appendix A.4). This is the mechanism behind two of
the paper's key observations:

* low-FPS outliers when a CC suddenly reduces the target bitrate
  (queued high-bitrate frames starve the buffer; the player slows
  down, Section 4.2.1);
* playback latency that stays elevated after a network-latency spike
  even once the frame rate recovers (Section 4.2.2).

:class:`Player` plays decoded frames at a nominal frame interval,
stretching it when the queue runs low and compressing it when a
backlog accumulates. Every played frame produces a
:class:`PlaybackRecord`; stall accounting (inter-frame time above the
RP threshold of 300 ms) lives in :mod:`repro.metrics.video`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.net.simulator import EventLoop
from repro.obs import NULL_RECORDER, NullRecorder
from repro.obs.detect import WindowedStats
from repro.util.units import to_ms
from repro.video.frames import DecodedFrame


@dataclass
class PlaybackRecord:
    """One frame as it was shown to the remote pilot."""

    frame_id: int
    play_time: float
    encode_time: float
    ssim: float
    complete: bool

    @property
    def playback_latency(self) -> float:
        """Encoding-to-display latency in seconds (paper's metric)."""
        return self.play_time - self.encode_time


class Player:
    """Adaptive-speed video player.

    Parameters
    ----------
    loop:
        Event loop for playout scheduling.
    fps:
        Nominal playback rate (paper: 30).
    low_watermark / high_watermark:
        Queue depths (frames) that trigger slow-down / catch-up.
    slowdown / speedup:
        Frame-interval multipliers applied outside the watermarks.
    on_play:
        Optional callback invoked with each :class:`PlaybackRecord`.
    max_queue:
        Hard cap on buffered frames; beyond it the oldest frames are
        skipped (the player never builds unbounded delay).
    """

    def __init__(
        self,
        loop: EventLoop,
        *,
        fps: float = 30.0,
        low_watermark: int = 1,
        high_watermark: int = 2,
        slowdown: float = 1.2,
        speedup: float = 0.7,
        on_play: Callable[[PlaybackRecord], None] | None = None,
        max_queue: int = 90,
        obs: NullRecorder = NULL_RECORDER,
    ) -> None:
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        if low_watermark < 0 or high_watermark <= low_watermark:
            raise ValueError("watermarks must satisfy 0 <= low < high")
        self._loop = loop
        self.nominal_interval = 1.0 / fps
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        self.slowdown = slowdown
        self.speedup = speedup
        self.max_queue = max_queue
        self._on_play = on_play
        self._queue: deque[DecodedFrame] = deque()
        self._next_play_at: float | None = None
        self._last_played_id = -1
        self.records: list[PlaybackRecord] = []
        self.skipped_frames = 0
        self.late_frames = 0
        self.obs = obs
        #: Per-second playback QoE bins (frames played, worst playback
        #: latency, worst inter-frame gap) — the signal substrate the
        #: SLO detector in :mod:`repro.obs.detect` evaluates.
        self._window = WindowedStats(
            obs, "player.window",
            sums=("frames",), maxes=("latency_ms", "gap_ms"),
        )
        self._last_play_time: float | None = None

    @property
    def queue_depth(self) -> int:
        """Frames currently buffered for display."""
        return len(self._queue)

    def push(self, frame: DecodedFrame) -> None:
        """Queue a decoded frame for display."""
        if frame.frame_id <= self._last_played_id:
            # Arrived after its successor already played: unusable.
            self.late_frames += 1
            return
        self._queue.append(frame)
        while len(self._queue) > self.max_queue:
            self._queue.popleft()
            self.skipped_frames += 1
        if self._next_play_at is None:
            # Player idle (startup or after an underrun): play now.
            self._schedule(self._loop.now)

    def _schedule(self, when: float) -> None:
        self._next_play_at = when
        self._loop.call_at(when, self._play_tick)

    def finish(self, now: float) -> None:
        """Flush the trailing (possibly partial) QoE window bin."""
        if self.obs.enabled:
            self._window.finish(now)

    def _play_tick(self) -> None:
        if not self._queue:
            # Underrun: go idle; the next push restarts playback.
            self._next_play_at = None
            if self.obs.enabled:
                self.obs.event("player.underrun", t=self._loop.now)
                self.obs.count("player/underruns")
            return
        frame = self._queue.popleft()
        now = self._loop.now
        self._last_played_id = frame.frame_id
        record = PlaybackRecord(
            frame_id=frame.frame_id,
            play_time=now,
            encode_time=frame.encode_time,
            ssim=frame.ssim,
            complete=frame.complete,
        )
        self.records.append(record)
        if self.obs.enabled:
            gap_ms = (
                to_ms(now - self._last_play_time)
                if self._last_play_time is not None
                else -math.inf
            )
            self._window.add(
                now, (1.0,), (to_ms(now - frame.encode_time), gap_ms)
            )
            self._last_play_time = now
        if self._on_play is not None:
            self._on_play(record)
        interval = self.nominal_interval
        depth = len(self._queue)
        if depth < self.low_watermark:
            interval *= self.slowdown
        elif depth > self.high_watermark:
            interval *= self.speedup
        self._schedule(now + interval)
