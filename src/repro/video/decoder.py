"""Decoder model: frame reconstruction and artifact propagation.

A real H.264 decoder conceals lost slices, producing visual artifacts
that persist in predicted frames until the next IDR refreshes the
reference picture. The paper's SSIM dips below 0.5 come precisely from
such artifacts ("the video quality is impaired by artifacts that are
caused by packet losses"). :class:`DecoderModel` tracks a scalar
reference-damage level that losses raise and IDR frames clear, and
scores each emitted frame with the rate-distortion model.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.video.frames import DecodedFrame, FrameType
from repro.video.quality import ArtifactModel, RateDistortionModel

if TYPE_CHECKING:  # avoid a circular import at runtime (rtp -> video)
    from repro.rtp.packetizer import AssembledFrame


class DecoderModel:
    """Stateful decoder producing SSIM-scored frames.

    Parameters
    ----------
    rd_model:
        Rate-distortion curve mapping encode bitrate to clean SSIM.
    artifact_model:
        Loss-artifact and error-propagation model.
    """

    def __init__(
        self,
        rd_model: RateDistortionModel | None = None,
        artifact_model: ArtifactModel | None = None,
    ) -> None:
        self.rd_model = rd_model if rd_model is not None else RateDistortionModel()
        self.artifacts = (
            artifact_model if artifact_model is not None else ArtifactModel()
        )
        self._reference_damage = 0.0
        self.frames_decoded = 0
        self.damaged_frames = 0

    @property
    def reference_damage(self) -> float:
        """Current decoder reference damage in [0, 1]."""
        return self._reference_damage

    def decode(self, assembled: AssembledFrame, now: float) -> DecodedFrame:
        """Reconstruct ``assembled`` into a displayable frame."""
        meta = assembled.packets[0].metadata if assembled.packets else {}
        frame_type = meta.get("frame_type", FrameType.PREDICTED)
        bitrate = float(meta.get("target_bitrate", 0.0))
        complexity = float(meta.get("complexity", 1.0))

        own_damage = self.artifacts.frame_damage(assembled.loss_fraction)
        if frame_type is FrameType.IDR and assembled.complete:
            # A clean IDR refreshes the reference picture entirely.
            self._reference_damage = 0.0
        total_damage = 1.0 - (1.0 - self._reference_damage) * (1.0 - own_damage)
        clean = self.rd_model.clean_ssim(bitrate, complexity)
        ssim = self.artifacts.apply(clean, total_damage)

        self._reference_damage = self.artifacts.propagate(total_damage)
        self.frames_decoded += 1
        if not assembled.complete:
            self.damaged_frames += 1
        return DecodedFrame(
            frame_id=assembled.frame_id,
            ssim=ssim,
            complete=assembled.complete,
            decode_time=now,
            encode_time=assembled.encode_time,
        )
