"""SSIM rate-distortion and loss-artifact model.

The paper computes SSIM between source and received frames in
post-processing (Section 4.2.3). SSIM has two drivers there:

* the encoder's operating bitrate — more bits per pixel keeps more
  detail — which we model with an exponential rate-distortion curve
  calibrated so 25 Mbps full-HD lands around 0.95 and 8 Mbps around
  0.87 (matching "urban SSIM stays above 0.9 for 90 % of the time");
* packet loss, which produces decoder artifacts that persist in
  predicted frames until the next IDR refreshes the reference.

Frames that never play score 0, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.video.source import FULL_HD_PIXELS


@dataclass
class RateDistortionModel:
    """Maps encode bitrate (and content complexity) to clean SSIM.

    ``ssim = 1 - floor_gap * exp(-steepness * (bpp / complexity)**shape)``

    where ``bpp`` is bits per pixel of the encoded frame stream.
    Defaults are calibrated against the paper's reported SSIM levels
    for full-HD x264 at 2-25 Mbps.
    """

    floor_gap: float = 0.42
    steepness: float = 9.0
    shape: float = 0.75
    pixels: int = FULL_HD_PIXELS
    fps: float = 30.0

    def bits_per_pixel(self, bitrate: float) -> float:
        """Bits per pixel at ``bitrate`` bits/s for this resolution/fps."""
        if bitrate <= 0:
            return 0.0
        return bitrate / (self.pixels * self.fps)

    def clean_ssim(self, bitrate: float, complexity: float = 1.0) -> float:
        """SSIM of a losslessly delivered frame encoded at ``bitrate``."""
        if bitrate <= 0:
            return 0.0
        bpp = self.bits_per_pixel(bitrate)
        effective = bpp / max(complexity, 1e-6)
        ssim = 1.0 - self.floor_gap * float(
            np.exp(-self.steepness * effective**self.shape)
        )
        return min(max(ssim, 0.0), 1.0)


@dataclass
class ArtifactModel:
    """Damage accounting for lost fragments and error propagation.

    ``loss_impact`` scales how strongly a lost fragment degrades its
    own frame; ``propagation_decay`` controls how quickly artifacts
    fade across predicted frames (1.0 = no fading until the next IDR).
    """

    loss_impact: float = 2.2
    propagation_decay: float = 0.92
    max_damage: float = 0.95

    def frame_damage(self, loss_fraction: float) -> float:
        """Damage in [0, 1] inflicted by losing ``loss_fraction`` of a frame."""
        if loss_fraction <= 0.0:
            return 0.0
        damage = 1.0 - float(np.exp(-self.loss_impact * loss_fraction * 4.0))
        return min(self.max_damage, damage)

    def propagate(self, damage: float) -> float:
        """Residual reference damage carried into the next P frame."""
        return damage * self.propagation_decay

    def apply(self, clean_ssim: float, damage: float) -> float:
        """Final SSIM of a frame with reference/own damage ``damage``."""
        return min(max(clean_ssim * (1.0 - damage), 0.0), 1.0)
