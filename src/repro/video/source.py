"""Source-video content model.

The paper streams a pre-recorded clip "that contains considerable
detail and motion". For the simulator the only property of the clip
that matters is how expensive each frame is to encode, so the source
is modelled as a per-frame *complexity* series: a slowly-varying AR(1)
process around 1.0 with occasional scene cuts that momentarily raise
the cost (scene changes force larger I-frames and poorly-predicted
P-frames).
"""

from __future__ import annotations

import numpy as np

from repro.video.frames import SourceFrame

#: Full-HD pixel count used for bits-per-pixel computations.
FULL_HD_PIXELS = 1920 * 1080


class SourceVideo:
    """Deterministic, seedable content-complexity generator.

    Parameters
    ----------
    rng:
        Random stream for the complexity process.
    fps:
        Source frame rate (paper: 30).
    ar_coeff / noise_std:
        AR(1) parameters for the slow complexity drift.
    scene_cut_rate:
        Expected scene cuts per second; each cut re-seeds the process
        and boosts the next frame's complexity.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        fps: float = 30.0,
        ar_coeff: float = 0.995,
        noise_std: float = 0.01,
        scene_cut_rate: float = 0.05,
        min_complexity: float = 0.5,
        max_complexity: float = 2.0,
    ) -> None:
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        if not 0.0 <= ar_coeff < 1.0:
            raise ValueError(f"ar_coeff must be in [0, 1), got {ar_coeff}")
        self.fps = fps
        self._rng = rng
        self._ar = ar_coeff
        self._noise_std = noise_std
        self._cut_prob = scene_cut_rate / fps
        self._min = min_complexity
        self._max = max_complexity
        self._state = 0.0  # deviation from mean complexity 1.0
        self._next_id = 0
        self._cut_boost = 0.0

    @property
    def frame_interval(self) -> float:
        """Seconds between consecutive source frames."""
        return 1.0 / self.fps

    def next_frame(self, capture_time: float) -> SourceFrame:
        """Produce the next source frame captured at ``capture_time``."""
        if self._rng.random() < self._cut_prob:
            # Scene cut: decorrelate and make the next frames expensive.
            self._state = float(self._rng.normal(0.0, 0.15))
            self._cut_boost = 0.5
        self._state = self._ar * self._state + float(
            self._rng.normal(0.0, self._noise_std)
        )
        complexity = 1.0 + self._state + self._cut_boost
        self._cut_boost *= 0.5
        complexity = min(max(complexity, self._min), self._max)
        frame = SourceFrame(
            frame_id=self._next_id,
            capture_time=capture_time,
            complexity=complexity,
        )
        self._next_id += 1
        return frame
