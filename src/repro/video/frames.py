"""Frame data types shared by the video pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class FrameType(Enum):
    """H.264 frame classes used by the encoder model."""

    IDR = "I"
    PREDICTED = "P"


@dataclass
class SourceFrame:
    """A raw frame from the (pre-recorded) source video.

    Attributes
    ----------
    frame_id:
        Monotone frame counter — the paper's per-frame QR code.
    capture_time:
        Simulated time the frame was captured/read from the source.
    complexity:
        Relative spatial/temporal complexity (1.0 = average content);
        drives how many bits a given quality costs.
    """

    frame_id: int
    capture_time: float
    complexity: float = 1.0


@dataclass
class EncodedFrame:
    """Output of the encoder model for one frame.

    Attributes
    ----------
    size_bytes:
        Compressed frame size.
    frame_type:
        IDR (intra) or predicted.
    target_bitrate:
        The encoder's target bitrate when this frame was produced,
        in bits/s — used by the SSIM rate-distortion model.
    encode_latency:
        Software-encoder processing delay for this frame.
    """

    frame_id: int
    capture_time: float
    size_bytes: int
    frame_type: FrameType
    target_bitrate: float
    complexity: float
    encode_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {self.size_bytes}")

    @property
    def is_keyframe(self) -> bool:
        """Whether this frame refreshes the decoder state."""
        return self.frame_type is FrameType.IDR


@dataclass
class DecodedFrame:
    """A frame after decoding at the receiver.

    Attributes
    ----------
    ssim:
        Estimated structural similarity against the source frame in
        [0, 1]; 0 is reserved for frames that never played.
    complete:
        Whether all RTP fragments arrived.
    decode_time:
        Simulated time the decoder emitted the frame.
    encode_time:
        Encoder timestamp carried through the pipeline (paper's
        barcode), used for playback-latency accounting.
    """

    frame_id: int
    ssim: float
    complete: bool
    decode_time: float
    encode_time: float
