"""Congestion controllers: GCC, SCReAM and the static baseline."""

from repro.cc.base import (
    CongestionController,
    StaticBitrateController,
    FeedbackKind,
    SentPacket,
    CcLogEntry,
)
from repro.cc.gcc import GccController
from repro.cc.scream import ScreamController

__all__ = [
    "CongestionController",
    "StaticBitrateController",
    "FeedbackKind",
    "SentPacket",
    "CcLogEntry",
    "GccController",
    "ScreamController",
]
