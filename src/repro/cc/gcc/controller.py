"""Google Congestion Control — the assembled sender-side controller.

Consumes transport-wide-CC feedback, reconstructs (send, arrival)
pairs from its sent-packet history, and runs

  inter-arrival grouping -> Kalman gradient filter -> over-use
  detector -> AIMD rate control,

in parallel with the loss-based controller. The published target is
``min(delay_based, loss_based)`` as in the GCC design.
"""

from __future__ import annotations

from collections import deque

from repro.cc.base import CongestionController, FeedbackKind, SentPacket
from repro.cc.gcc.arrival import InterArrival
from repro.cc.gcc.detector import BandwidthUsage, OveruseDetector
from repro.cc.gcc.estimator import OveruseEstimator
from repro.cc.gcc.loss import LossBasedController
from repro.cc.gcc.rate_control import AimdRateControl
from repro.rtp.twcc import TwccFeedback
from repro.util.units import bytes_to_bits, to_ms


class GccController(CongestionController):
    """Delay- and loss-based GCC controller.

    Parameters
    ----------
    initial_bitrate:
        Starting target (the paper's pipeline starts at the low end of
        the 2-25 Mbps encoder range).
    min_bitrate / max_bitrate:
        Encoder operating range.
    pacing_factor:
        Pacer drain rate relative to the target (libwebrtc uses 2.5).
    """

    feedback_kind = FeedbackKind.TWCC
    uses_transport_seq = True
    feedback_interval = 0.05

    def __init__(
        self,
        *,
        initial_bitrate: float = 2e6,
        min_bitrate: float = 2e6,
        max_bitrate: float = 25e6,
        pacing_factor: float = 2.5,
    ) -> None:
        super().__init__(initial_bitrate)
        self.min_bitrate = min_bitrate
        self.max_bitrate = max_bitrate
        self.pacing_factor = pacing_factor
        self._inter_arrival = InterArrival()
        self._estimator = OveruseEstimator()
        self._detector = OveruseDetector()
        self._aimd = AimdRateControl(
            initial_bitrate=initial_bitrate,
            min_bitrate=min_bitrate,
            max_bitrate=max_bitrate,
        )
        self._loss = LossBasedController(
            initial_bitrate=max_bitrate,
            min_bitrate=min_bitrate,
            max_bitrate=max_bitrate,
        )
        self._history: dict[int, SentPacket] = {}
        self._acked: deque[tuple[float, int]] = deque()
        self._acked_bytes = 0
        self._acked_window = 0.5
        self.rtt_estimate = 0.05
        self.overuse_events = 0

    # ------------------------------------------------------------------
    # CongestionController interface
    # ------------------------------------------------------------------
    def pacing_rate(self, now: float) -> float:
        return self.pacing_factor * self._target_bitrate

    def on_packet_sent(self, packet: SentPacket, now: float) -> None:
        if packet.transport_seq is None:
            raise ValueError("GCC requires transport-wide sequence numbers")
        self._history[packet.transport_seq] = packet
        # Bound the history; feedback normally clears entries promptly.
        if len(self._history) > 20_000:
            oldest = sorted(self._history)[: len(self._history) - 20_000]
            for seq in oldest:
                del self._history[seq]

    def on_feedback(self, feedback: TwccFeedback, now: float) -> None:
        if not isinstance(feedback, TwccFeedback):
            raise TypeError(f"expected TwccFeedback, got {type(feedback)!r}")
        lost = 0
        total = 0
        usage = self._detector.state
        detected_this_feedback = False
        last_send_delta_ms = 5.0
        for seq, arrival in feedback.iter_packets():
            record = self._history.pop(seq, None)
            if record is None:
                continue
            total += 1
            if arrival is None:
                lost += 1
                record.lost = True
                continue
            record.acked = True
            self.rtt_estimate = max(1e-3, now - record.send_time)
            self._aimd.set_rtt(self.rtt_estimate)
            self._note_acked(arrival, record.size_bytes)
            delta = self._inter_arrival.add_packet(
                record.send_time, arrival, record.size_bytes
            )
            if delta is None or delta.send_delta <= 0:
                continue
            offset_ms = self._estimator.update(
                delta.arrival_delta,
                delta.send_delta,
                delta.size_delta,
                in_stable_state=self._detector.state is BandwidthUsage.NORMAL,
            )
            last_send_delta_ms = to_ms(delta.send_delta)
            usage = self._detector.detect(
                offset_ms,
                last_send_delta_ms,
                self._estimator.num_of_deltas,
                now,
            )
            detected_this_feedback = True
        if total == 0:
            return
        if usage is BandwidthUsage.OVERUSING and not detected_this_feedback:
            # The detector last signalled over-use, but this feedback
            # closed no new packet group: acting on the stale signal
            # would re-trigger a decrease for the same episode.
            usage = BandwidthUsage.NORMAL
        if usage is BandwidthUsage.OVERUSING:
            self.overuse_events += 1
            if self.obs.enabled:
                self.obs.event(
                    "gcc.overuse",
                    offset_ms=self._estimator.offset_ms,
                    threshold_ms=self._detector.threshold_ms,
                )
                self.obs.count("gcc/overuse_events")
        incoming = self.acked_bitrate(now)
        delay_rate = self._aimd.update(usage, incoming, now)
        loss_rate = self._loss.update(lost, total)
        previous_target = self._target_bitrate
        self._target_bitrate = min(
            max(min(delay_rate, loss_rate), self.min_bitrate), self.max_bitrate
        )
        if self.obs.enabled:
            self.obs.count("gcc/packets_acked", total - lost)
            self.obs.count("gcc/packets_lost", lost)
            self.obs.gauge("gcc/target_bitrate", self._target_bitrate)
            self.obs.observe("gcc/rtt_ms", to_ms(self.rtt_estimate))
            if self._target_bitrate < previous_target:
                self.obs.event(
                    "gcc.rate_decrease",
                    from_bps=previous_target,
                    to_bps=self._target_bitrate,
                    # Which estimator bound the new target: the
                    # delay-based AIMD or the loss-based cap.
                    reason="delay" if delay_rate <= loss_rate else "loss",
                )
        self._record(
            now,
            delay_rate=delay_rate,
            loss_rate=loss_rate,
            offset_ms=self._estimator.offset_ms,
            threshold_ms=self._detector.threshold_ms,
            acked_bitrate=incoming if incoming is not None else -1.0,
            loss_fraction=self._loss.last_loss_fraction,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _note_acked(self, arrival: float, size_bytes: int) -> None:
        self._acked.append((arrival, size_bytes))
        self._acked_bytes += size_bytes
        horizon = arrival - self._acked_window
        while self._acked and self._acked[0][0] < horizon:
            _, size = self._acked.popleft()
            self._acked_bytes -= size

    def acked_bitrate(self, now: float) -> float | None:
        """Receive rate measured from acked packets (bits/s)."""
        if len(self._acked) < 2:
            return None
        span = max(self._acked[-1][0] - self._acked[0][0], 0.05)
        return bytes_to_bits(self._acked_bytes) / span

    @property
    def detector_state(self) -> BandwidthUsage:
        """Expose the detector hypothesis for logging/analysis."""
        return self._detector.state
