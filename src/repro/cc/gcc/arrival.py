"""Inter-arrival packet grouping for the GCC delay filter.

libwebrtc's ``InterArrival``: packets sent within a 5 ms burst window
form one *packet group*; the Kalman filter operates on inter-group
deltas rather than per-packet deltas so that sender-side pacing bursts
do not masquerade as queueing. For consecutive groups ``i-1`` and
``i`` the filter input is::

    d(i) = (arrival_i - arrival_{i-1}) - (send_i - send_{i-1})

the inter-group one-way delay variation.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Packets sent within this window belong to one group (libwebrtc).
BURST_DELTA = 0.005


@dataclass(slots=True)
class PacketGroup:
    """Aggregated timing of one packet burst."""

    first_send: float
    last_send: float
    first_arrival: float
    last_arrival: float
    size_bytes: int
    packets: int = 1


@dataclass(slots=True)
class GroupDelta:
    """Filter input computed between two complete packet groups."""

    send_delta: float
    arrival_delta: float
    size_delta: int

    @property
    def delay_variation(self) -> float:
        """``arrival_delta - send_delta`` in seconds."""
        return self.arrival_delta - self.send_delta


class InterArrival:
    """Groups packets into send-time bursts and emits group deltas."""

    def __init__(self, *, burst_delta: float = BURST_DELTA) -> None:
        if burst_delta <= 0:
            raise ValueError(f"burst_delta must be positive, got {burst_delta}")
        self.burst_delta = burst_delta
        self._current: PacketGroup | None = None
        self._previous: PacketGroup | None = None

    def add_packet(
        self, send_time: float, arrival_time: float, size_bytes: int
    ) -> GroupDelta | None:
        """Feed one received packet (in arrival order).

        Returns a :class:`GroupDelta` when the packet closes the
        previous group (i.e. starts a new one and a complete previous
        group exists), else ``None``.
        """
        if self._current is None:
            self._current = PacketGroup(
                send_time, send_time, arrival_time, arrival_time, size_bytes
            )
            return None
        if self._belongs_to_current(send_time):
            group = self._current
            group.last_send = max(group.last_send, send_time)
            group.first_arrival = min(group.first_arrival, arrival_time)
            group.last_arrival = max(group.last_arrival, arrival_time)
            group.size_bytes += size_bytes
            group.packets += 1
            return None
        # New group begins: compute delta against the one just closed.
        delta: GroupDelta | None = None
        if self._previous is not None:
            delta = GroupDelta(
                send_delta=self._current.last_send - self._previous.last_send,
                arrival_delta=self._current.last_arrival
                - self._previous.last_arrival,
                size_delta=self._current.size_bytes - self._previous.size_bytes,
            )
        self._previous = self._current
        self._current = PacketGroup(
            send_time, send_time, arrival_time, arrival_time, size_bytes
        )
        return delta

    def _belongs_to_current(self, send_time: float) -> bool:
        assert self._current is not None
        return send_time - self._current.first_send <= self.burst_delta

    def reset(self) -> None:
        """Forget group state (used after long outages)."""
        self._current = None
        self._previous = None
