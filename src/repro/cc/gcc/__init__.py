"""Google Congestion Control (delay + loss based) implementation."""

from repro.cc.gcc.arrival import InterArrival, GroupDelta, PacketGroup
from repro.cc.gcc.estimator import OveruseEstimator
from repro.cc.gcc.detector import OveruseDetector, BandwidthUsage
from repro.cc.gcc.rate_control import AimdRateControl
from repro.cc.gcc.loss import LossBasedController
from repro.cc.gcc.controller import GccController

__all__ = [
    "InterArrival",
    "GroupDelta",
    "PacketGroup",
    "OveruseEstimator",
    "OveruseDetector",
    "BandwidthUsage",
    "AimdRateControl",
    "LossBasedController",
    "GccController",
]
