"""Over-use detector with adaptive threshold (GCC).

Compares the Kalman gradient estimate against a threshold ``gamma``
that adapts to the measured gradient itself (Carlucci et al. Section
3.2; libwebrtc ``OveruseDetector``). Over-use is only signalled after
the gradient stays above threshold for a sustained time and keeps
growing — a single delayed group must not collapse the rate.
"""

from __future__ import annotations

import enum

from repro.util.units import to_ms


class BandwidthUsage(enum.Enum):
    """Detector output consumed by the AIMD rate controller."""

    NORMAL = "normal"
    OVERUSING = "overusing"
    UNDERUSING = "underusing"


class OveruseDetector:
    """Adaptive-threshold hypothesis test on the delay gradient."""

    def __init__(
        self,
        *,
        initial_threshold_ms: float = 15.0,
        k_up: float = 0.0087,
        k_down: float = 0.039,
        overusing_time_threshold_ms: float = 30.0,
        min_threshold_ms: float = 9.0,
        max_threshold_ms: float = 600.0,
    ) -> None:
        self._threshold = initial_threshold_ms
        self.k_up = k_up
        self.k_down = k_down
        self.overusing_time_threshold = overusing_time_threshold_ms
        self.min_threshold = min_threshold_ms
        self.max_threshold = max_threshold_ms
        self._last_update_ms: float | None = None
        self._time_over_using = -1.0
        self._overuse_counter = 0
        self._hypothesis = BandwidthUsage.NORMAL
        self._prev_offset = 0.0

    @property
    def threshold_ms(self) -> float:
        """Current adaptive threshold gamma in milliseconds."""
        return self._threshold

    @property
    def state(self) -> BandwidthUsage:
        """Latest detector hypothesis."""
        return self._hypothesis

    def detect(
        self,
        offset_ms: float,
        send_delta_ms: float,
        num_of_deltas: int,
        now: float,
    ) -> BandwidthUsage:
        """Update the hypothesis with a new gradient estimate.

        ``offset_ms`` is the Kalman gradient; the tested statistic is
        ``min(num_of_deltas, 60) * offset_ms`` as in libwebrtc.
        """
        if num_of_deltas < 2:
            return BandwidthUsage.NORMAL
        t = min(num_of_deltas, 60) * offset_ms
        if t > self._threshold:
            if self._time_over_using == -1.0:
                # Initialize at half a group interval.
                self._time_over_using = send_delta_ms / 2.0
            else:
                self._time_over_using += send_delta_ms
            self._overuse_counter += 1
            if (
                self._time_over_using > self.overusing_time_threshold
                and self._overuse_counter > 1
                and offset_ms >= self._prev_offset
            ):
                self._time_over_using = 0.0
                self._overuse_counter = 0
                self._hypothesis = BandwidthUsage.OVERUSING
        elif t < -self._threshold:
            self._time_over_using = -1.0
            self._overuse_counter = 0
            self._hypothesis = BandwidthUsage.UNDERUSING
        else:
            self._time_over_using = -1.0
            self._overuse_counter = 0
            self._hypothesis = BandwidthUsage.NORMAL
        self._prev_offset = offset_ms
        self._update_threshold(t, now)
        return self._hypothesis

    def _update_threshold(self, t: float, now: float) -> None:
        now_ms = to_ms(now)
        if self._last_update_ms is None:
            self._last_update_ms = now_ms
        if abs(t) > self._threshold + 15.0:
            # A spike this large is not used for adaptation (libwebrtc).
            self._last_update_ms = now_ms
            return
        k = self.k_down if abs(t) < self._threshold else self.k_up
        time_delta = min(now_ms - self._last_update_ms, 100.0)
        self._threshold += k * (abs(t) - self._threshold) * time_delta
        self._threshold = min(
            max(self._threshold, self.min_threshold), self.max_threshold
        )
        self._last_update_ms = now_ms
