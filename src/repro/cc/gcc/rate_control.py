"""AIMD remote-rate controller (GCC delay-based control).

State machine from Carlucci et al. / libwebrtc ``AimdRateControl``:

* ``OVERUSING`` -> Decrease: rate = beta * measured incoming rate
  (beta = 0.85), then Hold;
* ``UNDERUSING`` -> Hold (let queues drain);
* ``NORMAL`` -> Increase.

The increase is *multiplicative* (8 %/s) while far from the last
known congestion point and *additive* (about one packet per response
time) once the incoming rate approaches the decaying average of the
rates at which over-use previously occurred ("near convergence").

A startup phase — until the first over-use is seen — uses a more
aggressive multiplicative factor, standing in for libwebrtc's initial
probing. The paper measures the resulting ramp-up to 25 Mbps at
roughly 12 s for GCC (Section 4.2.1); the ramp-up bench checks that
shape.
"""

from __future__ import annotations

import math

from repro.cc.gcc.detector import BandwidthUsage
from repro.util.units import bits_to_bytes, bytes_to_bits


class AimdRateControl:
    """Additive-increase / multiplicative-decrease rate control."""

    def __init__(
        self,
        *,
        initial_bitrate: float,
        min_bitrate: float = 2e6,
        max_bitrate: float = 25e6,
        beta: float = 0.85,
        increase_factor: float = 1.10,
        startup_increase_factor: float = 1.22,
        rtt: float = 0.05,
    ) -> None:
        self.min_bitrate = min_bitrate
        self.max_bitrate = max_bitrate
        self.beta = beta
        self.increase_factor = increase_factor
        self.startup_increase_factor = startup_increase_factor
        self.rtt = rtt
        self._rate = float(
            min(max(initial_bitrate, min_bitrate), max_bitrate)
        )
        self._state = "hold"
        self._last_change: float | None = None
        self._avg_max_bitrate: float | None = None
        self._var_max_bitrate = 0.4  # normalized variance (libwebrtc)
        self._seen_first_overuse = False
        self._time_of_last_decrease: float | None = None

    @property
    def rate(self) -> float:
        """Current delay-based bitrate estimate (bits/s)."""
        return self._rate

    @property
    def state(self) -> str:
        """AIMD state: ``hold``, ``increase`` or ``decrease``."""
        return self._state

    @property
    def in_startup(self) -> bool:
        """Whether the aggressive startup ramp is still active."""
        return not self._seen_first_overuse

    def set_rtt(self, rtt: float) -> None:
        """Update the round-trip-time used for the additive increase."""
        if rtt > 0:
            self.rtt = rtt

    def update(
        self, usage: BandwidthUsage, incoming_rate: float | None, now: float
    ) -> float:
        """Advance the state machine and return the new rate."""
        self._change_state(usage)
        if self._last_change is None:
            self._last_change = now
        delta = min(now - self._last_change, 1.0)
        self._last_change = now

        if self._state == "increase":
            if self._near_convergence(incoming_rate):
                self._rate += self._additive_increase(delta)
            else:
                # Far below the last known congestion point (after a
                # handover knocked the rate down), libwebrtc recovers
                # quickly through ALR probing; model that as the
                # aggressive startup factor until we approach the
                # remembered link capacity.
                recovering = (
                    self._avg_max_bitrate is not None
                    and self._rate < 0.7 * self._avg_max_bitrate
                )
                factor = (
                    self.startup_increase_factor
                    if not self._seen_first_overuse or recovering
                    else self.increase_factor
                )
                self._rate *= math.pow(factor, delta)
            # Do not grow unboundedly past what the path demonstrably
            # carries (libwebrtc caps at 1.5x the acked bitrate).
            if incoming_rate is not None:
                self._rate = min(self._rate, 1.5 * incoming_rate + 10_000.0)
        elif self._state == "decrease":
            self._seen_first_overuse = True
            if (
                self._time_of_last_decrease is None
                or now - self._time_of_last_decrease >= self.rtt + 0.1
            ):
                basis = incoming_rate if incoming_rate is not None else self._rate
                # A momentary acked-rate dip (one delayed feedback
                # interval) must not collapse the estimate: never cut
                # below half the current rate in one step.
                self._rate = max(self.beta * basis, 0.5 * self._rate)
                self._update_max_bitrate_estimate(basis)
                self._time_of_last_decrease = now
            self._state = "hold"

        self._rate = min(max(self._rate, self.min_bitrate), self.max_bitrate)
        return self._rate

    def _change_state(self, usage: BandwidthUsage) -> None:
        if usage is BandwidthUsage.OVERUSING:
            self._state = "decrease"
        elif usage is BandwidthUsage.UNDERUSING:
            self._state = "hold"
        else:
            if self._state == "hold":
                self._state = "increase"

    def _near_convergence(self, incoming_rate: float | None) -> bool:
        if incoming_rate is None or self._avg_max_bitrate is None:
            return False
        std = math.sqrt(self._var_max_bitrate * self._avg_max_bitrate)
        return abs(incoming_rate - self._avg_max_bitrate) <= 3.0 * std

    def _additive_increase(self, delta: float) -> float:
        response_time = self.rtt + 0.1
        expected_packet_size = bits_to_bytes(self._rate) / 30.0  # bytes per frame slice
        increase_per_s = max(4_000.0, bytes_to_bits(expected_packet_size) / response_time)
        return increase_per_s * delta

    def _update_max_bitrate_estimate(self, incoming_rate: float) -> None:
        alpha = 0.05
        if self._avg_max_bitrate is None:
            self._avg_max_bitrate = incoming_rate
        else:
            self._avg_max_bitrate = (
                1 - alpha
            ) * self._avg_max_bitrate + alpha * incoming_rate
        norm = max(self._avg_max_bitrate, 1.0)
        self._var_max_bitrate = (1 - alpha) * self._var_max_bitrate + alpha * (
            (self._avg_max_bitrate - incoming_rate) ** 2 / norm
        )
        self._var_max_bitrate = min(max(self._var_max_bitrate, 0.4), 2.5)
