"""Kalman filter estimating the queuing-delay gradient (GCC).

This is the arrival-time filter from the original GCC design
(Carlucci et al., MMSys '16; libwebrtc ``OveruseEstimator``): a
two-state Kalman filter whose measurement is the inter-group delay
variation ``d(i)`` and whose state is ``[1/C, m]`` — the inverse of
the bottleneck capacity and the queuing-delay gradient ``m`` (ms per
group). The over-use detector thresholds ``m``.

Internally the filter works in milliseconds (as libwebrtc does); the
public API takes seconds.
"""

from __future__ import annotations

import math

from repro.util.units import ms, to_ms


class OveruseEstimator:
    """Two-state Kalman filter for the one-way delay gradient."""

    def __init__(self) -> None:
        # State: slope (ms/byte, ~1/capacity) and offset (ms).
        # libwebrtc's initial slope constant (not a unit conversion).
        self._slope = 8.0 / 512.0  # repro-lint: ignore[RPL002]
        self._offset = 0.0
        self._prev_offset = 0.0
        # Error covariance and process noise (libwebrtc defaults).
        self._e = [[100.0, 0.0], [0.0, 1e-1]]
        self._process_noise = [1e-13, 1e-3]
        self._avg_noise = 0.0
        self._var_noise = 50.0
        self.num_of_deltas = 0

    @property
    def offset_ms(self) -> float:
        """Current queuing-delay gradient estimate in milliseconds."""
        return self._offset

    @property
    def prev_offset_ms(self) -> float:
        """Gradient estimate before the last update."""
        return self._prev_offset

    @property
    def var_noise(self) -> float:
        """Current measurement-noise variance estimate."""
        return self._var_noise

    def update(
        self,
        arrival_delta: float,
        send_delta: float,
        size_delta: int,
        *,
        in_stable_state: bool,
    ) -> float:
        """Fold one inter-group sample into the filter.

        Parameters are in seconds/bytes; returns the updated gradient
        estimate in milliseconds.
        """
        t_delta_ms = to_ms(arrival_delta)
        ts_delta_ms = to_ms(send_delta)
        t_ts_delta = t_delta_ms - ts_delta_ms
        fs_delta = float(size_delta)
        self.num_of_deltas = min(self.num_of_deltas + 1, 60)

        # Prediction step: state is modelled constant, covariance grows.
        self._e[0][0] += self._process_noise[0]
        self._e[1][1] += self._process_noise[1]

        h = (fs_delta, 1.0)
        eh = (
            self._e[0][0] * h[0] + self._e[0][1] * h[1],
            self._e[1][0] * h[0] + self._e[1][1] * h[1],
        )
        residual = t_ts_delta - self._slope * h[0] - self._offset

        # Noise estimate update (clamped residual, libwebrtc style).
        max_residual = 3.0 * math.sqrt(self._var_noise)
        clamped = max(-max_residual, min(max_residual, residual))
        self._update_noise_estimate(clamped, ts_delta_ms, in_stable_state)

        denom = self._var_noise + h[0] * eh[0] + h[1] * eh[1]
        if denom <= 0:
            denom = 1e-9
        k = (eh[0] / denom, eh[1] / denom)

        ikh = [
            [1.0 - k[0] * h[0], -k[0] * h[1]],
            [-k[1] * h[0], 1.0 - k[1] * h[1]],
        ]
        e00, e01 = self._e[0]
        e10, e11 = self._e[1]
        self._e = [
            [ikh[0][0] * e00 + ikh[0][1] * e10, ikh[0][0] * e01 + ikh[0][1] * e11],
            [ikh[1][0] * e00 + ikh[1][1] * e10, ikh[1][0] * e01 + ikh[1][1] * e11],
        ]

        self._prev_offset = self._offset
        self._slope += k[0] * residual
        self._offset += k[1] * residual
        return self._offset

    def _update_noise_estimate(
        self, residual: float, ts_delta_ms: float, stable_state: bool
    ) -> None:
        if not stable_state:
            return
        # Faster forgetting for larger inter-group gaps (libwebrtc).
        alpha = 0.01 if self.num_of_deltas > 600 else 0.1
        beta = pow(1.0 - alpha, ms(min(ts_delta_ms, 100.0) * 30.0))
        self._avg_noise = beta * self._avg_noise + (1.0 - beta) * residual
        self._var_noise = beta * self._var_noise + (1.0 - beta) * (
            (self._avg_noise - residual) ** 2
        )
        if self._var_noise < 1.0:
            self._var_noise = 1.0

    def reset(self) -> None:
        """Re-initialize the filter (after long connectivity gaps)."""
        self.__init__()
