"""GCC loss-based controller.

The companion controller to the delay-based estimator (Carlucci et
al. Section 3.1): per feedback interval it inspects the fraction of
lost packets and

* decreases the rate ``A <- A * (1 - 0.5 * loss)`` when loss > 10 %;
* increases it ``A <- 1.05 * A`` when loss < 2 %;
* holds otherwise.

The final GCC target is the minimum of the delay-based and loss-based
rates.
"""

from __future__ import annotations


class LossBasedController:
    """Loss-fraction driven bitrate bound."""

    def __init__(
        self,
        *,
        initial_bitrate: float,
        min_bitrate: float = 2e6,
        max_bitrate: float = 25e6,
        high_loss: float = 0.10,
        low_loss: float = 0.02,
    ) -> None:
        if not 0.0 <= low_loss < high_loss <= 1.0:
            raise ValueError("need 0 <= low_loss < high_loss <= 1")
        self.min_bitrate = min_bitrate
        self.max_bitrate = max_bitrate
        self.high_loss = high_loss
        self.low_loss = low_loss
        self._rate = float(min(max(initial_bitrate, min_bitrate), max_bitrate))
        self.last_loss_fraction = 0.0

    @property
    def rate(self) -> float:
        """Current loss-based bitrate bound (bits/s)."""
        return self._rate

    def update(self, lost: int, total: int) -> float:
        """Fold one feedback interval's loss statistics."""
        if total <= 0:
            return self._rate
        loss = lost / total
        self.last_loss_fraction = loss
        if loss > self.high_loss:
            self._rate *= 1.0 - 0.5 * loss
        elif loss < self.low_loss:
            self._rate *= 1.05
        self._rate = min(max(self._rate, self.min_bitrate), self.max_bitrate)
        return self._rate
