"""SCReAM (RFC 8298) self-clocked rate adaptation implementation."""

from repro.cc.scream.window import ScreamWindow, MSS
from repro.cc.scream.rate import ScreamRateController
from repro.cc.scream.controller import ScreamController

__all__ = ["ScreamWindow", "MSS", "ScreamRateController", "ScreamController"]
