"""SCReAM sender controller: window + rate control + loss detection.

Consumes RFC 8888 CCFB reports. Loss detection mirrors the Ericsson
implementation the paper used, including its central flaw (Section
4.2.1): a packet is declared lost when

* it is covered by the report window and flagged not-received while
  clearly newer packets were received (reordering margin), or
* its sequence number has slid **below** the report window
  (``begin_seq``) without ever being acknowledged. When more packets
  arrive between two reports than the window covers — frame bursts at
  high bitrates, queue drains after handovers — delivered packets are
  never reported and this rule fires falsely, cutting the bitrate
  needlessly. ``false_loss_candidates`` counts these events so the
  ablation bench can compare ack windows 64 vs 256.
"""

from __future__ import annotations

from collections import deque

from repro.cc.base import CongestionController, FeedbackKind, SentPacket
from repro.cc.scream.rate import ScreamRateController
from repro.cc.scream.window import ScreamWindow
from repro.rtp.ccfb import CcfbReport
from repro.rtp.packets import seq_distance
from repro.util.units import bytes_to_bits, to_ms


class ScreamController(CongestionController):
    """Self-Clocked Rate Adaptation for Multimedia (sender side)."""

    feedback_kind = FeedbackKind.CCFB
    uses_transport_seq = False
    #: Effective RTCP report spacing. Nominally the Ericsson library
    #: generates a report every 10 ms, but the paper's observation
    #: that "at rates higher than ~7 Mbps, more than 64 RTP packets
    #: arrive between two consecutive RTCP packets" (Section 4.2.1)
    #: implies an effective spacing of 64 * 1200 B / 7 Mbps ~ 80 ms
    #: under load — which is what makes the bounded ack window bite.
    feedback_interval = 0.08

    def __init__(
        self,
        *,
        initial_bitrate: float = 2e6,
        min_bitrate: float = 2e6,
        max_bitrate: float = 25e6,
        ramp_up_speed: float = 0.95e6,
        qdelay_target: float = 0.09,
        reorder_margin: int = 5,
        rate_adjust_interval: float = 0.2,
        pacing_headroom: float = 1.25,
        rtp_queue_discard_threshold: float = 0.1,
    ) -> None:
        super().__init__(initial_bitrate)
        self.window = ScreamWindow(qdelay_target=qdelay_target)
        self.rate = ScreamRateController(
            initial_bitrate=initial_bitrate,
            min_bitrate=min_bitrate,
            max_bitrate=max_bitrate,
            ramp_up_speed=ramp_up_speed,
        )
        self.reorder_margin = reorder_margin
        self.rate_adjust_interval = rate_adjust_interval
        self.pacing_headroom = pacing_headroom
        #: Sender RTP-queue delay beyond which the queue is discarded
        #: (the Ericsson implementation's 100 ms guard).
        self.rtp_queue_discard_threshold = rtp_queue_discard_threshold
        self._in_flight: dict[int, SentPacket] = {}
        self._last_rate_adjust = 0.0
        self._last_rate_loss: float | None = None
        self._rtp_queue_delay = 0.0
        self._acked: deque[tuple[float, int]] = deque()
        self._acked_bytes = 0
        self._acked_window = 0.5
        self.false_loss_candidates = 0
        self.detected_losses = 0

    # ------------------------------------------------------------------
    # CongestionController interface
    # ------------------------------------------------------------------
    def pacing_rate(self, now: float) -> float:
        # Self-clocked pacing: drain at the window throughput with
        # modest headroom, never slower than the media rate.
        return max(
            self.pacing_headroom * self.window.throughput_estimate(),
            self._target_bitrate,
        )

    def can_send(self, bytes_in_flight: int, packet_size: int, now: float) -> bool:
        return self.window.can_send(packet_size)

    def on_packet_sent(self, packet: SentPacket, now: float) -> None:
        self._in_flight[packet.sequence] = packet
        self.window.on_packet_sent(packet.size_bytes, now)

    def on_queue_state(self, queue_delay: float, queue_bytes: int, now: float) -> None:
        # Smooth the queue-delay signal: the head-of-line age sawtooths
        # between 0 and one frame interval at every frame, which is not
        # congestion — only a *persistently* old queue head is.
        self._rtp_queue_delay += 0.1 * (queue_delay - self._rtp_queue_delay)

    def on_feedback(self, report: CcfbReport, now: float) -> None:
        if not isinstance(report, CcfbReport):
            raise TypeError(f"expected CcfbReport, got {type(report)!r}")
        loss_detected = False
        end_seq = report.end_seq
        for seq, packet_report in report.iter_packets():
            record = self._in_flight.get(seq)
            if record is None:
                continue
            if packet_report.received:
                arrival = report.report_timestamp - (
                    packet_report.arrival_offset or 0.0
                )
                owd = max(0.0, arrival - record.send_time)
                record.acked = True
                del self._in_flight[seq]
                self.window.update_srtt(now - record.send_time)
                self.window.on_packet_acked(record.size_bytes, owd, now)
                self._note_acked(arrival, record.size_bytes)
            else:
                # Not received; only a loss if clearly out of the
                # reordering window relative to the report end.
                if seq_distance(seq, end_seq) > self.reorder_margin:
                    record.lost = True
                    del self._in_flight[seq]
                    self.window.on_packet_lost(record.size_bytes, now)
                    loss_detected = True
        # Packets that slid below the report window unacknowledged:
        # the implementation cannot distinguish "delivered but never
        # reported" from "lost" — it declares them lost (the paper's
        # false-loss mechanism).
        begin = report.begin_seq
        stale = [
            seq
            for seq in self._in_flight
            if seq_distance(seq, begin) > 0
        ]
        for seq in stale:
            record = self._in_flight.pop(seq)
            record.lost = True
            self.window.on_packet_lost(record.size_bytes, now)
            self.false_loss_candidates += 1
            loss_detected = True
        if stale and self.obs.enabled:
            self.obs.event("scream.false_loss", packets=len(stale))
            self.obs.count("scream/false_loss_candidates", len(stale))
        if loss_detected:
            self.detected_losses += 1
            if self.obs.enabled:
                self.obs.event("scream.loss", cwnd=float(self.window.cwnd))
                self.obs.count("scream/loss_events")
            # Media-rate back-off at most once per RTT, mirroring the
            # cwnd loss-event gating — individual reports often flag
            # several packets of the same loss episode.
            if (
                self._last_rate_loss is None
                or now - self._last_rate_loss >= self.window.srtt
            ):
                self._last_rate_loss = now
                self.rate.on_loss()
        if now - self._last_rate_adjust >= self.rate_adjust_interval:
            self._last_rate_adjust = now
            previous_target = self._target_bitrate
            self._target_bitrate = self.rate.adjust(
                now,
                rtp_queue_delay=self._rtp_queue_delay,
                qdelay=self.window.qdelay,
                qdelay_target=self.window.qdelay_target,
                window_throughput=self.window.throughput_estimate(),
                ack_rate=self.acked_bitrate(),
            )
            self._record(
                now,
                cwnd=float(self.window.cwnd),
                bytes_in_flight=float(self.window.bytes_in_flight),
                qdelay=self.window.qdelay,
                srtt=self.window.srtt,
                rtp_queue_delay=self._rtp_queue_delay,
            )
            if self.obs.enabled:
                self.obs.gauge("scream/target_bitrate", self._target_bitrate)
                self.obs.gauge("scream/cwnd_bytes", float(self.window.cwnd))
                self.obs.observe("scream/qdelay_ms", to_ms(self.window.qdelay))
                if self._target_bitrate < previous_target:
                    self.obs.event(
                        "scream.rate_decrease",
                        from_bps=previous_target,
                        to_bps=self._target_bitrate,
                        reason="loss" if loss_detected else "qdelay",
                    )

    def _note_acked(self, arrival: float, size_bytes: int) -> None:
        self._acked.append((arrival, size_bytes))
        self._acked_bytes += size_bytes
        horizon = arrival - self._acked_window
        while self._acked and self._acked[0][0] < horizon:
            _, size = self._acked.popleft()
            self._acked_bytes -= size

    def acked_bitrate(self) -> float | None:
        """Delivery rate measured from acknowledged packets (bits/s)."""
        if len(self._acked) < 2:
            return None
        span = max(self._acked[-1][0] - self._acked[0][0], 0.05)
        return bytes_to_bits(self._acked_bytes) / span

    @property
    def bytes_in_flight(self) -> int:
        """Bytes currently counted against the congestion window."""
        return self.window.bytes_in_flight
