"""SCReAM media (video) rate control.

Separately from the congestion window, SCReAM adjusts the *video
target bitrate* handed to the encoder (RFC 8298 Section 4.2):

* ramp up at a bounded speed (``ramp_up_speed``, bits/s per second)
  while the RTP queue is short and the window is not congested — the
  bounded ramp is what the paper measures as SCReAM's ~25 s rise to
  25 Mbps;
* scale the target down proportionally when the RTP queue delay grows
  (the encoder is outpacing what the self-clocked window transmits);
* back off multiplicatively on loss events.

The target is additionally capped near the throughput the current
cwnd can sustain.
"""

from __future__ import annotations


class ScreamRateController:
    """Video bitrate adaptation layered on the SCReAM window."""

    def __init__(
        self,
        *,
        initial_bitrate: float = 2e6,
        min_bitrate: float = 2e6,
        max_bitrate: float = 25e6,
        ramp_up_speed: float = 0.95e6,
        queue_delay_guard: float = 0.04,
        loss_scale: float = 0.95,
        throughput_headroom: float = 1.1,
        ack_rate_headroom: float = 1.25,
    ) -> None:
        if min_bitrate <= 0 or max_bitrate < min_bitrate:
            raise ValueError("invalid bitrate range")
        self.min_bitrate = min_bitrate
        self.max_bitrate = max_bitrate
        self.ramp_up_speed = ramp_up_speed
        self.queue_delay_guard = queue_delay_guard
        self.loss_scale = loss_scale
        self.throughput_headroom = throughput_headroom
        self.ack_rate_headroom = ack_rate_headroom
        self._target = float(min(max(initial_bitrate, min_bitrate), max_bitrate))
        self._last_adjust: float | None = None
        self._congestion_free_since = 0.0
        self._loss_pending = False

    @property
    def target(self) -> float:
        """Current video target bitrate in bits/s."""
        return self._target

    def on_loss(self) -> None:
        """Scale the target down after a loss event."""
        self._target = max(self.min_bitrate, self._target * self.loss_scale)
        self._loss_pending = True

    def adjust(
        self,
        now: float,
        *,
        rtp_queue_delay: float,
        qdelay: float,
        qdelay_target: float,
        window_throughput: float,
        ack_rate: float | None = None,
    ) -> float:
        """Periodic rate adjustment; returns the new target."""
        if self._last_adjust is None:
            self._last_adjust = now
            return self._target
        delta = min(now - self._last_adjust, 0.5)
        self._last_adjust = now
        if delta <= 0:
            return self._target

        if self._loss_pending:
            self._loss_pending = False
            self._congestion_free_since = now
        queue_pressure = rtp_queue_delay / self.queue_delay_guard
        qdelay_pressure = qdelay / qdelay_target
        if queue_pressure > 1.0:
            # The encoder outruns the window badly: cut proportionally.
            scale = max(0.5, 1.0 - 0.2 * min(queue_pressure - 1.0, 2.0))
            self._target *= scale
            self._congestion_free_since = now
        elif qdelay_pressure > 1.0:
            # Network queue above target: gentle decrease.
            self._target *= max(0.8, 1.0 - 0.1 * min(qdelay_pressure - 1.0, 2.0))
            self._congestion_free_since = now
        elif queue_pressure < 0.5:
            # RFC 8298 "fast increase": after a sustained congestion-
            # free period the ramp accelerates, which is what lets
            # SCReAM recover quickly after handover dips.
            speed = self.ramp_up_speed
            if now - self._congestion_free_since > 2.0:
                speed *= 2.5
            self._target += speed * delta
        # else: hold — a moderately filled RTP queue means the target
        # already matches what the window transmits; ramping further
        # would sawtooth straight into the 100 ms discard guard.

        # Never target more than the window demonstrably carries...
        ceiling = self.throughput_headroom * window_throughput
        # ...nor much more than the path actually delivered lately —
        # the target must track the transmit/ack rate, otherwise the
        # RTP queue grows without bound until the 100 ms discard.
        if ack_rate is not None and ack_rate > 0:
            ceiling = min(ceiling, self.ack_rate_headroom * ack_rate)
        self._target = min(self._target, max(ceiling, self.min_bitrate))
        self._target = min(max(self._target, self.min_bitrate), self.max_bitrate)
        return self._target
