"""SCReAM congestion-window (network) control.

Implements the self-clocked window logic of RFC 8298 / Johansson
(CSWS '14): the sender may keep at most ``cwnd`` bytes in flight;
``cwnd`` grows while the estimated queuing delay is below the target
(default 60 ms) and shrinks when it is above or when a loss event
occurs (multiplicative 0.8 back-off, at most once per RTT).

The queuing delay is the one-way delay minus a windowed minimum
("base delay"). Clocks at both ends are synchronized in the
simulation, matching the paper's GPS-disciplined setup.
"""

from __future__ import annotations

from repro.util.running import EwmaFilter, WindowedMinMax
from repro.util.units import bytes_to_bits

#: Maximum segment size used for cwnd arithmetic (bytes).
MSS = 1200


class ScreamWindow:
    """Self-clocked congestion window."""

    def __init__(
        self,
        *,
        qdelay_target: float = 0.06,
        gain: float = 1.0,
        loss_beta: float = 0.8,
        min_cwnd: int = 2 * MSS,
        base_delay_window: float = 30.0,
        bytes_in_flight_headroom: float = 2.0,
    ) -> None:
        if qdelay_target <= 0:
            raise ValueError(f"qdelay_target must be positive: {qdelay_target}")
        self.qdelay_target = qdelay_target
        self.gain = gain
        self.loss_beta = loss_beta
        self.min_cwnd = min_cwnd
        self.cwnd = 10 * MSS
        self.bytes_in_flight = 0
        self._base_delay = WindowedMinMax(base_delay_window)
        self._qdelay_avg = EwmaFilter(alpha=0.25)
        self._max_bif = WindowedMinMax(1.0)
        self._headroom = bytes_in_flight_headroom
        self._last_loss_event: float | None = None
        self.srtt = 0.05
        self.loss_events = 0

    @property
    def qdelay(self) -> float:
        """Smoothed queuing-delay estimate in seconds."""
        return self._qdelay_avg.value or 0.0

    @property
    def base_delay(self) -> float:
        """Current base one-way delay estimate in seconds."""
        value = self._base_delay.minimum
        return 0.0 if value != value else value  # NaN check

    def can_send(self, packet_size: int) -> bool:
        """Whether the window admits ``packet_size`` more bytes."""
        return self.bytes_in_flight + packet_size <= self.cwnd

    def on_packet_sent(self, size_bytes: int, now: float) -> None:
        """Account a transmitted packet against the window."""
        self.bytes_in_flight += size_bytes
        self._max_bif.update(now, self.bytes_in_flight)

    def on_packet_acked(
        self, size_bytes: int, one_way_delay: float, now: float
    ) -> None:
        """Process an acknowledgment carrying a delay sample."""
        self.bytes_in_flight = max(0, self.bytes_in_flight - size_bytes)
        self._base_delay.update(now, one_way_delay)
        qdelay = max(0.0, one_way_delay - self.base_delay)
        self._qdelay_avg.update(qdelay)
        self._grow(size_bytes, now)

    def on_packet_lost(self, size_bytes: int, now: float) -> None:
        """Process a loss indication (true or false — SCReAM cannot tell)."""
        self.bytes_in_flight = max(0, self.bytes_in_flight - size_bytes)
        if (
            self._last_loss_event is not None
            and now - self._last_loss_event < self.srtt
        ):
            return  # at most one multiplicative back-off per RTT
        self._last_loss_event = now
        self.loss_events += 1
        self.cwnd = max(self.min_cwnd, int(self.cwnd * self.loss_beta))

    def update_srtt(self, rtt_sample: float) -> None:
        """Fold a round-trip-time sample into the smoothed RTT."""
        if rtt_sample > 0:
            self.srtt = 0.9 * self.srtt + 0.1 * rtt_sample

    def _grow(self, bytes_acked: int, now: float) -> None:
        off_target = (self.qdelay_target - self.qdelay) / self.qdelay_target
        if off_target > 0:
            increment = (
                self.gain * off_target * bytes_acked * MSS / max(self.cwnd, 1)
            )
            self.cwnd += int(increment)
        else:
            # Above target: proportional gentle decrease (RFC 8298).
            decrement = (
                self.gain
                * abs(off_target)
                * bytes_acked
                * MSS
                / max(self.cwnd, 1)
            )
            self.cwnd -= int(0.5 * decrement)
        # Never grow far beyond what is actually being used.
        max_bif = self._max_bif.maximum
        if max_bif == max_bif:  # not NaN
            ceiling = max(self.min_cwnd, int(self._headroom * max_bif) + MSS)
            self.cwnd = min(self.cwnd, ceiling)
        self.cwnd = max(self.cwnd, self.min_cwnd)

    def throughput_estimate(self) -> float:
        """Rate the current window can sustain, in bits/s."""
        return bytes_to_bits(self.cwnd) / max(self.srtt, 1e-3)
