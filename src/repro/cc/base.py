"""Congestion-controller interface shared by GCC, SCReAM and static CBR.

The sender pipeline (:mod:`repro.core.sender`) drives a controller
through a narrow interface:

* :meth:`CongestionController.target_bitrate` — what the encoder
  should produce (sampled at frame boundaries);
* :meth:`CongestionController.pacing_rate` — how fast the pacer may
  drain the RTP send queue;
* :meth:`CongestionController.can_send` — window gate (SCReAM limits
  bytes in flight to its cwnd; GCC and static always allow);
* :meth:`CongestionController.on_packet_sent` /
  :meth:`CongestionController.on_feedback` — the event feed.

Controllers also declare which RTCP feedback flavour the receiver must
generate (:attr:`FeedbackKind`), mirroring the paper's setup where GCC
used transport-wide-CC feedback and SCReAM used RFC 8888.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any

from repro.obs import NULL_RECORDER


class FeedbackKind(enum.Enum):
    """Which RTCP extension the receiver must produce for a controller."""

    NONE = "none"
    TWCC = "twcc"
    CCFB = "ccfb"


@dataclass(slots=True)
class SentPacket:
    """Sender-side record of a transmitted RTP packet."""

    sequence: int
    transport_seq: int | None
    size_bytes: int
    send_time: float
    frame_id: int = -1
    acked: bool = False
    lost: bool = False


@dataclass(slots=True)
class CcLogEntry:
    """One sample of a controller's internal state, for analysis."""

    time: float
    target_bitrate: float
    extra: dict[str, float] = field(default_factory=dict)


class CongestionController:
    """Base class for bitrate controllers.

    Subclasses override the event hooks; the base class provides the
    target-bitrate log that the experiment harness reads.
    """

    #: RTCP feedback flavour this controller consumes.
    feedback_kind: FeedbackKind = FeedbackKind.NONE
    #: Whether RTP packets must carry the transport-wide sequence ext.
    uses_transport_seq: bool = False
    #: Receiver feedback interval in seconds (ignored for NONE).
    feedback_interval: float = 0.05

    def __init__(self, initial_bitrate: float) -> None:
        if initial_bitrate <= 0:
            raise ValueError(f"initial_bitrate must be positive: {initial_bitrate}")
        self._target_bitrate = float(initial_bitrate)
        self.log: list[CcLogEntry] = []
        #: Observability recorder; the session wires a live one in
        #: for traced runs, everything else keeps the null recorder.
        self.obs = NULL_RECORDER

    def target_bitrate(self, now: float) -> float:
        """Bitrate the encoder should currently produce (bits/s)."""
        return self._target_bitrate

    def pacing_rate(self, now: float) -> float:
        """Rate at which the pacer may drain the send queue (bits/s)."""
        return math.inf

    def can_send(self, bytes_in_flight: int, packet_size: int, now: float) -> bool:
        """Whether the window allows sending ``packet_size`` more bytes."""
        return True

    def on_packet_sent(self, packet: SentPacket, now: float) -> None:
        """Notification that ``packet`` left the pacer."""

    def on_feedback(self, feedback: Any, now: float) -> None:
        """Deliver an RTCP feedback message (TWCC or CCFB)."""

    def on_queue_state(self, queue_delay: float, queue_bytes: int, now: float) -> None:
        """Periodic report of the sender RTP queue state."""

    def _record(self, now: float, **extra: float) -> None:
        self.log.append(
            CcLogEntry(time=now, target_bitrate=self._target_bitrate, extra=extra)
        )


class StaticBitrateController(CongestionController):
    """Constant-bitrate "controller" — the paper's baseline.

    The paper transmits at the highest stable rate found in trial
    runs: 25 Mbps urban, 8 Mbps rural. No feedback is consumed and
    packets leave as soon as they are packetized.
    """

    feedback_kind = FeedbackKind.NONE
    uses_transport_seq = False

    def __init__(self, bitrate: float) -> None:
        super().__init__(bitrate)

    def target_bitrate(self, now: float) -> float:
        return self._target_bitrate
