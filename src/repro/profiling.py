"""Profiling harness for the simulation pipeline.

``repro profile`` wraps one workload — a single session or one of the
paper's figure campaigns — in a profiler and writes two artifacts:

* a ranked plain-text report (cumulative time by default), the thing
  you read to find the next hot spot;
* a machine-readable JSON summary (top functions with call counts and
  timings), the thing CI archives so regressions in the profile shape
  can be compared across commits.

The default engine is :mod:`cProfile` from the standard library, which
is always available. When `pyinstrument <https://pyinstrument.readthedocs.io>`_
happens to be installed, ``--engine auto`` (the default) prefers its
wall-clock sampling output; the dependency is strictly optional and
nothing here imports it unconditionally.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

try:  # optional, never required
    from pyinstrument import Profiler as _PyinstrumentProfiler
except ImportError:  # pragma: no cover - exercised only without the dep
    _PyinstrumentProfiler = None

#: Engines accepted by :func:`profile_callable`.
ENGINES = ("auto", "cprofile", "pyinstrument")


def available_engines() -> tuple[str, ...]:
    """Concrete engines usable in this environment."""
    if _PyinstrumentProfiler is not None:
        return ("cprofile", "pyinstrument")
    return ("cprofile",)


def resolve_engine(requested: str) -> str:
    """Map an ``--engine`` value to a concrete engine.

    ``auto`` prefers pyinstrument when installed and falls back to
    cProfile. Asking explicitly for pyinstrument without the package
    raises, so CI failures are loud rather than silently different.
    """
    if requested not in ENGINES:
        raise ValueError(f"unknown engine {requested!r}; choices: {ENGINES}")
    if requested == "auto":
        return "pyinstrument" if _PyinstrumentProfiler is not None else "cprofile"
    if requested == "pyinstrument" and _PyinstrumentProfiler is None:
        raise RuntimeError(
            "pyinstrument is not installed; use --engine cprofile (or auto)"
        )
    return requested


@dataclass
class ProfileReport:
    """Everything one profiling run produced."""

    target: str
    engine: str
    wall_time: float
    text: str
    summary: dict = field(default_factory=dict)

    def write(self, out_dir: Path | str) -> tuple[Path, Path]:
        """Write the text report and JSON summary under ``out_dir``.

        Returns ``(text_path, json_path)``.
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        slug = self.target.replace("/", "-")
        text_path = out / f"{slug}.txt"
        json_path = out / f"{slug}.json"
        text_path.write_text(self.text)
        json_path.write_text(json.dumps(self.summary, indent=2, sort_keys=True))
        return text_path, json_path


def _cprofile_summary(
    stats: pstats.Stats, *, top: int, sort: str
) -> list[dict]:
    """Top-``top`` rows of a cProfile run as plain dicts."""
    key = {"cumulative": 3, "tottime": 2}[sort]
    rows = sorted(
        stats.stats.items(), key=lambda item: item[1][key], reverse=True
    )
    summary = []
    for (filename, line, name), (ccalls, ncalls, tottime, cumtime, _) in rows[:top]:
        summary.append(
            {
                "function": name,
                "file": filename,
                "line": line,
                "calls": ncalls,
                "primitive_calls": ccalls,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
    return summary


def profile_callable(
    fn: Callable[[], object],
    *,
    target: str,
    engine: str = "auto",
    top: int = 30,
    sort: str = "cumulative",
) -> ProfileReport:
    """Run ``fn`` under a profiler and assemble a :class:`ProfileReport`.

    ``sort`` ranks the text report and JSON summary by ``cumulative``
    or ``tottime`` (cProfile engine; pyinstrument always reports its
    own wall-clock tree).
    """
    if sort not in ("cumulative", "tottime"):
        raise ValueError(f"sort must be 'cumulative' or 'tottime', got {sort!r}")
    concrete = resolve_engine(engine)
    # Wall-clock telemetry about the host run, not simulated time.
    start = time.perf_counter()  # repro-lint: ignore[RPL001]
    if concrete == "pyinstrument":
        profiler = _PyinstrumentProfiler()
        profiler.start()
        try:
            fn()
        finally:
            profiler.stop()
        wall = time.perf_counter() - start  # repro-lint: ignore[RPL001]
        text = profiler.output_text(unicode=True, color=False)
        summary = {
            "schema": 1,
            "target": target,
            "engine": concrete,
            "wall_time_s": round(wall, 4),
        }
        return ProfileReport(
            target=target, engine=concrete, wall_time=wall, text=text,
            summary=summary,
        )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        fn()
    finally:
        profiler.disable()
    wall = time.perf_counter() - start  # repro-lint: ignore[RPL001]
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    summary = {
        "schema": 1,
        "target": target,
        "engine": concrete,
        "wall_time_s": round(wall, 4),
        "sort": sort,
        "top": _cprofile_summary(stats, top=top, sort=sort),
    }
    return ProfileReport(
        target=target, engine=concrete, wall_time=wall,
        text=buffer.getvalue(), summary=summary,
    )
