"""Network-level metrics derived from a session's packet/RRC logs.

Computes the Section 4.1 quantities: handover frequency (events/s),
HET distributions, one-way latency, goodput and packet error rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellular.handover import HET_SUCCESS_THRESHOLD, HandoverEvent
from repro.core.receiver import PacketLogEntry
from repro.core.session import SessionResult
from repro.metrics.stats import BoxplotSummary, Cdf, windowed_rate
from repro.util.units import bytes_to_bits, to_mbps, to_ms


@dataclass
class HandoverMetrics:
    """Handover statistics of one run (Fig. 4)."""

    frequency_per_s: float
    het_seconds: list[float]
    successful_fraction: float
    count: int

    @classmethod
    def from_events(
        cls, events: list[HandoverEvent], duration: float
    ) -> "HandoverMetrics":
        """Reduce RRC handover events over a run of ``duration`` seconds."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        hets = [event.execution_time for event in events]
        successful = (
            sum(1 for h in hets if h <= HET_SUCCESS_THRESHOLD) / len(hets)
            if hets
            else 1.0
        )
        return cls(
            frequency_per_s=len(events) / duration,
            het_seconds=hets,
            successful_fraction=successful,
            count=len(events),
        )

    def het_summary(self) -> BoxplotSummary | None:
        """Boxplot summary of HET values, or ``None`` without events."""
        if not self.het_seconds:
            return None
        return BoxplotSummary.from_samples(self.het_seconds)


def one_way_delays(packet_log: list[PacketLogEntry]) -> list[float]:
    """Per-packet one-way delay samples (seconds)."""
    return [entry.received_at - entry.sent_at for entry in packet_log]


def owd_cdf(packet_log: list[PacketLogEntry]) -> Cdf:
    """Empirical one-way-delay CDF (Fig. 5)."""
    return Cdf.from_samples(one_way_delays(packet_log))


def goodput_series(
    packet_log: list[PacketLogEntry],
    *,
    window: float = 1.0,
    duration: float | None = None,
) -> list[tuple[float, float]]:
    """Received-rate time series in bits/s per ``window`` seconds."""
    return windowed_rate(
        [entry.received_at for entry in packet_log],
        [entry.size_bytes for entry in packet_log],
        window=window,
        t_start=0.0,
        t_end=duration,
    )


def goodput_summary(
    packet_log: list[PacketLogEntry],
    *,
    duration: float,
    warmup: float = 0.0,
) -> BoxplotSummary:
    """Boxplot summary of per-second goodput (Fig. 6), in bits/s.

    ``warmup`` seconds are excluded so CC ramp-up does not dominate the
    lower tail when that is not the object of study.
    """
    series = [
        rate
        for t, rate in goodput_series(packet_log, duration=duration)
        if t >= warmup
    ]
    return BoxplotSummary.from_samples(series)


def average_goodput(
    packet_log: list[PacketLogEntry], *, duration: float, warmup: float = 0.0
) -> float:
    """Mean received rate in bits/s over the run (after ``warmup``)."""
    total = sum(
        entry.size_bytes
        for entry in packet_log
        if entry.received_at >= warmup
    )
    span = max(duration - warmup, 1e-9)
    return bytes_to_bits(total) / span


@dataclass
class LossMetrics:
    """Packet error rate and burstiness (Section 4.1)."""

    sent: int
    delivered: int
    loss_rate: float
    mean_burst_length: float

    @classmethod
    def from_result(cls, result: SessionResult) -> "LossMetrics":
        """Compute end-to-end loss stats for one run."""
        sent = result.packets_sent
        delivered = len(result.packet_log)
        loss_rate = max(0.0, 1.0 - delivered / sent) if sent else 0.0
        bursts = _loss_burst_lengths(result.packet_log)
        mean_burst = float(np.mean(bursts)) if bursts else 0.0
        return cls(
            sent=sent,
            delivered=delivered,
            loss_rate=loss_rate,
            mean_burst_length=mean_burst,
        )


def _loss_burst_lengths(packet_log: list[PacketLogEntry]) -> list[int]:
    """Lengths of consecutive sequence-number gaps in the receive log.

    The receive path is FIFO, so arrival order equals send order and a
    jump of ``k`` in consecutive received frame-local sequence numbers
    means ``k - 1`` packets were dropped back to back.
    """
    bursts: list[int] = []
    previous: int | None = None
    for entry in packet_log:
        if previous is not None:
            gap = (entry.sequence - previous) % (1 << 16)
            if gap > 1:
                bursts.append(gap - 1)
        previous = entry.sequence
    return bursts


def network_summary(result: SessionResult) -> dict[str, float]:
    """One-line network summary for reports."""
    handovers = HandoverMetrics.from_events(result.handovers, result.duration)
    loss = LossMetrics.from_result(result)
    owds = one_way_delays(result.packet_log)
    return {
        "ho_per_s": handovers.frequency_per_s,
        "het_median_ms": to_ms(float(np.median(handovers.het_seconds)))
        if handovers.het_seconds
        else 0.0,
        "owd_median_ms": to_ms(float(np.median(owds))) if owds else 0.0,
        "owd_p99_ms": to_ms(float(np.percentile(owds, 99))) if owds else 0.0,
        "goodput_mbps": to_mbps(
            average_goodput(result.packet_log, duration=result.duration)
        ),
        "loss_rate": loss.loss_rate,
        "cells_seen": float(result.cells_seen),
    }
