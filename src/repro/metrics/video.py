"""Video-delivery metrics (Section 3.2 / 4.2 of the paper).

* **FPS** — played frames per one-second window, compared against the
  30 FPS source rate (Fig. 7a);
* **playback latency** — encode-to-display per frame, with the RP
  threshold of 300 ms (Fig. 7c);
* **SSIM** — per-frame quality, counting never-played frames as 0 and
  using the paper's 0.5 acceptability threshold (Fig. 7b);
* **stalls** — inter-frame display gaps exceeding 300 ms, reported as
  stalls/minute (Section 4.2.1: SCReAM 0.89, GCC 1.37, static 0.11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.session import SessionResult
from repro.metrics.stats import Cdf
from repro.video.player import PlaybackRecord
from repro.util.units import to_ms

#: RP latency / stall threshold the paper derives (~300 ms).
RP_LATENCY_THRESHOLD = 0.300
#: SSIM acceptability threshold for remote piloting (Section 4.2.3).
SSIM_THRESHOLD = 0.5


def fps_series(
    playback: list[PlaybackRecord], *, duration: float, window: float = 1.0
) -> list[tuple[float, float]]:
    """Frames displayed per ``window`` over the run."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    edges = np.arange(0.0, duration + window, window)
    times = np.asarray([record.play_time for record in playback], dtype=float)
    counts, _ = np.histogram(times, bins=edges)
    return [(float(edges[i]), float(counts[i] / window)) for i in range(len(counts))]


def fps_cdf(
    playback: list[PlaybackRecord], *, duration: float, warmup: float = 0.0
) -> Cdf:
    """CDF of the per-second frame rate (Fig. 7a)."""
    samples = [
        fps for t, fps in fps_series(playback, duration=duration) if t >= warmup
    ]
    return Cdf.from_samples(samples)


def playback_latencies(playback: list[PlaybackRecord]) -> list[float]:
    """Per-frame encode-to-display latency samples in seconds."""
    return [record.playback_latency for record in playback]


def playback_latency_cdf(playback: list[PlaybackRecord]) -> Cdf:
    """CDF of the playback latency (Fig. 7c)."""
    return Cdf.from_samples(playback_latencies(playback))


def ssim_samples(
    playback: list[PlaybackRecord], *, frames_encoded: int
) -> list[float]:
    """Per-frame SSIM, padding never-played frames with 0.

    The paper scores a frame 0 "if the frame was not played"; frames
    that were encoded but never displayed therefore count against the
    quality distribution.
    """
    played = [record.ssim for record in playback]
    missing = max(0, frames_encoded - len(played))
    return played + [0.0] * missing


def ssim_cdf(playback: list[PlaybackRecord], *, frames_encoded: int) -> Cdf:
    """CDF of per-frame SSIM including unplayed frames (Fig. 7b)."""
    return Cdf.from_samples(ssim_samples(playback, frames_encoded=frames_encoded))


@dataclass
class StallMetrics:
    """Video stall accounting (inter-frame gap > 300 ms)."""

    stall_count: int
    stalls_per_minute: float
    total_stall_time: float
    longest_stall: float

    @classmethod
    def from_playback(
        cls,
        playback: list[PlaybackRecord],
        *,
        duration: float,
        threshold: float = RP_LATENCY_THRESHOLD,
    ) -> "StallMetrics":
        """Detect stalls in the playback record of one run."""
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        gaps = [
            b.play_time - a.play_time
            for a, b in zip(playback, playback[1:])
        ]
        stalls = [gap for gap in gaps if gap > threshold]
        return cls(
            stall_count=len(stalls),
            stalls_per_minute=len(stalls) / (duration / 60.0),
            total_stall_time=float(sum(stalls)),
            longest_stall=float(max(stalls)) if stalls else 0.0,
        )


@dataclass
class VideoSummary:
    """The headline per-run video numbers the paper reports."""

    mean_fps: float
    fraction_full_fps: float
    latency_below_threshold: float
    median_latency_ms: float
    ssim_above_threshold: float
    median_ssim: float
    stalls_per_minute: float
    frames_played: int

    @classmethod
    def from_result(
        cls, result: SessionResult, *, warmup: float = 0.0
    ) -> "VideoSummary":
        """Compute the summary for one session."""
        playback = [r for r in result.playback if r.play_time >= warmup]
        if not playback:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
        duration = result.duration
        fps = fps_cdf(playback, duration=duration, warmup=warmup)
        latency = playback_latency_cdf(playback)
        frames_encoded = max(
            result.sender_stats.frames_encoded - int(warmup * result.config.fps), 1
        )
        ssim = ssim_cdf(playback, frames_encoded=frames_encoded)
        stalls = StallMetrics.from_playback(playback, duration=duration - warmup)
        return cls(
            mean_fps=fps.mean,
            fraction_full_fps=fps.fraction_above(result.config.fps - 2.0),
            latency_below_threshold=latency.fraction_below(RP_LATENCY_THRESHOLD),
            median_latency_ms=to_ms(latency.median),
            ssim_above_threshold=ssim.fraction_above(SSIM_THRESHOLD),
            median_ssim=ssim.median,
            stalls_per_minute=stalls.stalls_per_minute,
            frames_played=len(playback),
        )
