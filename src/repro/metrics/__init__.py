"""Metrics: statistics primitives, network and video reductions."""

from repro.metrics.stats import BoxplotSummary, Cdf, windowed_rate
from repro.metrics.network import (
    HandoverMetrics,
    LossMetrics,
    one_way_delays,
    owd_cdf,
    goodput_series,
    goodput_summary,
    average_goodput,
    network_summary,
)
from repro.metrics.video import (
    RP_LATENCY_THRESHOLD,
    SSIM_THRESHOLD,
    fps_series,
    fps_cdf,
    playback_latencies,
    playback_latency_cdf,
    ssim_samples,
    ssim_cdf,
    StallMetrics,
    VideoSummary,
)
from repro.metrics.howindow import (
    HoWindowRatio,
    HoRatioSummary,
    handover_latency_ratios,
    latency_ratio_in_window,
)

__all__ = [
    "BoxplotSummary",
    "Cdf",
    "windowed_rate",
    "HandoverMetrics",
    "LossMetrics",
    "one_way_delays",
    "owd_cdf",
    "goodput_series",
    "goodput_summary",
    "average_goodput",
    "network_summary",
    "RP_LATENCY_THRESHOLD",
    "SSIM_THRESHOLD",
    "fps_series",
    "fps_cdf",
    "playback_latencies",
    "playback_latency_cdf",
    "ssim_samples",
    "ssim_cdf",
    "StallMetrics",
    "VideoSummary",
    "HoWindowRatio",
    "HoRatioSummary",
    "handover_latency_ratios",
    "latency_ratio_in_window",
]
