"""Statistics helpers: CDFs, percentiles, boxplot summaries.

These are the reduction primitives the experiment harness uses to turn
raw per-packet / per-frame logs into the numbers the paper's figures
plot (CDF curves, boxplot five-number summaries, exceedance
fractions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.util.units import bytes_to_bits


@dataclass
class BoxplotSummary:
    """Five-number summary plus mean — one boxplot in a paper figure."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxplotSummary":
        """Compute the summary of ``samples`` (must be non-empty)."""
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("cannot summarize empty sample set")
        q1, median, q3 = np.percentile(arr, [25, 50, 75])
        return cls(
            minimum=float(arr.min()),
            q1=float(q1),
            median=float(median),
            q3=float(q3),
            maximum=float(arr.max()),
            mean=float(arr.mean()),
            count=int(arr.size),
        )

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q3 - self.q1

    def outliers_above(self, samples: Sequence[float]) -> list[float]:
        """Values above the classic ``q3 + 1.5 * IQR`` whisker."""
        fence = self.q3 + 1.5 * self.iqr
        return [float(v) for v in samples if v > fence]


@dataclass
class Cdf:
    """An empirical CDF over a sample set."""

    values: np.ndarray  # sorted

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Cdf":
        """Build from raw samples."""
        arr = np.sort(np.asarray(list(samples), dtype=float))
        if arr.size == 0:
            raise ValueError("cannot build CDF from empty sample set")
        return cls(values=arr)

    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold)."""
        return float(np.searchsorted(self.values, threshold, side="right")) / len(
            self.values
        )

    def fraction_above(self, threshold: float) -> float:
        """P(X > threshold)."""
        return 1.0 - self.fraction_below(threshold)

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` in [0, 100]."""
        return float(np.percentile(self.values, q))

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(self.values.mean())

    @property
    def median(self) -> float:
        """Sample median."""
        return self.percentile(50.0)

    def evaluate(self, points: Sequence[float]) -> list[tuple[float, float]]:
        """CDF values at ``points`` — the (x, y) pairs of a plot line."""
        return [(float(p), self.fraction_below(float(p))) for p in points]


def windowed_rate(
    times: Sequence[float],
    sizes_bytes: Sequence[float],
    *,
    window: float = 1.0,
    t_start: float | None = None,
    t_end: float | None = None,
) -> list[tuple[float, float]]:
    """Aggregate a packet log into per-window throughput.

    Returns ``(window_start_time, bits_per_second)`` pairs covering
    ``[t_start, t_end)``.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    times_arr = np.asarray(times, dtype=float)
    sizes_arr = np.asarray(sizes_bytes, dtype=float)
    if times_arr.size == 0:
        return []
    lo = times_arr.min() if t_start is None else t_start
    hi = times_arr.max() if t_end is None else t_end
    if hi <= lo:
        return []
    edges = np.arange(lo, hi + window, window)
    sums, _ = np.histogram(times_arr, bins=edges, weights=sizes_arr)
    return [
        (float(edges[i]), float(bytes_to_bits(sums[i]) / window))
        for i in range(len(sums))
    ]
