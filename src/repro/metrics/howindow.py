"""Handover latency-window analysis (Fig. 8 / Fig. 9).

The paper quantifies how handovers perturb the one-way network
latency: for every handover it takes the 1-second windows immediately
before and after the event and computes the maximum-to-minimum
latency ratio within each window. Before a handover the maximum is on
average ~8x the minimum (outliers up to 37x); after, ~5x — evidence
that degrading radio conditions build queues *before* the HO fires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cellular.handover import HandoverEvent
from repro.core.receiver import PacketLogEntry
from repro.metrics.stats import BoxplotSummary


@dataclass
class HoWindowRatio:
    """Latency max/min ratios around one handover."""

    handover_time: float
    before_ratio: float | None
    after_ratio: float | None


def latency_ratio_in_window(
    times: np.ndarray,
    delays: np.ndarray,
    start: float,
    end: float,
    *,
    min_samples: int = 5,
) -> float | None:
    """Max/min one-way delay within ``[start, end)``.

    Returns ``None`` when fewer than ``min_samples`` packets fall in
    the window (e.g. during the HO outage itself).
    """
    mask = (times >= start) & (times < end)
    window = delays[mask]
    if window.size < min_samples:
        return None
    smallest = float(window.min())
    if smallest <= 0:
        return None
    return float(window.max()) / smallest


def handover_latency_ratios(
    packet_log: list[PacketLogEntry],
    handovers: list[HandoverEvent],
    *,
    window: float = 1.0,
) -> list[HoWindowRatio]:
    """Compute per-handover before/after latency ratios (Fig. 9).

    Windows are indexed by packet *send* time: a packet transmitted
    just before the handover and delayed through the execution gap
    contributes its (large) delay to the *before* window — which is
    why the paper finds the bigger spikes before handovers.
    """
    if not packet_log:
        return []
    times = np.asarray([entry.sent_at for entry in packet_log])
    delays = np.asarray(
        [entry.received_at - entry.sent_at for entry in packet_log]
    )
    ratios: list[HoWindowRatio] = []
    for event in handovers:
        t_start = event.time
        t_end = event.time + event.execution_time
        ratios.append(
            HoWindowRatio(
                handover_time=event.time,
                before_ratio=latency_ratio_in_window(
                    times, delays, t_start - window, t_start
                ),
                after_ratio=latency_ratio_in_window(
                    times, delays, t_end, t_end + window
                ),
            )
        )
    return ratios


@dataclass
class HoRatioSummary:
    """Aggregated before/after ratios across all handovers (Fig. 9)."""

    before: BoxplotSummary | None
    after: BoxplotSummary | None

    @classmethod
    def from_ratios(cls, ratios: list[HoWindowRatio]) -> "HoRatioSummary":
        """Aggregate a list of per-handover ratios."""
        before = [r.before_ratio for r in ratios if r.before_ratio is not None]
        after = [r.after_ratio for r in ratios if r.after_ratio is not None]
        return cls(
            before=BoxplotSummary.from_samples(before) if before else None,
            after=BoxplotSummary.from_samples(after) if after else None,
        )
