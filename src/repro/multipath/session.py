"""Multipath video delivery over two operators (Section 5 extension).

The paper's discussion and conclusion repeatedly point at multipath
transport over parallel cellular links (multiple MNOs, MPTCP/MP-QUIC)
as the way to buy reliability: "utilizing multiple access links
towards the ground station [...] can help improve the reliability of
transmissions when one of the underlying networks is experiencing
deteriorations". This module implements that future-work experiment:
one video sender feeding **two independent LTE channels** (operator
P1 and P2, independent cells, shadowing, handovers) with either

* ``duplicate`` — every RTP packet is sent on both links; the
  receiver deduplicates and keeps whichever copy arrives first
  (maximum reliability, 2x the radio cost), or
* ``roundrobin`` — packets alternate between the links (aggregated
  capacity, partial protection).

Handovers and fades on the two networks are uncorrelated, so the
duplicate mode removes almost every outage-induced latency spike —
the quantitative version of the paper's multipath argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cc.base import StaticBitrateController
from repro.cellular.channel import CellularChannel
from repro.cellular.handover import HandoverEvent
from repro.cellular.operators import get_profile
from repro.core.config import CcAlgorithm, ScenarioConfig
from repro.core.receiver import PacketLogEntry, VideoReceiver
from repro.core.sender import SenderStats, VideoSender
from repro.core.session import build_channel_config, build_trajectory
from repro.net.loss import GilbertElliottLoss
from repro.net.packet import Datagram, reset_datagram_ids
from repro.net.path import NetworkPath
from repro.net.simulator import EventLoop
from repro.rtp.packets import RtpPacket, seq_distance
from repro.util.rng import RngStreams
from repro.video.encoder import EncoderModel
from repro.video.player import PlaybackRecord
from repro.video.source import SourceVideo

MODES = ("duplicate", "roundrobin")


class MultipathUplink:
    """Fans datagrams out over several uplink paths.

    Looks like a single :class:`repro.net.path.NetworkPath` to the
    sender; scheduling is either full duplication or per-packet
    round-robin.
    """

    def __init__(self, paths: list[NetworkPath], mode: str = "duplicate") -> None:
        if not paths:
            raise ValueError("need at least one path")
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.paths = paths
        self.mode = mode
        self._next = 0
        self.sent_per_path = [0] * len(paths)

    def send(self, datagram: Datagram) -> None:
        """Schedule ``datagram`` onto the member paths."""
        if self.mode == "duplicate":
            for index, path in enumerate(self.paths):
                copy = Datagram(
                    size_bytes=datagram.size_bytes, payload=datagram.payload
                )
                self.sent_per_path[index] += 1
                path.send(copy)
        else:
            index = self._next
            self._next = (self._next + 1) % len(self.paths)
            self.sent_per_path[index] += 1
            self.paths[index].send(datagram)

    def set_up(self, up: bool) -> None:
        """No-op: outages are driven per member path by its channel."""


class DedupReceiver:
    """Drops duplicate RTP sequence numbers before the receiver.

    Keeps whichever copy of a packet arrives first — exactly what an
    MPTCP/MP-QUIC receive queue would deliver upward.
    """

    def __init__(self, receiver: VideoReceiver, *, window: int = 4096) -> None:
        self._receiver = receiver
        self._window = window
        self._seen: set[int] = set()
        self._highest: int | None = None
        self.duplicates = 0

    def on_datagram(self, datagram: Datagram) -> None:
        """Forward first copies; count and drop duplicates."""
        if not isinstance(datagram.payload, RtpPacket):
            # RTCP (sender reports) pass straight through; receiving
            # a duplicated SR is harmless.
            self._receiver.on_datagram(datagram)
            return
        sequence = datagram.payload.sequence
        if sequence in self._seen:
            self.duplicates += 1
            return
        self._seen.add(sequence)
        if self._highest is None or seq_distance(self._highest, sequence) > 0:
            self._highest = sequence
        # Expire entries far below the highest sequence seen.
        if len(self._seen) > 2 * self._window:
            horizon = self._highest
            self._seen = {
                seq
                for seq in self._seen
                if seq_distance(seq, horizon) < self._window
            }
        self._receiver.on_datagram(datagram)


@dataclass
class MultipathResult:
    """Artifacts of one multipath run."""

    config: ScenarioConfig
    mode: str
    duration: float
    packet_log: list[PacketLogEntry]
    playback: list[PlaybackRecord]
    handovers_per_path: list[list[HandoverEvent]]
    sender_stats: SenderStats
    duplicates_dropped: int
    sent_per_path: list[int] = field(default_factory=list)


def run_multipath_session(
    config: ScenarioConfig,
    *,
    mode: str = "duplicate",
    operators: tuple[str, str] = ("P1", "P2"),
) -> MultipathResult:
    """Run a static-bitrate flight over two parallel operators.

    Multipath scheduling of *adaptive* streams requires per-path
    congestion control (MPTCP-style coupling) that neither GCC nor
    SCReAM defines; like the paper's discussion, this experiment uses
    the constant-bitrate workload to isolate the reliability effect.
    """
    if config.cc is not CcAlgorithm.STATIC:
        raise ValueError("multipath sessions support the static workload only")
    reset_datagram_ids()
    loop = EventLoop()
    streams = RngStreams(config.seed)
    trajectory = build_trajectory(config, streams)
    controller = StaticBitrateController(config.effective_static_bitrate)
    receiver_holder: list[DedupReceiver] = []

    paths: list[NetworkPath] = []
    channels: list[CellularChannel] = []
    for index, operator in enumerate(operators):
        substreams = streams.child(f"op-{operator}-{index}")
        profile = get_profile(operator, config.environment.value)
        layout = profile.build_layout(substreams.derive("layout"))
        channel = CellularChannel(
            loop,
            layout,
            profile,
            trajectory,
            substreams.child("channel"),
            config=build_channel_config(config),
            horizon=config.duration,
        )
        path = NetworkPath(
            loop,
            channel.uplink_rate,
            lambda datagram: receiver_holder[0].on_datagram(datagram),
            base_delay=config.base_owd,
            jitter_std=config.owd_jitter_std,
            loss_model=GilbertElliottLoss.from_rate_and_burst(
                config.loss_rate,
                config.loss_mean_burst,
                substreams.derive("loss"),
            ),
            buffer_bytes=config.uplink_buffer_bytes,
            rng=substreams.derive("jitter"),
        )
        channel.attach_path(path)
        channels.append(channel)
        paths.append(path)

    uplink = MultipathUplink(paths, mode=mode)
    downlink = NetworkPath(  # unused for static (no feedback) but wired
        loop,
        channels[0].downlink_rate,
        lambda datagram: None,
        base_delay=config.base_owd,
        jitter_std=0.0,
    )
    source = SourceVideo(streams.derive("source"), fps=config.fps)
    encoder = EncoderModel(
        streams.derive("encoder"),
        fps=config.fps,
        min_bitrate=config.min_bitrate,
        max_bitrate=config.max_bitrate,
        initial_bitrate=controller.target_bitrate(0.0),
    )
    sender = VideoSender(loop, source, encoder, controller, uplink)
    receiver = VideoReceiver(
        loop,
        controller,
        downlink,
        fps=config.fps,
        jitter_buffer_latency=config.jitter_buffer_latency,
        drop_on_latency=config.jitter_buffer_drop_on_latency,
    )
    receiver_holder.append(DedupReceiver(receiver))

    for channel in channels:
        channel.start()
    sender.start()
    loop.run_until(config.duration)
    sender.stop()

    return MultipathResult(
        config=config,
        mode=mode,
        duration=config.duration,
        packet_log=receiver.packet_log,
        playback=receiver.player.records,
        handovers_per_path=[list(c.engine.events) for c in channels],
        sender_stats=sender.stats,
        duplicates_dropped=receiver_holder[0].duplicates,
        sent_per_path=list(uplink.sent_per_path),
    )
