"""Multipath delivery over parallel operators (Section 5 extension)."""

from repro.multipath.session import (
    MODES,
    DedupReceiver,
    MultipathResult,
    MultipathUplink,
    run_multipath_session,
)

__all__ = [
    "MODES",
    "DedupReceiver",
    "MultipathResult",
    "MultipathUplink",
    "run_multipath_session",
]
