"""RTP/RTCP transport: packets, packetization, feedback, jitter buffer."""

from repro.rtp.packets import (
    RtpPacket,
    RTP_HEADER_BYTES,
    TWCC_EXTENSION_BYTES,
    VIDEO_CLOCK_RATE,
    SEQ_MOD,
    TS_MOD,
    seq_distance,
    seq_less_than,
    timestamp_for,
)
from repro.rtp.packetizer import (
    Packetizer,
    FrameAssembler,
    AssembledFrame,
    DEFAULT_MTU_PAYLOAD,
)
from repro.rtp.jitter_buffer import JitterBuffer
from repro.rtp.twcc import TwccFeedback, TwccRecorder
from repro.rtp.ccfb import CcfbReport, CcfbPacketReport, CcfbRecorder
from repro.rtp.rtcp import (
    SenderReport,
    ReceiverReport,
    ReportBlock,
    RtcpAccountant,
    rtt_from_block,
)

__all__ = [
    "RtpPacket",
    "RTP_HEADER_BYTES",
    "TWCC_EXTENSION_BYTES",
    "VIDEO_CLOCK_RATE",
    "SEQ_MOD",
    "TS_MOD",
    "seq_distance",
    "seq_less_than",
    "timestamp_for",
    "Packetizer",
    "FrameAssembler",
    "AssembledFrame",
    "DEFAULT_MTU_PAYLOAD",
    "JitterBuffer",
    "TwccFeedback",
    "TwccRecorder",
    "CcfbReport",
    "CcfbPacketReport",
    "CcfbRecorder",
    "SenderReport",
    "ReceiverReport",
    "ReportBlock",
    "RtcpAccountant",
    "rtt_from_block",
]
