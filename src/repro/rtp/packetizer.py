"""Fragmentation of encoded video frames into RTP packets and back.

The sender splits each encoded frame into MTU-sized RTP packets (the
H.264 FU-A pattern: a start flag on the first fragment, the RTP marker
bit on the last). The receiver-side :class:`FrameAssembler` regroups
packets into frames, detecting missing fragments through sequence-
number gaps — the signal the decoder model uses to place visual
artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtp.packets import (
    RtpPacket,
    SEQ_MOD,
    seq_distance,
    timestamp_for,
)
from repro.video.frames import EncodedFrame

#: Default RTP payload budget per packet; 1200 bytes keeps the full
#: datagram below typical path MTUs, matching libwebrtc's default.
DEFAULT_MTU_PAYLOAD = 1200


class Packetizer:
    """Splits encoded frames into RTP packets with rolling sequence numbers."""

    def __init__(
        self,
        ssrc: int,
        *,
        mtu_payload: int = DEFAULT_MTU_PAYLOAD,
        first_sequence: int = 0,
        use_transport_seq: bool = False,
    ) -> None:
        if mtu_payload <= 0:
            raise ValueError(f"mtu_payload must be positive, got {mtu_payload}")
        self.ssrc = ssrc
        self.mtu_payload = mtu_payload
        self.use_transport_seq = use_transport_seq
        self._sequence = first_sequence % SEQ_MOD
        self._transport_seq = 0

    @property
    def next_sequence(self) -> int:
        """Sequence number the next produced packet will carry."""
        return self._sequence

    def packetize(self, frame: EncodedFrame, encode_time: float) -> list[RtpPacket]:
        """Fragment ``frame`` into RTP packets.

        ``encode_time`` is stamped into every fragment; it corresponds
        to the timestamp barcode the paper embeds into each frame.
        """
        remaining = frame.size_bytes
        num_packets = max(1, -(-remaining // self.mtu_payload))
        packets: list[RtpPacket] = []
        timestamp = timestamp_for(frame.capture_time)
        # Frame-level info a real decoder would read from the bitstream
        # (NAL type, QP); shared dict so fragments stay lightweight.
        frame_meta = {
            "frame_type": frame.frame_type,
            "target_bitrate": frame.target_bitrate,
            "complexity": frame.complexity,
            "frame_bytes": frame.size_bytes,
        }
        for index in range(num_packets):
            chunk = min(self.mtu_payload, remaining)
            remaining -= chunk
            packet = RtpPacket(
                ssrc=self.ssrc,
                sequence=self._sequence,
                timestamp=timestamp,
                payload_size=chunk,
                marker=index == num_packets - 1,
                frame_id=frame.frame_id,
                frame_start=index == 0,
                encode_time=encode_time,
                metadata=frame_meta,
            )
            if self.use_transport_seq:
                packet.transport_seq = self._transport_seq
                self._transport_seq = (self._transport_seq + 1) % SEQ_MOD
            self._sequence = (self._sequence + 1) % SEQ_MOD
            packets.append(packet)
        return packets


@dataclass(slots=True)
class AssembledFrame:
    """Result of reassembling one video frame at the receiver.

    Attributes
    ----------
    frame_id:
        Identity of the source frame.
    encode_time:
        Encoder timestamp carried in the fragments.
    first_arrival / last_arrival:
        Arrival times of the first and last received fragment.
    received_packets / expected_packets:
        Fragment accounting; ``received < expected`` marks a damaged
        frame (decoder artifacts).
    received_bytes:
        Payload bytes that actually arrived.
    """

    frame_id: int
    encode_time: float
    first_arrival: float
    last_arrival: float
    received_packets: int
    expected_packets: int
    received_bytes: int
    packets: list[RtpPacket] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """Whether every fragment of the frame arrived."""
        return self.received_packets >= self.expected_packets

    @property
    def loss_fraction(self) -> float:
        """Fraction of the frame's fragments that were lost."""
        if self.expected_packets == 0:
            return 0.0
        return 1.0 - self.received_packets / self.expected_packets


class FrameAssembler:
    """Groups RTP packets back into frames.

    Packets are grouped by ``frame_id`` (equivalently, RTP timestamp).
    A frame's expected fragment count is known once the marker packet
    arrives: it is the distance from the frame-start sequence number
    to the marker sequence number. When the marker itself is lost, the
    arrival of a later frame's start packet flushes the damaged frame.
    """

    def __init__(self) -> None:
        self._pending: dict[int, list[tuple[RtpPacket, float]]] = {}
        self._last_finalized = -1
        self.stray_packets = 0

    def push(self, packet: RtpPacket, arrival: float) -> list[AssembledFrame]:
        """Add a received packet; return any frames that became final.

        A frame is final when its marker packet arrived, or when it is
        older than a newer frame that has started arriving (fragments
        are then known to be missing). Fragments of frames that were
        already finalized (late stragglers) are discarded so a frame
        is never emitted twice.
        """
        if packet.frame_id <= self._last_finalized:
            self.stray_packets += 1
            return []
        self._pending.setdefault(packet.frame_id, []).append((packet, arrival))
        finished: list[AssembledFrame] = []
        if packet.marker:
            finished.append(self._finalize(packet.frame_id))
        # Flush stale frames two generations older than the newest one;
        # their remaining fragments can no longer arrive in order.
        newest = max(self._pending, default=packet.frame_id)
        for frame_id in sorted(self._pending):
            if frame_id < newest - 1:
                finished.append(self._finalize(frame_id))
        return sorted(finished, key=lambda f: f.frame_id)

    def _finalize(self, frame_id: int) -> AssembledFrame:
        self._last_finalized = max(self._last_finalized, frame_id)
        entries = self._pending.pop(frame_id)
        entries.sort(key=lambda item: item[0].sequence)
        packets = [packet for packet, _ in entries]
        arrivals = [arrival for _, arrival in entries]
        expected = self._expected_count(packets)
        return AssembledFrame(
            frame_id=frame_id,
            encode_time=packets[0].encode_time,
            first_arrival=min(arrivals),
            last_arrival=max(arrivals),
            received_packets=len(packets),
            expected_packets=expected,
            received_bytes=sum(packet.payload_size for packet in packets),
            packets=packets,
        )

    def _expected_count(self, packets: list[RtpPacket]) -> int:
        has_start = packets[0].frame_start
        has_marker = packets[-1].marker
        if has_start and has_marker:
            return seq_distance(packets[0].sequence, packets[-1].sequence) + 1
        # Lower bound when an edge fragment is missing: the span we saw
        # plus at least one lost edge packet.
        span = seq_distance(packets[0].sequence, packets[-1].sequence) + 1
        missing_edges = (0 if has_start else 1) + (0 if has_marker else 1)
        return span + missing_edges

    def pending_frames(self) -> int:
        """Number of frames with fragments still waiting for a marker."""
        return len(self._pending)
