"""RTCP sender/receiver reports (RFC 3550).

Besides the congestion-control feedback extensions (TWCC, RFC 8888),
a real RTP session exchanges periodic Sender Reports and Receiver
Reports: the SR carries an NTP/RTP timestamp pair plus sent counts,
the RR carries per-source reception statistics (loss fraction,
cumulative loss, highest sequence, jitter, LSR/DLSR for RTT
estimation). The static-bitrate runs in the paper still log receiver
timing information; these reports are the standard mechanism for it,
and the session uses the LSR/DLSR round trip to expose an RTT
estimate without any CC extension.

Wire formats follow RFC 3550 Sections 6.4.1/6.4.2.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

#: Seconds between the NTP epoch (1900) and the Unix epoch (1970).
NTP_EPOCH_OFFSET = 2_208_988_800

RTCP_SR = 200
RTCP_RR = 201


def to_ntp(time_s: float) -> tuple[int, int]:
    """Split a timestamp into 32.32 fixed-point NTP words."""
    seconds = int(time_s) + NTP_EPOCH_OFFSET
    fraction = int((time_s - int(time_s)) * (1 << 32)) & 0xFFFFFFFF
    return seconds & 0xFFFFFFFF, fraction


def from_ntp(seconds: int, fraction: int) -> float:
    """Inverse of :func:`to_ntp` (modulo the 1900 epoch)."""
    return (seconds - NTP_EPOCH_OFFSET) + fraction / (1 << 32)


def middle_ntp(time_s: float) -> int:
    """The 32-bit 'middle' NTP timestamp used in LSR/DLSR fields."""
    seconds, fraction = to_ntp(time_s)
    return ((seconds & 0xFFFF) << 16) | (fraction >> 16)


@dataclass(slots=True)
class ReportBlock:
    """One reception report block (RFC 3550 Section 6.4.1)."""

    ssrc: int
    fraction_lost: float  # in [0, 1]
    cumulative_lost: int
    highest_sequence: int
    jitter: int
    last_sr: int  # middle-32 NTP of the last SR received
    delay_since_last_sr: float  # seconds

    def to_bytes(self) -> bytes:
        """Serialize the 24-byte block."""
        fraction = min(255, max(0, int(round(self.fraction_lost * 256.0))))
        cumulative = min(self.cumulative_lost, 0xFFFFFF)
        dlsr = int(self.delay_since_last_sr * 65536.0) & 0xFFFFFFFF
        return struct.pack(
            "!IBBHIIII" if False else "!I4BIIII",
            self.ssrc,
            fraction,
            (cumulative >> 16) & 0xFF,
            (cumulative >> 8) & 0xFF,
            cumulative & 0xFF,
            self.highest_sequence,
            self.jitter,
            self.last_sr,
            dlsr,
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReportBlock":
        """Parse a 24-byte block."""
        if len(data) < 24:
            raise ValueError("report block too short")
        ssrc, fraction, c2, c1, c0, highest, jitter, last_sr, dlsr = struct.unpack(
            "!I4BIIII", data[:24]
        )
        return cls(
            ssrc=ssrc,
            fraction_lost=fraction / 256.0,
            cumulative_lost=(c2 << 16) | (c1 << 8) | c0,
            highest_sequence=highest,
            jitter=jitter,
            last_sr=last_sr,
            delay_since_last_sr=dlsr / 65536.0,
        )


@dataclass(slots=True)
class SenderReport:
    """RTCP Sender Report (RFC 3550 Section 6.4.1)."""

    ssrc: int
    ntp_time: float
    rtp_timestamp: int
    packet_count: int
    octet_count: int
    blocks: list[ReportBlock] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        """Serialize header + sender info + report blocks."""
        body = b"".join(block.to_bytes() for block in self.blocks)
        length_words = (28 + len(body)) // 4 - 1
        seconds, fraction = to_ntp(self.ntp_time)
        header = struct.pack(
            "!BBH", 0x80 | (len(self.blocks) & 0x1F), RTCP_SR, length_words
        )
        sender_info = struct.pack(
            "!IIIIII",
            self.ssrc,
            seconds,
            fraction,
            self.rtp_timestamp,
            self.packet_count,
            self.octet_count,
        )
        return header + sender_info + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "SenderReport":
        """Parse a serialized sender report."""
        if len(data) < 28:
            raise ValueError("sender report too short")
        first, packet_type, _ = struct.unpack("!BBH", data[:4])
        if packet_type != RTCP_SR:
            raise ValueError(f"not a sender report (PT={packet_type})")
        count = first & 0x1F
        ssrc, seconds, fraction, rtp_ts, packets, octets = struct.unpack(
            "!IIIIII", data[4:28]
        )
        blocks = [
            ReportBlock.from_bytes(data[28 + i * 24 : 28 + (i + 1) * 24])
            for i in range(count)
        ]
        return cls(
            ssrc=ssrc,
            ntp_time=from_ntp(seconds, fraction),
            rtp_timestamp=rtp_ts,
            packet_count=packets,
            octet_count=octets,
            blocks=blocks,
        )

    @property
    def wire_size(self) -> int:
        """Serialized size in bytes."""
        return 28 + 24 * len(self.blocks)


@dataclass(slots=True)
class ReceiverReport:
    """RTCP Receiver Report (RFC 3550 Section 6.4.2)."""

    ssrc: int
    blocks: list[ReportBlock] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        """Serialize header + report blocks."""
        body = b"".join(block.to_bytes() for block in self.blocks)
        length_words = (8 + len(body)) // 4 - 1
        header = struct.pack(
            "!BBH", 0x80 | (len(self.blocks) & 0x1F), RTCP_RR, length_words
        )
        return header + struct.pack("!I", self.ssrc) + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReceiverReport":
        """Parse a serialized receiver report."""
        if len(data) < 8:
            raise ValueError("receiver report too short")
        first, packet_type, _ = struct.unpack("!BBH", data[:4])
        if packet_type != RTCP_RR:
            raise ValueError(f"not a receiver report (PT={packet_type})")
        count = first & 0x1F
        (ssrc,) = struct.unpack("!I", data[4:8])
        blocks = [
            ReportBlock.from_bytes(data[8 + i * 24 : 8 + (i + 1) * 24])
            for i in range(count)
        ]
        return cls(ssrc=ssrc, blocks=blocks)

    @property
    def wire_size(self) -> int:
        """Serialized size in bytes."""
        return 8 + 24 * len(self.blocks)


class RtcpAccountant:
    """Receiver-side statistics feeding RR blocks (RFC 3550 A.8).

    Tracks expected vs received packets, interarrival jitter and the
    last-SR bookkeeping needed for RTT computation at the sender.
    """

    def __init__(self, ssrc: int, *, clock_rate: int = 90_000) -> None:
        self.ssrc = ssrc
        self.clock_rate = clock_rate
        self._base_seq: int | None = None
        self._max_seq = 0
        self._cycles = 0
        self._received = 0
        self._expected_prior = 0
        self._received_prior = 0
        self._jitter = 0.0
        self._last_transit: float | None = None
        self._last_sr_middle = 0
        self._last_sr_arrival: float | None = None

    def on_packet(self, sequence: int, rtp_timestamp: int, arrival: float) -> None:
        """Account one received RTP packet."""
        if self._base_seq is None:
            self._base_seq = sequence
            self._max_seq = sequence
        elif sequence < self._max_seq and self._max_seq - sequence > 0x8000:
            self._cycles += 1 << 16
            self._max_seq = sequence
        else:
            self._max_seq = max(self._max_seq, sequence)
        self._received += 1
        transit = arrival - rtp_timestamp / self.clock_rate
        if self._last_transit is not None:
            delta = abs(transit - self._last_transit)
            self._jitter += (delta - self._jitter) / 16.0
        self._last_transit = transit

    def on_sender_report(self, report: SenderReport, arrival: float) -> None:
        """Record SR receipt for LSR/DLSR bookkeeping."""
        self._last_sr_middle = middle_ntp(report.ntp_time)
        self._last_sr_arrival = arrival

    @property
    def expected(self) -> int:
        """Packets expected so far (highest extended seq - base + 1)."""
        if self._base_seq is None:
            return 0
        return self._cycles + self._max_seq - self._base_seq + 1

    def build_block(self, now: float) -> ReportBlock:
        """Produce a report block for the tracked source."""
        expected = self.expected
        lost = max(0, expected - self._received)
        expected_interval = expected - self._expected_prior
        received_interval = self._received - self._received_prior
        self._expected_prior = expected
        self._received_prior = self._received
        interval_lost = max(0, expected_interval - received_interval)
        fraction = (
            interval_lost / expected_interval if expected_interval > 0 else 0.0
        )
        dlsr = (
            now - self._last_sr_arrival if self._last_sr_arrival is not None else 0.0
        )
        return ReportBlock(
            ssrc=self.ssrc,
            fraction_lost=fraction,
            cumulative_lost=lost,
            highest_sequence=(self._cycles + self._max_seq) & 0xFFFFFFFF,
            jitter=int(self._jitter * self.clock_rate),
            last_sr=self._last_sr_middle,
            delay_since_last_sr=dlsr,
        )


def rtt_from_block(block: ReportBlock, now: float) -> float | None:
    """Sender-side RTT from an RR block's LSR/DLSR (RFC 3550 6.4.1).

    Returns ``None`` when the receiver has not yet seen an SR.
    """
    if block.last_sr == 0:
        return None
    now_middle = middle_ntp(now)
    # Work in 16.16 fixed-point seconds, modulo 2^32.
    delta = (now_middle - block.last_sr) % (1 << 32)
    rtt = delta / 65536.0 - block.delay_since_last_sr
    return max(rtt, 0.0)
