"""RTP jitter buffer modelled after GStreamer's ``rtpjitterbuffer``.

The paper buffers packets for 150 ms "to cushion the variable packet
arrival rate and handle out-of-order packets" and identifies the
buffer as one of the two main playback-latency contributors. Appendix
A.4 additionally discusses the ``drop-on-latency`` property — dropping
packets that are already older than the buffer latency instead of
releasing them late — as a potential improvement for remote piloting;
both behaviours are implemented here and compared by the jitter-buffer
ablation bench.

Operation: the first received packet anchors a mapping from RTP
timestamps to local playout deadlines ``deadline = anchor + media_time
+ latency``. Packets are released in timestamp order when their
deadline passes; packets arriving after their deadline are released
immediately (default) or discarded (``drop_on_latency``).

**Sequence-gap stalling.** GStreamer's jitter buffer arms per-packet
"lost" timers when it sees a hole in the sequence-number space and
holds subsequent packets while waiting. SCReAM's sender-side RTP-queue
discards tear holes of hundreds of sequence numbers into the stream at
high bitrates, so the buffer repeatedly waits on packets that will
never arrive — the most plausible mechanism behind the paper's
otherwise-unexplained ~1 s playback-latency plateaus during SCReAM
urban runs (Section 4.2.2). We model it as a gap penalty added to the
playout deadline, proportional to the hole size and decaying slowly.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable

from repro.rtp.packets import RtpPacket, TS_MOD, VIDEO_CLOCK_RATE, seq_distance
from repro.net.simulator import EventHandle, EventLoop
from repro.obs import NULL_RECORDER, NullRecorder
from repro.util.units import to_ms

ReleaseFn = Callable[[RtpPacket, float], None]


class JitterBuffer:
    """Delay-equalizing packet buffer.

    Parameters
    ----------
    loop:
        Event loop for scheduling releases.
    release:
        Callback ``(packet, release_time)`` invoked in playout order.
    latency:
        Buffering target in seconds (paper: 0.150).
    drop_on_latency:
        When ``True``, packets that arrive after their playout
        deadline are dropped instead of released late (App. A.4).
    clock_rate:
        RTP clock rate for timestamp-to-seconds conversion.
    gap_wait_per_packet:
        Extra playout delay accrued per missing sequence number when a
        hole is detected (the per-packet "lost" timer).
    gap_penalty_threshold:
        Holes of up to this many packets are absorbed by the normal
        ``latency`` budget; only the excess accrues penalty. Loss
        bursts and small rural-bitrate discards stay harmless, while
        the hundreds-of-packets holes SCReAM tears at 25 Mbps trigger
        the pathological waiting (the paper's urban-only plateaus).
    gap_penalty_cap:
        Upper bound on the accumulated gap penalty in seconds.
    gap_penalty_tau:
        Exponential decay time constant of the penalty, seconds.
    """

    def __init__(
        self,
        loop: EventLoop,
        release: ReleaseFn,
        *,
        latency: float = 0.150,
        drop_on_latency: bool = False,
        clock_rate: int = VIDEO_CLOCK_RATE,
        gap_wait_per_packet: float = 0.002,
        gap_penalty_threshold: int = 100,
        gap_penalty_cap: float = 1.0,
        gap_penalty_tau: float = 4.0,
        obs: NullRecorder = NULL_RECORDER,
    ) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        self._loop = loop
        self.obs = obs
        self._release = release
        self.latency = latency
        self.drop_on_latency = drop_on_latency
        self.clock_rate = clock_rate
        self.gap_wait_per_packet = gap_wait_per_packet
        self.gap_penalty_threshold = gap_penalty_threshold
        self.gap_penalty_cap = gap_penalty_cap
        self.gap_penalty_tau = gap_penalty_tau
        self._offset: float | None = None  # min(arrival - media) seen
        self._flushed = False
        self._released = 0
        self._dropped_late = 0
        self._last_media_time: float | None = None
        self._expected_seq: int | None = None
        self._gap_penalty = 0.0
        self._gap_penalty_time = 0.0
        self._last_deadline = 0.0
        #: Deadlines are monotone (enforced in :meth:`push`), so the
        #: waiting packets form a FIFO and one armed loop event — at
        #: the head deadline — serves the whole queue, instead of a
        #: per-packet closure plus a tracked handle per packet.
        self._waiting: deque[tuple[RtpPacket, float]] = deque()
        self._head_handle: EventHandle | None = None
        self.gap_events = 0

    @property
    def released_packets(self) -> int:
        """Packets handed to the depacketizer so far."""
        return self._released

    @property
    def dropped_late_packets(self) -> int:
        """Packets discarded because they missed their deadline."""
        return self._dropped_late

    def _media_time(self, timestamp: int) -> float:
        """Unwrapped media time in seconds for an RTP timestamp."""
        media = timestamp / self.clock_rate
        if self._last_media_time is not None:
            span = TS_MOD / self.clock_rate
            # unwrap: choose the representation closest to the last one,
            # in both directions — a reordered pre-wrap packet arriving
            # just after the wrap must map slightly *backward*, not a
            # full span into the future (which would stall the FIFO).
            while media < self._last_media_time - span / 2:
                media += span
            while media > self._last_media_time + span / 2:
                media -= span
        self._last_media_time = max(self._last_media_time or media, media)
        return media

    def push(self, packet: RtpPacket, arrival: float) -> None:
        """Insert a packet received at ``arrival``.

        The playout offset tracks the *minimum* observed
        ``arrival - media`` (GStreamer's clock-skew estimation), so
        the buffer holds packets ``latency`` seconds beyond the
        fastest network path rather than beyond whatever delay the
        first packet happened to see.
        """
        media = self._media_time(packet.timestamp)
        skew = arrival - media
        if self._offset is None or skew < self._offset:
            self._offset = skew
        self._note_sequence(packet.sequence, arrival)
        deadline = (
            self._offset + media + self.latency + self._current_penalty(arrival)
        )
        # Releases are strictly in arrival order: a decaying gap
        # penalty must never let a later packet overtake an earlier
        # one (the buffer is a FIFO, like GStreamer's).
        deadline = max(deadline, self._last_deadline)
        self._last_deadline = deadline
        now = self._loop.now
        if deadline <= now:
            if self.drop_on_latency:
                self._dropped_late += 1
                if self.obs.enabled:
                    self.obs.count("jitter/dropped_late")
                return
            self._do_release(packet, now)
            return
        self._waiting.append((packet, deadline))
        if self._head_handle is None:
            self._head_handle = self._loop.call_at(deadline, self._fire)

    def _fire(self) -> None:
        self._head_handle = None
        if self._flushed:
            return
        now = self._loop.now
        waiting = self._waiting
        while waiting and waiting[0][1] <= now:
            packet, deadline = waiting.popleft()
            self._do_release(packet, deadline)
        if waiting:
            self._head_handle = self._loop.call_at(waiting[0][1], self._fire)

    def _note_sequence(self, sequence: int, now: float) -> None:
        if self._expected_seq is not None:
            gap = seq_distance(self._expected_seq, sequence)
            if gap > 0:
                # ``gap`` sequence numbers will never arrive: the
                # buffer waits on each of them before giving up.
                self.gap_events += 1
                excess = gap - self.gap_penalty_threshold
                if excess > 0:
                    penalty = self._current_penalty(now) + min(
                        excess * self.gap_wait_per_packet,
                        self.gap_penalty_cap,
                    )
                    self._gap_penalty = min(penalty, self.gap_penalty_cap)
                    self._gap_penalty_time = now
                if self.obs.enabled:
                    self.obs.event(
                        "jitter.gap",
                        t=now,
                        packets=gap,
                        penalty_ms=to_ms(self._current_penalty(now)),
                    )
                    self.obs.count("jitter/gap_events")
                    self.obs.count("jitter/gap_packets", gap)
        self._expected_seq = (sequence + 1) % (1 << 16)

    def _current_penalty(self, now: float) -> float:
        if self._gap_penalty <= 0.0:
            return 0.0
        decay = math.exp(-(now - self._gap_penalty_time) / self.gap_penalty_tau)
        return self._gap_penalty * decay

    def _do_release(self, packet: RtpPacket, when: float) -> None:
        if self._flushed:
            return
        self._released += 1
        if self.obs.enabled:
            self.obs.count("jitter/released")
        self._release(packet, when)

    def flush(self) -> None:
        """Discard all scheduled releases (session teardown).

        Cancels the release events still queued on the loop, so
        teardown leaves it clean and ``EventLoop.pending()`` stays
        meaningful.
        """
        self._flushed = True
        if self._head_handle is not None:
            self._head_handle.cancel()
            self._head_handle = None
        self._waiting.clear()
