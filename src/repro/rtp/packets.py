"""RTP packet model with real wire serialization.

The simulator carries :class:`RtpPacket` objects (payload bytes are
synthetic), but header layout, sequence-number wrap-around and the
transport-wide-CC header extension follow RFC 3550 and
draft-holmer-rmcat-transport-wide-cc-extensions-01 so the packet sizes
and parsing logic match a real deployment.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

RTP_VERSION = 2
RTP_HEADER_BYTES = 12
#: One-byte extension: 4 bytes ext header + 4 bytes (id/len + 2-byte
#: transport sequence + 1 padding byte).
TWCC_EXTENSION_BYTES = 8
#: RTP clock rate used for video (RFC 3551).
VIDEO_CLOCK_RATE = 90_000

SEQ_MOD = 1 << 16
TS_MOD = 1 << 32

#: BEDE marker for the one-byte RTP header extension (RFC 8285).
_ONE_BYTE_EXT_PROFILE = 0xBEDE
_TWCC_EXT_ID = 1


def seq_distance(older: int, newer: int) -> int:
    """Signed distance from ``older`` to ``newer`` modulo 2**16.

    Positive when ``newer`` is ahead of ``older`` in wrap-around
    order. The result lies in ``[-32768, 32767]``.
    """
    delta = (newer - older) % SEQ_MOD
    if delta >= SEQ_MOD // 2:
        delta -= SEQ_MOD
    return delta


def seq_less_than(a: int, b: int) -> bool:
    """``True`` when sequence number ``a`` precedes ``b`` (mod 2**16)."""
    return seq_distance(a, b) > 0


def timestamp_for(time_s: float, clock_rate: int = VIDEO_CLOCK_RATE) -> int:
    """Map a time in seconds to an RTP timestamp at ``clock_rate``."""
    return int(round(time_s * clock_rate)) % TS_MOD


@dataclass(slots=True)
class RtpPacket:
    """A single RTP packet.

    Attributes
    ----------
    ssrc, payload_type, sequence, timestamp, marker:
        Standard RTP header fields; ``marker`` is set on the last
        packet of a video frame.
    payload_size:
        Size of the (synthetic) payload in bytes.
    transport_seq:
        Transport-wide sequence number carried in a header extension
        when congestion control requires it (GCC); ``None`` otherwise.
    frame_id:
        Simulation-side frame identity. Real RTP conveys this via the
        timestamp; we keep the explicit id for exact bookkeeping.
    frame_start:
        ``True`` on the first packet of a frame, mirroring the H.264
        FU-A start bit that real depacketizers rely on.
    encode_time:
        Simulated time the carried frame finished encoding (the
        paper's per-frame barcode timestamp).
    """

    ssrc: int
    sequence: int
    timestamp: int
    payload_size: int
    marker: bool = False
    payload_type: int = 96
    transport_seq: int | None = None
    frame_id: int = -1
    frame_start: bool = False
    encode_time: float = 0.0
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 <= self.sequence < SEQ_MOD:
            raise ValueError(f"sequence out of range: {self.sequence}")
        if not 0 <= self.timestamp < TS_MOD:
            raise ValueError(f"timestamp out of range: {self.timestamp}")
        if self.payload_size < 0:
            raise ValueError(f"payload_size must be >= 0: {self.payload_size}")

    @property
    def header_size(self) -> int:
        """RTP header size including extensions, in bytes."""
        size = RTP_HEADER_BYTES
        if self.transport_seq is not None:
            size += TWCC_EXTENSION_BYTES
        return size

    @property
    def wire_size(self) -> int:
        """Full RTP packet size (header + payload) in bytes."""
        return self.header_size + self.payload_size

    def to_bytes(self) -> bytes:
        """Serialize to the RFC 3550 wire format (payload zero-filled)."""
        has_ext = self.transport_seq is not None
        first = (RTP_VERSION << 6) | (0x10 if has_ext else 0)
        second = (0x80 if self.marker else 0) | (self.payload_type & 0x7F)
        header = struct.pack(
            "!BBHII", first, second, self.sequence, self.timestamp, self.ssrc
        )
        if has_ext:
            # one-byte extension header: id=1, len=1 (2 bytes of data)
            element = struct.pack(
                "!BHB", (_TWCC_EXT_ID << 4) | 0x01, self.transport_seq, 0
            )
            header += struct.pack("!HH", _ONE_BYTE_EXT_PROFILE, 1) + element
        return header + bytes(self.payload_size)

    @classmethod
    def from_bytes(cls, data: bytes) -> "RtpPacket":
        """Parse an RTP packet serialized by :meth:`to_bytes`."""
        if len(data) < RTP_HEADER_BYTES:
            raise ValueError(f"RTP packet too short: {len(data)} bytes")
        first, second, sequence, timestamp, ssrc = struct.unpack(
            "!BBHII", data[:RTP_HEADER_BYTES]
        )
        if first >> 6 != RTP_VERSION:
            raise ValueError(f"unsupported RTP version {first >> 6}")
        marker = bool(second & 0x80)
        payload_type = second & 0x7F
        offset = RTP_HEADER_BYTES
        transport_seq: int | None = None
        if first & 0x10:
            profile, ext_words = struct.unpack("!HH", data[offset : offset + 4])
            if profile != _ONE_BYTE_EXT_PROFILE:
                raise ValueError(f"unsupported extension profile {profile:#x}")
            ext_data = data[offset + 4 : offset + 4 + ext_words * 4]
            if len(ext_data) < 3 or ext_data[0] >> 4 != _TWCC_EXT_ID:
                raise ValueError("missing transport-wide-cc extension element")
            (transport_seq,) = struct.unpack("!H", ext_data[1:3])
            offset += 4 + ext_words * 4
        return cls(
            ssrc=ssrc,
            sequence=sequence,
            timestamp=timestamp,
            payload_size=len(data) - offset,
            marker=marker,
            payload_type=payload_type,
            transport_seq=transport_seq,
        )
