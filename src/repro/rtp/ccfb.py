"""RFC 8888 congestion control feedback (CCFB) for SCReAM.

The Ericsson SCReAM library the paper used generates an RTCP report
every 10 ms that covers the RTP packet with the highest received
sequence number and, by default, the 63 preceding packets. Section
4.2.1 of the paper shows this window is too small above ~7 Mbps (and
after SCReAM's RTP-queue discards, which jump the sequence space):
packets that fall out of the window without being reported remain
unacknowledged and are eventually — wrongly — declared lost, making
SCReAM reduce its bitrate needlessly. The authors widened the window
from 64 to 256 to lower the probability of such events.

This module reproduces the mechanism exactly: :class:`CcfbRecorder`
takes an ``ack_window`` parameter (64 by default, 256 for the paper's
mitigation) and reports only sequence numbers inside
``[highest - ack_window + 1, highest]``. The ablation bench
``benchmarks/test_ablation_ackwindow.py`` measures the false-loss rate
under both settings.

Wire format follows RFC 8888: per-packet 16-bit metric blocks with an
R (received) bit, 2-bit ECN and a 13-bit arrival-time offset in
units of 1/1024 s.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.rtp.packets import SEQ_MOD, seq_distance

#: Arrival-time-offset resolution (RFC 8888: 1/1024 second).
ATO_UNIT = 1.0 / 1024.0
_ATO_MAX = 0x1FFD  # values above are saturated per the RFC
_ATO_UNAVAILABLE = 0x1FFF


@dataclass(slots=True)
class CcfbPacketReport:
    """Status of one RTP sequence number inside a CCFB report."""

    received: bool
    arrival_offset: float | None = None  # seconds before the report timestamp
    ecn: int = 0


@dataclass(slots=True)
class CcfbReport:
    """An RFC 8888 report block for a single SSRC.

    Attributes
    ----------
    ssrc:
        Media source being reported on.
    begin_seq:
        First sequence number covered.
    reports:
        One :class:`CcfbPacketReport` per sequence number starting at
        ``begin_seq``.
    report_timestamp:
        Receiver clock at report generation (the RFC's RTS field).
    """

    ssrc: int
    begin_seq: int
    report_timestamp: float
    reports: list[CcfbPacketReport] = field(default_factory=list)

    @property
    def num_reports(self) -> int:
        """Number of sequence numbers covered."""
        return len(self.reports)

    @property
    def end_seq(self) -> int:
        """Last covered sequence number (inclusive)."""
        return (self.begin_seq + len(self.reports) - 1) % SEQ_MOD

    def iter_packets(self) -> list[tuple[int, CcfbPacketReport]]:
        """Yield ``(sequence, report)`` pairs in order."""
        return [
            ((self.begin_seq + i) % SEQ_MOD, report)
            for i, report in enumerate(self.reports)
        ]

    def to_bytes(self) -> bytes:
        """Serialize the report block (RFC 8888 Section 3.1)."""
        blob = struct.pack("!IHH", self.ssrc, self.begin_seq, len(self.reports))
        for report in self.reports:
            word = 0
            if report.received:
                word |= 0x8000
                word |= (report.ecn & 0b11) << 13
                if report.arrival_offset is None:
                    ato = _ATO_UNAVAILABLE
                else:
                    ato = min(_ATO_MAX, int(report.arrival_offset / ATO_UNIT))
                word |= ato & 0x1FFF
            blob += struct.pack("!H", word)
        if len(self.reports) % 2:
            blob += b"\x00\x00"  # pad to 32-bit boundary
        # trailing report timestamp (32 bits, 1/1024 s units)
        blob += struct.pack("!I", int(self.report_timestamp / ATO_UNIT) & 0xFFFFFFFF)
        return blob

    @classmethod
    def from_bytes(cls, data: bytes) -> "CcfbReport":
        """Parse a block serialized by :meth:`to_bytes`."""
        if len(data) < 12:
            raise ValueError("CCFB report too short")
        ssrc, begin_seq, num_reports = struct.unpack("!IHH", data[:8])
        offset = 8
        (raw_rts,) = struct.unpack("!I", data[-4:])
        report_timestamp = raw_rts * ATO_UNIT
        reports: list[CcfbPacketReport] = []
        for _ in range(num_reports):
            (word,) = struct.unpack("!H", data[offset : offset + 2])
            offset += 2
            received = bool(word & 0x8000)
            if not received:
                reports.append(CcfbPacketReport(received=False))
                continue
            ecn = (word >> 13) & 0b11
            ato = word & 0x1FFF
            arrival = None if ato == _ATO_UNAVAILABLE else ato * ATO_UNIT
            reports.append(
                CcfbPacketReport(received=True, arrival_offset=arrival, ecn=ecn)
            )
        return cls(
            ssrc=ssrc,
            begin_seq=begin_seq,
            report_timestamp=report_timestamp,
            reports=reports,
        )

    @property
    def wire_size(self) -> int:
        """Serialized size plus RTCP/IP/UDP framing bytes.

        Computed arithmetically (8-byte block header, 2 bytes per
        metric block padded to 32 bits, 4-byte report timestamp,
        12 bytes RTCP framing) — identical to ``len(to_bytes()) + 12``
        but without serializing on the simulator hot path.
        """
        blocks = 2 * len(self.reports)
        if len(self.reports) % 2:
            blocks += 2
        return 8 + blocks + 4 + 12


class CcfbRecorder:
    """Receiver-side CCFB generation with a bounded ack window.

    Parameters
    ----------
    ssrc:
        Media SSRC to report on.
    ack_window:
        Number of sequence numbers covered per report, ending at the
        highest received one (Ericsson default 64; paper raises it to
        256). Packets that slide below the window without having been
        reported are never acknowledged — the false-loss mechanism of
        Section 4.2.1.
    """

    def __init__(self, ssrc: int, *, ack_window: int = 64) -> None:
        if ack_window < 1:
            raise ValueError(f"ack_window must be >= 1, got {ack_window}")
        self.ssrc = ssrc
        self.ack_window = ack_window
        self._arrivals: dict[int, float] = {}
        self._order: list[int] = []  # insertion order for cheap eviction
        self._evict_at = 0
        self._highest: int | None = None

    def on_packet(self, sequence: int, arrival: float) -> None:
        """Record arrival of RTP sequence number ``sequence``."""
        if sequence not in self._arrivals:
            self._order.append(sequence)
        self._arrivals[sequence] = arrival
        if self._highest is None or seq_distance(self._highest, sequence) > 0:
            self._highest = sequence
        self._garbage_collect()

    def _garbage_collect(self) -> None:
        # Evict arrivals far below the report window in insertion
        # order — O(1) amortized per packet.
        horizon = self._highest
        if horizon is None:
            return
        while (
            self._evict_at < len(self._order)
            and len(self._arrivals) > 4 * self.ack_window
        ):
            seq = self._order[self._evict_at]
            if seq in self._arrivals and seq_distance(seq, horizon) >= 2 * self.ack_window:
                del self._arrivals[seq]
                self._evict_at += 1
            elif seq not in self._arrivals:
                self._evict_at += 1
            else:
                break
        if self._evict_at > 10_000:
            del self._order[: self._evict_at]
            self._evict_at = 0

    def build_report(self, now: float) -> CcfbReport | None:
        """Build the periodic report, or ``None`` before any packet."""
        if self._highest is None:
            return None
        count = self.ack_window
        begin = (self._highest - count + 1) % SEQ_MOD
        reports: list[CcfbPacketReport] = []
        for i in range(count):
            seq = (begin + i) % SEQ_MOD
            arrival = self._arrivals.get(seq)
            if arrival is None:
                reports.append(CcfbPacketReport(received=False))
            else:
                reports.append(
                    CcfbPacketReport(
                        received=True,
                        arrival_offset=max(0.0, now - arrival),
                    )
                )
        return CcfbReport(
            ssrc=self.ssrc,
            begin_seq=begin,
            report_timestamp=now,
            reports=reports,
        )
