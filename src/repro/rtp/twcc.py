"""Transport-wide congestion control feedback.

Implements the RTCP feedback message from
draft-holmer-rmcat-transport-wide-cc-extensions-01 — the extension the
paper's GCC implementation relies on. The receiver records the arrival
time of every packet (keyed by the transport-wide sequence number from
the RTP header extension) and periodically ships a feedback message
listing, for a contiguous range of sequence numbers, whether each
packet arrived and at what time (250 us resolution). The GCC sender
reconstructs (send time, arrival time) pairs from it.

Serialization follows the draft's layout using two-bit status-vector
chunks, small (8-bit) and large (16-bit) receive deltas.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.rtp.packets import SEQ_MOD, seq_distance

#: Resolution of receive deltas (250 microseconds).
DELTA_UNIT = 0.00025
#: Resolution of the reference time field (64 milliseconds).
REFERENCE_UNIT = 0.064

_STATUS_NOT_RECEIVED = 0
_STATUS_SMALL_DELTA = 1
_STATUS_LARGE_DELTA = 2


@dataclass(slots=True)
class TwccFeedback:
    """A transport-wide feedback message.

    Attributes
    ----------
    base_seq:
        First transport-wide sequence number covered.
    reference_time:
        Absolute receiver time of the delta baseline, quantized to
        64 ms units.
    feedback_count:
        Rolling 8-bit counter for loss-of-feedback detection.
    arrivals:
        For each covered sequence number (``base_seq + i``), the
        arrival time in seconds, or ``None`` when not received.
    """

    base_seq: int
    reference_time: float
    feedback_count: int
    arrivals: list[float | None] = field(default_factory=list)

    @property
    def packet_status_count(self) -> int:
        """Number of sequence numbers covered by this message."""
        return len(self.arrivals)

    def iter_packets(self) -> list[tuple[int, float | None]]:
        """Yield ``(transport_seq, arrival_or_None)`` pairs."""
        return [
            ((self.base_seq + i) % SEQ_MOD, arrival)
            for i, arrival in enumerate(self.arrivals)
        ]

    def to_bytes(self) -> bytes:
        """Serialize to the draft's wire format."""
        ref_units = int(self.reference_time / REFERENCE_UNIT)
        statuses: list[int] = []
        deltas: list[int] = []
        previous = ref_units * REFERENCE_UNIT
        for arrival in self.arrivals:
            if arrival is None:
                statuses.append(_STATUS_NOT_RECEIVED)
                continue
            delta_units = int(round((arrival - previous) / DELTA_UNIT))
            if 0 <= delta_units <= 0xFF:
                statuses.append(_STATUS_SMALL_DELTA)
            else:
                statuses.append(_STATUS_LARGE_DELTA)
                delta_units = max(-(2**15), min(2**15 - 1, delta_units))
            deltas.append(delta_units)
            previous += delta_units * DELTA_UNIT
        header = struct.pack(
            "!HH", self.base_seq, len(self.arrivals)
        ) + struct.pack(
            "!I", ((ref_units & 0xFFFFFF) << 8) | (self.feedback_count & 0xFF)
        )
        chunks = b""
        for start in range(0, len(statuses), 7):
            window = statuses[start : start + 7]
            chunk = 0xC000  # status-vector chunk, two-bit symbols
            for i, status in enumerate(window):
                chunk |= status << (12 - 2 * i)
            chunks += struct.pack("!H", chunk)
        delta_bytes = b""
        status_iter = iter(statuses)
        delta_iter = iter(deltas)
        for status in status_iter:
            if status == _STATUS_SMALL_DELTA:
                delta_bytes += struct.pack("!B", next(delta_iter))
            elif status == _STATUS_LARGE_DELTA:
                delta_bytes += struct.pack("!h", next(delta_iter))
        return header + chunks + delta_bytes

    @classmethod
    def from_bytes(cls, data: bytes) -> "TwccFeedback":
        """Parse a message serialized by :meth:`to_bytes`."""
        if len(data) < 8:
            raise ValueError("TWCC feedback too short")
        base_seq, status_count = struct.unpack("!HH", data[:4])
        (packed,) = struct.unpack("!I", data[4:8])
        ref_units = packed >> 8
        if ref_units & 0x800000:  # sign-extend 24-bit value
            ref_units -= 1 << 24
        feedback_count = packed & 0xFF
        offset = 8
        statuses: list[int] = []
        while len(statuses) < status_count:
            (chunk,) = struct.unpack("!H", data[offset : offset + 2])
            offset += 2
            if chunk >> 14 != 0b11:
                raise ValueError("only two-bit status-vector chunks are supported")
            for i in range(7):
                if len(statuses) >= status_count:
                    break
                statuses.append((chunk >> (12 - 2 * i)) & 0b11)
        arrivals: list[float | None] = []
        previous = ref_units * REFERENCE_UNIT
        for status in statuses:
            if status == _STATUS_NOT_RECEIVED:
                arrivals.append(None)
                continue
            if status == _STATUS_SMALL_DELTA:
                (delta_units,) = struct.unpack("!B", data[offset : offset + 1])
                offset += 1
            else:
                (delta_units,) = struct.unpack("!h", data[offset : offset + 2])
                offset += 2
            previous += delta_units * DELTA_UNIT
            arrivals.append(previous)
        return cls(
            base_seq=base_seq,
            reference_time=ref_units * REFERENCE_UNIT,
            feedback_count=feedback_count,
            arrivals=arrivals,
        )

    @property
    def wire_size(self) -> int:
        """Size of the serialized message plus RTCP/IP/UDP framing.

        Upper-bound arithmetic estimate (status chunks + small deltas
        for every received packet) — avoids serializing on the
        simulator hot path.
        """
        chunks = 2 * ((len(self.arrivals) + 6) // 7)
        deltas = sum(1 for a in self.arrivals if a is not None)
        return 8 + chunks + deltas + 16


class TwccRecorder:
    """Receiver-side bookkeeping that produces TWCC feedback messages."""

    def __init__(self, *, max_tracked: int = 10_000) -> None:
        self._arrivals: dict[int, float] = {}
        self._next_base: int | None = None
        self._highest: int | None = None
        self._feedback_count = 0
        self._max_tracked = max_tracked

    def on_packet(self, transport_seq: int, arrival: float) -> None:
        """Record the arrival of transport-wide sequence ``transport_seq``."""
        self._arrivals[transport_seq] = arrival
        if self._next_base is None:
            self._next_base = transport_seq
        if self._highest is None or seq_less_than_or_equal(
            self._highest, transport_seq
        ):
            self._highest = transport_seq

    def build_feedback(self) -> TwccFeedback | None:
        """Build feedback covering everything since the previous one.

        Returns ``None`` when no new packets arrived.
        """
        if self._next_base is None or self._highest is None:
            return None
        count = seq_distance(self._next_base, self._highest) + 1
        if count <= 0:
            return None
        base = self._next_base
        arrivals: list[float | None] = []
        reference: float | None = None
        for i in range(count):
            seq = (base + i) % SEQ_MOD
            arrival = self._arrivals.pop(seq, None)
            arrivals.append(arrival)
            if reference is None and arrival is not None:
                reference = arrival
        self._next_base = (self._highest + 1) % SEQ_MOD
        feedback = TwccFeedback(
            base_seq=base,
            reference_time=reference or 0.0,
            feedback_count=self._feedback_count & 0xFF,
            arrivals=arrivals,
        )
        self._feedback_count += 1
        return feedback


def seq_less_than_or_equal(a: int, b: int) -> bool:
    """``True`` when ``a`` precedes or equals ``b`` modulo 2**16."""
    return seq_distance(a, b) >= 0
