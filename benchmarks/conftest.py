"""Shared benchmark fixtures.

Each bench regenerates one paper figure/table: it runs the matching
experiment from :mod:`repro.experiments`, prints the rendered text
figure, writes it under ``benchmarks/reports/`` and asserts the
qualitative *shape* the paper reports (who wins, by roughly what
factor, where crossovers fall). Absolute numbers are not expected to
match the Munich testbed.

Scale control: set ``REPRO_BENCH_SCALE`` to ``quick`` (CI smoke),
``default`` or ``paper`` (full-length flights, slow).

Campaign execution: set ``REPRO_BENCH_WORKERS`` to fan the figure
campaigns out over a process pool (``0`` = one per CPU core), and
``REPRO_BENCH_CACHE`` to a directory to reuse simulated runs across
bench invocations. Unset, benches run serial and uncached as before.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentSettings
from repro.runner import CampaignRunner, ResultCache

REPORT_DIR = Path(__file__).parent / "reports"


def _settings_from_env() -> ExperimentSettings:
    scale = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    if scale == "quick":
        return ExperimentSettings(duration=60.0, seeds=(1,), warmup=20.0)
    if scale == "paper":
        return ExperimentSettings.paper_scale()
    return ExperimentSettings(duration=150.0, seeds=(1, 2), warmup=30.0)


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Experiment scale for this bench run."""
    return _settings_from_env()


@pytest.fixture(scope="session")
def channel_settings() -> ExperimentSettings:
    """Larger scale for cheap channel-only probes (Fig. 4/10/13)."""
    base = _settings_from_env()
    seeds = tuple(range(1, 1 + max(4, len(base.seeds) * 2)))
    return ExperimentSettings(
        duration=max(base.duration, 300.0), seeds=seeds, warmup=base.warmup
    )


@pytest.fixture()
def runner():
    """Campaign runner honouring the bench env knobs (fresh per bench).

    Tears the runner's worker pool down after the bench: the pool is
    persistent across ``run()`` calls, so without an explicit close a
    ``REPRO_BENCH_WORKERS`` session would leak one pool of worker
    processes per bench.
    """
    workers_env = os.environ.get("REPRO_BENCH_WORKERS", "1")
    workers = None if workers_env == "0" else max(1, int(workers_env))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE", "")
    cache = ResultCache(cache_dir) if cache_dir else None
    with CampaignRunner(workers, cache=cache) as campaign_runner:
        yield campaign_runner


@pytest.fixture(scope="session")
def report():
    """Callable that prints and persists a rendered figure."""
    REPORT_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        print(f"\n{'=' * 70}\n{text}\n{'=' * 70}")
        (REPORT_DIR / f"{name}.txt").write_text(text + "\n")

    return _write
