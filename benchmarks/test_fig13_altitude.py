"""Bench: Fig. 13 — ping RTT by altitude band.

Paper shape: no clear RTT trend below 100 m; above it, the proportion
of high-RTT outliers increases.
"""

from repro.experiments import fig13_altitude


def test_fig13_altitude(benchmark, channel_settings, report, runner):
    result = benchmark.pedantic(
        fig13_altitude, args=(channel_settings,), kwargs={'runner': runner}, rounds=1, iterations=1
    )
    report("fig13_altitude", result.render())

    for environment in ("urban", "rural"):
        bands = result.cdfs[environment]
        assert "0-20m" in bands and "101-140m" in bands, bands.keys()
        low = bands["0-20m"]
        mid = bands.get("61-100m")
        high = bands["101-140m"]

        # No clear median trend below 100 m (within 40 % of each other).
        if mid is not None:
            assert abs(mid.median - low.median) / low.median < 0.4

        # Above 100 m the outlier tail grows: more mass beyond 300 ms.
        assert high.fraction_above(0.3) >= low.fraction_above(0.3)
    # The effect is visible in at least one environment.
    urban_high = result.cdfs["urban"]["101-140m"]
    urban_low = result.cdfs["urban"]["0-20m"]
    rural_high = result.cdfs["rural"]["101-140m"]
    rural_low = result.cdfs["rural"]["0-20m"]
    assert (
        urban_high.fraction_above(0.3) > urban_low.fraction_above(0.3)
        or rural_high.fraction_above(0.3) > rural_low.fraction_above(0.3)
    )
