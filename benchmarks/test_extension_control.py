"""Bench: extension — command/control vs video latency.

The paper's related work (Jin et al., Stornig et al.) consistently
measures control-signal latencies of tens of milliseconds against
video latencies of hundreds of milliseconds to seconds over the same
cellular link. Shape: command median latency is an order of magnitude
below the video playback latency, and both flows degrade together
around handovers because they share the radio.
"""

from repro.core.config import ScenarioConfig
from repro.control import run_control_session


def test_control_vs_video_latency(benchmark, settings, report):
    def run():
        return [
            run_control_session(
                ScenarioConfig(
                    cc="static",
                    environment="urban",
                    platform="air",
                    duration=settings.duration,
                    seed=seed,
                )
            )
            for seed in settings.seeds
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "extension_control",
        "\n\n".join(result.render() for result in results),
    )

    for result in results:
        cmd_median = result.command_latency_ms(50)
        video_median = result.video_latency_ms(50)
        # Command latency is small (the paper's cited 30 ms regime)...
        assert cmd_median < 80.0
        # ...and far below the video playback latency.
        assert video_median > 3 * cmd_median
        # Commands rarely get lost (HARQ/deep buffers).
        assert result.command_loss_rate < 0.02
