"""Bench: Fig. 9 — max/min latency ratio around handovers.

Paper shape: within 1-second windows, latency before a handover spikes
to ~8x its minimum on average (outliers to 37x); after the handover
the ratio relaxes to ~5x.
"""

from repro.experiments import fig9_ho_ratio


def test_fig9_ho_ratio(benchmark, settings, report, runner):
    result = benchmark.pedantic(
        fig9_ho_ratio, args=(settings,), kwargs={'runner': runner}, rounds=1, iterations=1
    )
    report("fig9_ho_ratio", result.render())

    assert result.handover_count > 0
    before = result.summary.before
    after = result.summary.after
    assert before is not None and after is not None

    # Latency clearly departs from flat (ratio 1) around handovers.
    assert before.mean > 1.5
    assert after.mean > 1.2
    # The pre-handover degradation dominates (paper: ~8x vs ~5x).
    assert before.mean >= after.mean * 0.9
    # Heavy outliers exist before handovers.
    assert before.maximum > 3.0
