"""Bench: extension — DAPS make-before-break handovers (Section 5).

The paper expects the Dual Active Protocol Stack to "avoid link
disruptions in the air and hence remove the observed latency spikes".
Shape: with DAPS enabled the one-way-delay tail shrinks and playback
latency compliance improves, at an unchanged handover rate.
"""

from repro.experiments import daps_experiment


def test_daps_extension(benchmark, settings, report):
    result = benchmark.pedantic(
        daps_experiment, args=(settings,), rounds=1, iterations=1
    )
    report("extension_daps", result.render())

    legacy = next(p for p in result.points if not p.make_before_break)
    daps = next(p for p in result.points if p.make_before_break)

    # Same mobility environment (handovers still happen)...
    assert daps.handovers > 0
    # ...but the execution gap no longer interrupts the link.
    assert daps.owd_p99_ms <= legacy.owd_p99_ms
    assert daps.latency_below_threshold >= legacy.latency_below_threshold - 0.02
    assert daps.stalls_per_minute <= legacy.stalls_per_minute + 0.1
