"""Bench: Section 4 headline statistics — PER, stall rates, ramp-up.

Paper values: PER 0.06-0.07 % with consecutive drops; urban stall
rates static 0.11 / SCReAM 0.89 / GCC 1.37 per minute; ramp-up to
25 Mbps in ~12 s (GCC) and ~25 s (SCReAM).
"""

from repro.experiments import per_experiment, rampup_experiment, stall_experiment


def test_per_level_and_burstiness(benchmark, settings, report):
    result = benchmark.pedantic(
        per_experiment, args=(settings,), rounds=1, iterations=1
    )
    report("stats_per", result.render())
    for environment, rate in result.loss_rates.items():
        # Order of magnitude of the paper's 0.06-0.07 %.
        assert 0.0001 < rate < 0.01, (environment, rate)
    # Drops arrive in consecutive bursts.
    assert result.mean_burst > 1.2


def test_stall_rates(benchmark, settings, report):
    result = benchmark.pedantic(
        stall_experiment, args=(settings,), rounds=1, iterations=1
    )
    report("stats_stalls", result.render())
    stalls = result.stalls_per_minute
    # The static stream is the most stable (paper: 0.11/min vs the
    # CCs' 0.89-1.37/min). The ordering can only be resolved down to
    # the rate one stall event contributes at this scale: at quick
    # scale (one 40 s measured window) a single stall is 1.5/min.
    minutes = (settings.duration - settings.warmup) / 60.0 * len(settings.seeds)
    one_stall = 1.0 / minutes
    assert stalls["static"] <= max(stalls["scream"], stalls["gcc"]) + one_stall + 0.01
    # Nothing is stalling pathologically.
    for cc, rate in stalls.items():
        assert rate < 6.0, (cc, rate)


def test_rampup_times(benchmark, settings, report):
    result = benchmark.pedantic(
        rampup_experiment, args=(settings,), rounds=1, iterations=1
    )
    report("stats_rampup", result.render())
    # GCC ramps markedly faster than SCReAM (paper: ~12 s vs ~25 s).
    assert result.gcc_seconds < result.scream_seconds
    assert 4.0 < result.gcc_seconds < 30.0
    assert 12.0 < result.scream_seconds < 60.0
