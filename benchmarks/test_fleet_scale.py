"""Bench: vectorized fleet fast path vs the scalar reference at N=64.

A 64-member shared-cell fleet executed two ways over the same config:
``run_fleet(fast=False)`` (the scalar reference — per-member per-tick
Python loops, quadratic ``ScalarCellContention.shares``) and
``run_fleet(fast=True)`` (struct-of-arrays contention with the
versioned allocation cache, member-stacked tick plans, and the shared
:class:`~repro.cellular.batch.FleetTicker` that drives every member's
tick from one loop event with fleet-wide A3 hints and batched
interference sums).

The shape is pinned, not env-scaled: load balancing is disabled
(``lb_step_db=0``) so members pile onto the strongest cells and stay
there, which is exactly the dense-occupancy regime the paper's fleet
sections care about and the one where the scalar path degrades
quadratically. The encoder is clamped to a constant trickle so the
bench measures the contention/tick machinery, not media work.

Bit-identity is asserted *before* the speedup gate — a fast wrong
answer is worthless — and both arms take the best of several runs so
a single noisy sample on a busy CI machine cannot fail the gate. The
recorded bench time is the fast arm (the path ``run_fleet`` takes by
default).
"""

import time

from repro.cellular.cell import CellCapacityConfig
from repro.core.config import ScenarioConfig
from repro.core.fingerprint import session_fingerprint
from repro.core.fleet import FleetConfig, run_fleet

#: Fixed shape: 64 members, 20 s, minimal media, no load balancing so
#: occupancy concentrates (peak ~43 members on one cell).
BASE = ScenarioConfig(
    cc="static",
    environment="urban",
    platform="air",
    operator="P1",
    seed=7,
    duration=20.0,
    static_bitrate=1e4,
    min_bitrate=1e4,
    max_bitrate=2e4,
    fps=0.5,
)
FLEET = FleetConfig(
    base=BASE,
    num_sessions=64,
    spread_radius=25.0,
    cell_capacity=CellCapacityConfig(max_sessions=64, lb_step_db=0.0),
)

#: Best-of runs per arm: the gate compares minima, which strips
#: scheduler noise without inflating bench wall time too much.
SCALAR_RUNS = 3
FAST_ROUNDS = 4


def test_fleet_scale(benchmark, report):
    scalar_walls = []
    for _ in range(SCALAR_RUNS):
        start = time.perf_counter()  # repro-lint: ignore[RPL001]
        scalar = run_fleet(FLEET, fast=False)
        scalar_walls.append(time.perf_counter() - start)  # repro-lint: ignore[RPL001]
    scalar_wall = min(scalar_walls)

    fast = benchmark.pedantic(
        lambda: run_fleet(FLEET, fast=True),
        rounds=FAST_ROUNDS,
        iterations=1,
        warmup_rounds=1,
    )
    fast_wall = benchmark.stats.stats.min

    # Bit-identity first: every member's packet log, plus the fleet
    # occupancy/congestion aggregates, must match the scalar reference.
    assert [session_fingerprint(s) for s in fast.sessions] == [
        session_fingerprint(s) for s in scalar.sessions
    ]
    assert fast.occupancy == scalar.occupancy
    assert fast.peak_occupancy == scalar.peak_occupancy
    assert fast.congestion_time == scalar.congestion_time

    speedup = scalar_wall / fast_wall if fast_wall > 0 else float("inf")
    peak = max(fast.peak_occupancy.values())
    report(
        "fleet_scale",
        "\n".join(
            [
                "Fleet-scale fast path (N=64, 20 s, static CC, shared cells)",
                f"  scalar contention : {scalar_wall:7.3f} s"
                f" (best of {SCALAR_RUNS})",
                f"  vectorized fleet  : {fast_wall:7.3f} s"
                f" (best of {FAST_ROUNDS})",
                f"  speedup           : {speedup:7.2f}x (gate: >= 3.0x)",
                f"  peak co-channel   : {peak} of {FLEET.num_sessions}"
                " members on one cell",
                "  bit-identity      : per-member fingerprints +"
                " occupancy maps equal",
            ]
        ),
    )
    assert speedup >= 3.0
