"""Bench: Fig. 5 — one-way latency CDFs, ground vs air, urban vs rural.

Paper shape: ~99 % of ground packets below 100 ms vs ~96 % in the
air, with the aerial tail stretching beyond 1 s.
"""

from repro.experiments import fig5_latency


def test_fig5_latency(benchmark, settings, report, runner):
    result = benchmark.pedantic(
        fig5_latency, args=(settings,), kwargs={'runner': runner}, rounds=1, iterations=1
    )
    report("fig5_latency", result.render())

    grd_urban = result.fraction_below("static-urban-ground-P1", 0.1)
    air_urban = result.fraction_below("static-urban-air-P1", 0.1)
    grd_rural = result.fraction_below("static-rural-ground-P1", 0.1)
    air_rural = result.fraction_below("static-rural-air-P1", 0.1)

    # The bulk of traffic stays under 100 ms everywhere.
    for fraction in (grd_urban, air_urban, grd_rural, air_rural):
        assert fraction > 0.80
    # Ground is cleaner than air in each environment.
    assert grd_urban >= air_urban - 0.02
    assert grd_rural >= air_rural - 0.02
    # The air has a heavier extreme tail: >1 s outliers exist.
    air_tail = result.cdfs["static-urban-air-P1"].fraction_above(1.0)
    grd_tail = result.cdfs["static-urban-ground-P1"].fraction_above(1.0)
    assert air_tail >= grd_tail
