"""Bench: ablation — SCReAM RFC 8888 ack window, 64 vs 256.

Reproduces Section 4.2.1's finding: with the Ericsson default of 64
acknowledged packets per report, delivered packets slide out of the
report window at urban bitrates and are falsely declared lost;
widening the window to 256 (the paper's mitigation) sharply reduces
the false losses.
"""

from repro.experiments import ackwindow_ablation


def test_ackwindow_ablation(benchmark, settings, report):
    result = benchmark.pedantic(
        ackwindow_ablation, args=(settings,), rounds=1, iterations=1
    )
    report("ablation_ackwindow", result.render())

    small = result.results[64]
    large = result.results[256]
    # The narrow window produces distinctly more false losses.
    assert small.false_losses_per_minute > large.false_losses_per_minute
    assert small.false_losses_per_minute > 1.0
    # Needless back-offs cost goodput.
    assert large.goodput_mbps >= small.goodput_mbps - 0.5
