"""Bench: Fig. 8 — latency/loss/handover time series of one GCC flight.

Paper shape: network-latency spikes accompany handovers, and the
playback latency rises whenever the network latency exceeds the
jitter-buffer budget.
"""

import numpy as np

from repro.experiments import fig8_timeseries


def test_fig8_timeseries(benchmark, settings, report, runner):
    result = benchmark.pedantic(
        fig8_timeseries, args=(settings,), kwargs={'runner': runner}, rounds=1, iterations=1
    )
    report("fig8_timeseries", result.render())

    # The flight saw handovers and the latency series covers them.
    assert result.handover_times, "expected at least one handover"
    assert len(result.network_latency) > 50
    assert len(result.playback_latency) > 100

    # Latency spikes cluster around handovers (the paper's core Fig. 8
    # observation).
    assert result.latency_spike_near_handover()

    # Playback latency is bounded below by the network latency floor
    # plus the 150 ms jitter buffer.
    network_median = float(np.median([v for _, v in result.network_latency]))
    playback_median = float(np.median([v for _, v in result.playback_latency]))
    assert playback_median > network_median
