"""Bench: fleet density — per-session QoE vs. RPAVs sharing the cells.

Beyond the paper: its measurements cover one UAV with every cell to
itself. This bench sweeps fleet size over a shared layout and pins the
contention shape: per-session goodput and granted PRB share fall
monotonically with density while congestion time rises, and a fleet of
one is indistinguishable from the single-session pipeline.
"""

from repro.core.config import ScenarioConfig
from repro.experiments import run_fleet_density


def test_fleet_density(benchmark, settings, report, runner):
    config = ScenarioConfig(
        cc="gcc", environment="urban", platform="air", operator="P1"
    )
    result = benchmark.pedantic(
        run_fleet_density,
        args=(config, settings),
        kwargs={"densities": (1, 2, 4), "spread_radius": 30.0,
                "runner": runner},
        rounds=1,
        iterations=1,
    )
    report("fleet_density", result.render())
    points = result.points

    # A fleet of one gets every cell to itself.
    assert points[0].mean_uplink_share == 1.0
    assert points[0].congestion_seconds == 0.0
    # Contention bites monotonically as the fleet grows.
    assert points[0].goodput_bps > points[1].goodput_bps > points[2].goodput_bps
    assert (
        points[0].mean_uplink_share
        >= points[1].mean_uplink_share
        >= points[2].mean_uplink_share
    )
    assert points[2].congestion_seconds > points[1].congestion_seconds > 0.0
    # The shared cells actually get shared.
    assert points[2].peak_sessions_per_cell >= 3
    # Degradation is contention, not collapse: the scheduler still
    # grants every session a usable share.
    assert points[2].mean_uplink_share > 0.15
