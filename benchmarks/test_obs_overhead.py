"""Bench: metrics-level fleet observability must stay under 10%.

The whole point of the fast-path observability tier (PR 10) is that
``run_fleet(obs="metrics")`` keeps the vectorized tick path — the
:class:`~repro.obs.FleetMetricsPlane` ingests one ``(3, N)`` numpy row
set per fleet tick instead of per-member recorder calls. This bench
gates that claim two ways:

* the run's own ``obs_overhead`` self-accounting (wall seconds spent
  inside plane ingestion over total wall) must be <= 10%;
* the end-to-end wall time of the metered arm, best-of-several, must
  stay within 10% of the dark (``obs`` off) arm.

Bit-identity is asserted *before* either perf gate — the metrics tier
is only admissible at all because it provably records without
perturbing a single packet. The arms are *interleaved* (dark, metered,
dark, metered, ...) and each takes the best of its runs, so a load
spike on a busy CI machine taxes both arms alike instead of silently
inflating whichever arm it happened to land on. The shape
follows ``test_fleet_scale``: load balancing disabled so members pile
onto the strongest cells (dense occupancy, the regime where per-member
costs hurt most) and a constant-trickle encoder so the bench measures
the tick/ingest machinery, not media work.

Scale: ``REPRO_BENCH_SCALE=quick`` halves the flight for CI smoke.
The member count stays at 32 even there — a fleet small enough for
the plane's one-time collect cost (snapshot + registry fold, a few
milliseconds) to dominate the wall clock would measure fixed costs,
not the per-tick tax the gate is about.
"""

import os
import time

from repro.cellular.cell import CellCapacityConfig
from repro.core.config import ScenarioConfig
from repro.core.fingerprint import session_fingerprint
from repro.core.fleet import FleetConfig, run_fleet

_QUICK = os.environ.get("REPRO_BENCH_SCALE", "default").lower() == "quick"

#: Pinned shape (env-scaled only in size): minimal media, no load
#: balancing, members concentrated on the strongest cells.
BASE = ScenarioConfig(
    cc="static",
    environment="urban",
    platform="air",
    operator="P1",
    seed=7,
    duration=10.0 if _QUICK else 20.0,
    static_bitrate=1e4,
    min_bitrate=1e4,
    max_bitrate=2e4,
    fps=0.5,
)
FLEET = FleetConfig(
    base=BASE,
    num_sessions=32,
    spread_radius=25.0,
    cell_capacity=CellCapacityConfig(max_sessions=64, lb_step_db=0.0),
)

#: Interleaved rounds: each runs one dark and one metered flight.
ROUNDS = 4

#: The tentpole's hard budget: metrics-level fleet observability may
#: cost at most 10% — both by self-accounting and end to end.
MAX_OVERHEAD_SHARE = 0.10
MAX_WALL_RATIO = 1.10


def test_obs_overhead(benchmark, report):
    run_fleet(FLEET)  # warm caches outside either arm's timing

    dark_walls: list[float] = []
    metered_walls: list[float] = []

    def _round():
        start = time.perf_counter()  # repro-lint: ignore[RPL001]
        dark = run_fleet(FLEET)
        mid = time.perf_counter()  # repro-lint: ignore[RPL001]
        metered = run_fleet(FLEET, obs="metrics")
        end = time.perf_counter()  # repro-lint: ignore[RPL001]
        dark_walls.append(mid - start)
        metered_walls.append(end - mid)
        return dark, metered

    # ``benchmark`` times the whole (dark + metered) round for the
    # report; the gate compares the per-arm splits taken inside the
    # same rounds, so a load spike taxes both arms or neither.
    dark, metered = benchmark.pedantic(_round, rounds=ROUNDS, iterations=1)
    dark_wall = min(dark_walls)
    metered_wall = min(metered_walls)

    # Bit-identity first: a cheap observer that changes the payload is
    # not an observer.
    assert [session_fingerprint(s) for s in metered.sessions] == [
        session_fingerprint(s) for s in dark.sessions
    ]
    assert metered.occupancy == dark.occupancy
    assert metered.congestion_time == dark.congestion_time

    share = metered.extra["obs_overhead"]["share"]
    ratio = metered_wall / dark_wall if dark_wall > 0 else float("inf")
    members = sum(
        1 for record in metered.extra["metrics"]
        if record["name"] == "fleet/ticks"
    )
    report(
        "obs_overhead",
        "\n".join(
            [
                "Fast-path observability overhead "
                f"(N={FLEET.num_sessions}, {BASE.duration:.0f} s, "
                "static CC, shared cells)",
                f"  dark fleet        : {dark_wall:7.3f} s"
                f" (best of {ROUNDS}, interleaved)",
                f"  metrics-level     : {metered_wall:7.3f} s"
                f" (best of {ROUNDS}, interleaved)",
                f"  wall ratio        : {ratio:7.3f}x"
                f" (gate: <= {MAX_WALL_RATIO:.2f}x)",
                f"  self-accounted    : {share * 100:6.2f} %"
                f" (gate: <= {MAX_OVERHEAD_SHARE * 100:.0f} %)",
                f"  plane coverage    : {members} member instrument rows",
                "  bit-identity      : per-member fingerprints +"
                " occupancy maps equal",
            ]
        ),
    )
    assert share <= MAX_OVERHEAD_SHARE
    assert ratio <= MAX_WALL_RATIO
