"""Bench: extension — multipath transmission over two operators.

The paper's forward-looking claim (Section 5 / Conclusion): parallel
links to multiple operators improve reliability when one network
deteriorates. Shape: duplicate transmission cuts the delay tail and
playback-latency violations relative to the single-path baseline, at
2x the radio cost; round-robin splitting sits in between on cost but
does not protect against per-path outages.
"""

from repro.experiments import multipath_experiment


def test_multipath_extension(benchmark, settings, report):
    result = benchmark.pedantic(
        multipath_experiment, args=(settings,), rounds=1, iterations=1
    )
    report("extension_multipath", result.render())

    single = result.by_strategy("single")
    duplicate = result.by_strategy("duplicate")
    roundrobin = result.by_strategy("roundrobin")

    # Redundant transmission buys a cleaner delay tail and better
    # latency compliance than any single operator.
    assert duplicate.owd_p99_ms < single.owd_p99_ms
    assert duplicate.latency_below_threshold >= single.latency_below_threshold
    assert duplicate.stalls_per_minute <= single.stalls_per_minute + 0.05
    # ...and costs twice the radio resources.
    assert duplicate.radio_cost == 2.0
    assert roundrobin.radio_cost == 1.0
