"""Bench: ablation — A3 handover parameters (Section 5 discussion).

Shape: raising hysteresis / time-to-trigger reduces handover churn
and ping-pong events, the tuning direction the paper proposes for
aerial users.
"""

from repro.experiments import ExperimentSettings, a3_ablation


def test_a3_ablation(benchmark, settings, report):
    sweep_settings = ExperimentSettings(
        duration=settings.duration,
        seeds=settings.seeds[:1],
        warmup=settings.warmup,
    )
    result = benchmark.pedantic(
        a3_ablation, args=(sweep_settings,), rounds=1, iterations=1
    )
    report("ablation_a3", result.render())

    by_hysteresis = {p.hysteresis_db: p for p in result.points}
    # More hysteresis, fewer handovers.
    assert by_hysteresis[1.0].ho_per_s >= by_hysteresis[3.0].ho_per_s
    assert by_hysteresis[3.0].ho_per_s >= by_hysteresis[6.0].ho_per_s * 0.8
    # The aggressive setting ping-pongs at least as much as the
    # conservative one.
    assert by_hysteresis[1.0].ping_pong >= by_hysteresis[6.0].ping_pong
