"""Bench: ablation — jitter-buffer depth and drop-on-latency (App. A.4).

Shape: playback latency grows with the configured buffer depth; the
``drop-on-latency`` strategy the paper proposes for remote piloting
trims the latency tail at the cost of discarding late packets.
"""

from repro.experiments import ExperimentSettings, jitterbuffer_ablation


def test_jitterbuffer_ablation(benchmark, settings, report):
    # One seed suffices: the sweep itself is the subject.
    sweep_settings = ExperimentSettings(
        duration=settings.duration,
        seeds=settings.seeds[:1],
        warmup=settings.warmup,
    )
    result = benchmark.pedantic(
        jitterbuffer_ablation, args=(sweep_settings,), rounds=1, iterations=1
    )
    report("ablation_jitterbuffer", result.render())

    by_key = {
        (p.latency_setting_ms, p.drop_on_latency): p for p in result.points
    }
    # Median playback latency increases with buffer depth.
    assert (
        by_key[(50.0, False)].median_playback_ms
        < by_key[(250.0, False)].median_playback_ms
    )
    # A 150 ms buffer keeps the median comfortably under 300 ms.
    assert by_key[(150.0, False)].median_playback_ms < 300.0
    # drop-on-latency never *increases* the median at equal depth and
    # actually discards late packets somewhere in the sweep.
    for depth in (50.0, 100.0, 150.0, 250.0):
        assert (
            by_key[(depth, True)].median_playback_ms
            <= by_key[(depth, False)].median_playback_ms + 20.0
        )
    assert any(p.dropped_late > 0 for p in result.points if p.drop_on_latency)
