"""Bench: Fig. 7 — FPS, SSIM and playback-latency CDFs.

Paper shape: the CCs deviate from 30 FPS more often than static;
SSIM stays above the 0.5 quality threshold >98 % of the time overall;
SCReAM's playback latency collapses in the well-provisioned urban
area (only ~38 % under 300 ms) while staying good (~85 %) in the
rural area; GCC behaves the other way around.
"""

from repro.experiments import fig7_video


def test_fig7_video(benchmark, settings, report, runner):
    result = benchmark.pedantic(
        fig7_video, args=(settings,), kwargs={'runner': runner}, rounds=1, iterations=1
    )
    report("fig7_video", result.render())

    # Playback latency: SCReAM suffers in urban, recovers in rural.
    scream_urban = result.latency_below_threshold("scream", "urban")
    scream_rural = result.latency_below_threshold("scream", "rural")
    static_urban = result.latency_below_threshold("static", "urban")
    gcc_urban = result.latency_below_threshold("gcc", "urban")
    assert scream_urban < static_urban
    assert scream_urban < gcc_urban
    assert scream_rural > scream_urban + 0.2
    # Static and GCC meet the threshold most of the time in urban.
    assert static_urban > 0.7
    assert gcc_urban > 0.7

    # SSIM: high-quality delivery dominates everywhere (paper: the
    # 0.5 threshold is missed 0.37-19.09 % of the time).
    for cc in ("static", "scream", "gcc"):
        for env in ("urban", "rural"):
            fraction = result.ssim_above_threshold(cc, env)
            assert fraction > 0.80, (cc, env, fraction)

    # FPS: the adaptive methods show more low-FPS episodes than the
    # static stream (paper Section 4.2.1).
    static_low = result.fps["static-urban-air-P1"].fraction_below(25.0)
    scream_low = result.fps["scream-urban-air-P1"].fraction_below(25.0)
    assert scream_low >= static_low
