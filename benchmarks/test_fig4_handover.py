"""Bench: Fig. 4 — handover frequency and execution time, air vs ground.

Paper shape: aerial HO frequency roughly an order of magnitude above
ground; urban above rural; HET mostly below the 49.5 ms success
threshold with heavy outliers (up to seconds) concentrated in the air.
"""

from repro.cellular.handover import HET_SUCCESS_THRESHOLD
from repro.experiments import fig4_handover, fig4_to_series
from repro.util.units import to_ms


def test_fig4_handover(benchmark, channel_settings, report, runner):
    result = benchmark.pedantic(
        fig4_handover, args=(channel_settings,), kwargs={'runner': runner}, rounds=1, iterations=1
    )
    report("fig4_handover", result.render())
    series = fig4_to_series(result)

    # Air >> ground in both environments.
    assert series["air_over_ground_urban"] > 2.0
    assert series["air_over_ground_rural"] > 1.5
    # Urban air busier than rural air (denser deployment).
    assert series["air_urban_ho_s"] > series["air_rural_ho_s"]
    # Aerial HO frequency in the paper's observed range (< 0.7 HO/s).
    assert 0.02 < series["air_urban_ho_s"] < 0.7

    # HET body below the 3GPP success threshold; outliers beyond it.
    assert series["het_median_ms"] < to_ms(HET_SUCCESS_THRESHOLD)
    assert series["het_max_ms"] > 100.0
    air_urban = result.het_summary("static-urban-air-P1")
    grd_urban = result.het_summary("static-urban-ground-P1")
    assert air_urban is not None and grd_urban is not None
    # The extreme outliers live in the air.
    assert air_urban.maximum >= grd_urban.maximum
