"""Bench: ablation — deep vs shallow uplink buffers (bufferbloat).

Shape: the deep buffers cellular operators run (paper Section 4.1/5)
trade latency for loss — shrinking the buffer to AQM-like depths cuts
the one-way-delay tail but surfaces drops the deep buffer absorbed.
"""

from repro.experiments import buffer_ablation


def test_buffer_ablation(benchmark, settings, report):
    result = benchmark.pedantic(
        buffer_ablation, args=(settings,), rounds=1, iterations=1
    )
    report("ablation_buffers", result.render())

    by_bytes = {p.buffer_bytes: p for p in result.points}
    shallow = by_bytes[250_000]
    deep = by_bytes[6_000_000]
    # Deep buffers absorb drops; shallow ones surface them.
    assert shallow.loss_rate > deep.loss_rate
    # Shallow buffers bound the delay tail.
    assert shallow.owd_p99_ms <= deep.owd_p99_ms + 1.0
