"""Bench: struct-of-arrays seed sweeps vs the scalar campaign path.

A Fig. 4-style channel-probe sweep (8 seeds, one flight each) executed
two ways over the same work units: the classic scalar runner (one
per-tick Python loop per seed) and the batched runner, which
precomputes every stochastic plane across seeds in struct-of-arrays
blocks and runs the sweeps in lockstep (:mod:`repro.cellular.batch`).

The bench asserts the two are *bit-identical* — same uplink samples,
same handovers — and that batching buys at least 2x wall time on the
sweep. Both sides run in this process under the same conditions, so
the ratio is robust to CI machine speed; the recorded bench time is
the batched side (the path campaigns actually take since PR 8).
"""

import time

from repro.core.config import ScenarioConfig
from repro.core.fingerprint import probe_fingerprint
from repro.experiments import ExperimentSettings, run_channel_probe
from repro.experiments.probes import channel_probe_batch, channel_probe_seed
from repro.runner import CampaignRunner

#: Fixed quick scale: the >= 2x gate needs a stable shape, not the
#: env-scaled settings the figure benches use.
SWEEP = ExperimentSettings(duration=300.0, seeds=tuple(range(1, 9)), warmup=20.0)
CONFIG = ScenarioConfig(cc="static", environment="urban", platform="air")


def test_batch_sweep(benchmark, report):
    with CampaignRunner(1, batch=False) as scalar_runner:
        scalar_start = time.perf_counter()  # repro-lint: ignore[RPL001]
        scalar = run_channel_probe(CONFIG, SWEEP, runner=scalar_runner)
        scalar_wall = time.perf_counter() - scalar_start  # repro-lint: ignore[RPL001]

    def _batched():
        with CampaignRunner(1, batch=True) as batch_runner:
            return run_channel_probe(CONFIG, SWEEP, runner=batch_runner)

    batched = benchmark.pedantic(_batched, rounds=1, iterations=1)
    batched_wall = benchmark.stats.stats.mean

    # Bit-identity first: a fast wrong answer is worthless.
    assert batched.uplink_samples == scalar.uplink_samples
    assert batched.altitudes == scalar.altitudes
    assert [
        (h.time, h.source_cell, h.target_cell, h.execution_time)
        for h in batched.handovers
    ] == [
        (h.time, h.source_cell, h.target_cell, h.execution_time)
        for h in scalar.handovers
    ]
    assert batched.cells_seen == scalar.cells_seen
    assert batched.ping_pong == scalar.ping_pong

    # Single-seed probes must agree with the batch too (same kernels).
    single_config = CONFIG.with_overrides(seed=SWEEP.seeds[0], duration=60.0)
    assert probe_fingerprint(
        channel_probe_seed(single_config)
    ) == probe_fingerprint(channel_probe_batch([single_config])[0])

    speedup = scalar_wall / batched_wall if batched_wall > 0 else float("inf")
    report(
        "batch_sweep",
        "\n".join(
            [
                "Batched seed sweep (8 x 300 s urban-air channel probes)",
                f"  scalar runner : {scalar_wall:7.3f} s",
                f"  batched runner: {batched_wall:7.3f} s",
                f"  speedup       : {speedup:7.2f}x (gate: >= 2.0x)",
                "  bit-identity  : uplink/altitude/handover logs equal",
            ]
        ),
    )
    assert speedup >= 2.0
