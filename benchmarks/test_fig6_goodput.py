"""Bench: Fig. 6 — goodput per bitrate-control method and environment.

Paper shape: urban goodput 19-25 Mbps with the hand-picked static
25 Mbps stream on top; rural goodput 8-10.5 Mbps where the adaptive
methods (SCReAM in particular) beat the static 8 Mbps pick.
"""

from repro.experiments import fig6_goodput


def test_fig6_goodput(benchmark, settings, report, runner):
    result = benchmark.pedantic(
        fig6_goodput, args=(settings,), kwargs={'runner': runner}, rounds=1, iterations=1
    )
    report("fig6_goodput", result.render())

    urban_static = result.mean_mbps("static", "urban")
    urban_gcc = result.mean_mbps("gcc", "urban")
    urban_scream = result.mean_mbps("scream", "urban")
    rural_static = result.mean_mbps("static", "rural")
    rural_gcc = result.mean_mbps("gcc", "rural")
    rural_scream = result.mean_mbps("scream", "rural")

    # Urban: abundant capacity lets the static stream win (paper: 25
    # vs 21 / 19); both CCs land in the 10-25 Mbps band.
    assert urban_static > urban_gcc
    assert urban_static > urban_scream
    assert 20.0 < urban_static < 26.0
    assert 8.0 < urban_gcc < 25.0
    assert 8.0 < urban_scream < 25.0

    # Rural: constrained capacity; static pinned near its 8 Mbps pick,
    # SCReAM squeezes out at least as much as the static stream.
    assert 6.0 < rural_static < 9.0
    assert rural_scream > rural_static - 1.0
    assert rural_scream > rural_gcc - 1.0
    # Urban carries far more than rural for every method.
    assert urban_static > rural_static * 2
    assert urban_gcc > rural_gcc
