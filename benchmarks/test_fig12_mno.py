"""Bench: Fig. 12 — rural video performance over both operators.

Paper shape: P2's larger rural capacity lifts the adaptive methods'
goodput and received frame quality (SSIM), while more capacity does
not automatically improve playback latency (SCReAM's feedback issues
worsen at higher bitrates).
"""

from repro.experiments import fig12_mno


def test_fig12_mno(benchmark, settings, report, runner):
    result = benchmark.pedantic(
        fig12_mno, args=(settings,), kwargs={'runner': runner}, rounds=1, iterations=1
    )
    report("fig12_mno", result.render())

    # Adaptive methods exploit P2's extra rural capacity (Fig. 12(a)).
    assert result.mean_goodput("scream", "P2") > result.mean_goodput("scream", "P1")
    assert result.mean_goodput("gcc", "P2") > result.mean_goodput("gcc", "P1")
    # The static 8 Mbps pick cannot exploit it.
    assert abs(
        result.mean_goodput("static", "P2") - result.mean_goodput("static", "P1")
    ) < 2.0

    # Quality follows bitrate for the adaptive methods (Fig. 12(d)).
    assert (
        result.ssim_above_threshold("scream", "P2")
        >= result.ssim_above_threshold("scream", "P1") - 0.05
    )

    # More capacity does not imply better SCReAM playback latency
    # (Appendix A.3's observation).
    assert (
        result.latency_below_threshold("scream", "P2")
        <= result.latency_below_threshold("scream", "P1") + 0.1
    )
