"""Bench: Fig. 10 — rural throughput and HO frequency, P1 vs P2.

Paper shape: the competitor P2 deploys denser rural sites, yielding
clearly higher capacity *and* more frequent handovers than the
default operator P1.
"""

from repro.experiments import fig10_operators


def test_fig10_operators(benchmark, channel_settings, report, runner):
    result = benchmark.pedantic(
        fig10_operators, args=(channel_settings,), kwargs={'runner': runner}, rounds=1, iterations=1
    )
    report("fig10_operators", result.render())

    p1_throughput = result.mean_throughput("P1")
    p2_throughput = result.mean_throughput("P2")
    # P2's denser rural deployment carries substantially more.
    assert p2_throughput > p1_throughput * 1.3
    # P1's rural capacity sits in the paper's ~8-12 Mbps band.
    assert 5.0 < p1_throughput < 15.0

    # ...and P2 hands over at least as often (Fig. 10(b)).
    assert result.ho_frequency("P2") >= result.ho_frequency("P1") * 0.9
