"""Tests for RFC 3550 sender/receiver reports."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.rtp.rtcp import (
    ReceiverReport,
    ReportBlock,
    RtcpAccountant,
    SenderReport,
    from_ntp,
    middle_ntp,
    rtt_from_block,
    to_ntp,
)


class TestNtpConversion:
    def test_roundtrip(self):
        for value in (0.0, 1.5, 123456.789, 0.000015):
            seconds, fraction = to_ntp(value)
            assert from_ntp(seconds, fraction) == pytest.approx(value, abs=1e-6)

    @given(st.floats(0.0, 1e6))
    def test_roundtrip_property(self, value):
        assert from_ntp(*to_ntp(value)) == pytest.approx(value, abs=1e-6)

    def test_middle_ntp_monotone_locally(self):
        assert middle_ntp(10.0) < middle_ntp(10.5) < middle_ntp(11.0)


class TestReportBlock:
    def make(self, **over):
        base = dict(
            ssrc=0x1111,
            fraction_lost=0.05,
            cumulative_lost=321,
            highest_sequence=70_000,
            jitter=42,
            last_sr=0xDEADBEEF,
            delay_since_last_sr=0.25,
        )
        base.update(over)
        return ReportBlock(**base)

    def test_roundtrip(self):
        block = self.make()
        parsed = ReportBlock.from_bytes(block.to_bytes())
        assert parsed.ssrc == block.ssrc
        assert parsed.fraction_lost == pytest.approx(block.fraction_lost, abs=1 / 256)
        assert parsed.cumulative_lost == block.cumulative_lost
        assert parsed.highest_sequence == block.highest_sequence
        assert parsed.last_sr == block.last_sr
        assert parsed.delay_since_last_sr == pytest.approx(0.25, abs=1e-4)

    def test_block_is_24_bytes(self):
        assert len(self.make().to_bytes()) == 24

    def test_fraction_saturates(self):
        block = self.make(fraction_lost=2.0)
        parsed = ReportBlock.from_bytes(block.to_bytes())
        assert parsed.fraction_lost <= 1.0

    def test_short_input_rejected(self):
        with pytest.raises(ValueError):
            ReportBlock.from_bytes(b"\x00" * 10)


class TestSenderReceiverReports:
    def test_sender_report_roundtrip(self):
        report = SenderReport(
            ssrc=7,
            ntp_time=1234.5,
            rtp_timestamp=90_000,
            packet_count=1000,
            octet_count=1_200_000,
        )
        parsed = SenderReport.from_bytes(report.to_bytes())
        assert parsed.ssrc == 7
        assert parsed.ntp_time == pytest.approx(1234.5, abs=1e-6)
        assert parsed.packet_count == 1000
        assert parsed.octet_count == 1_200_000

    def test_sender_report_with_blocks(self):
        block = ReportBlock(
            ssrc=1, fraction_lost=0.0, cumulative_lost=0,
            highest_sequence=10, jitter=0, last_sr=0, delay_since_last_sr=0.0,
        )
        report = SenderReport(
            ssrc=7, ntp_time=1.0, rtp_timestamp=0,
            packet_count=1, octet_count=1, blocks=[block],
        )
        parsed = SenderReport.from_bytes(report.to_bytes())
        assert len(parsed.blocks) == 1
        assert report.wire_size == len(report.to_bytes())

    def test_receiver_report_roundtrip(self):
        block = ReportBlock(
            ssrc=3, fraction_lost=0.1, cumulative_lost=5,
            highest_sequence=99, jitter=7, last_sr=123, delay_since_last_sr=0.5,
        )
        report = ReceiverReport(ssrc=9, blocks=[block])
        parsed = ReceiverReport.from_bytes(report.to_bytes())
        assert parsed.ssrc == 9
        assert parsed.blocks[0].cumulative_lost == 5
        assert report.wire_size == len(report.to_bytes())

    def test_type_confusion_rejected(self):
        sr = SenderReport(
            ssrc=1, ntp_time=0.0, rtp_timestamp=0, packet_count=0, octet_count=0
        )
        with pytest.raises(ValueError):
            ReceiverReport.from_bytes(sr.to_bytes())


class TestRtcpAccountant:
    def test_counts_expected_and_lost(self):
        acct = RtcpAccountant(ssrc=1)
        for seq in (0, 1, 2, 4, 5):  # 3 missing
            acct.on_packet(seq, seq * 3000, seq * 0.0333)
        block = acct.build_block(now=1.0)
        assert acct.expected == 6
        assert block.cumulative_lost == 1
        assert block.fraction_lost == pytest.approx(1 / 6, abs=0.01)

    def test_sequence_wrap_extends(self):
        acct = RtcpAccountant(ssrc=1)
        acct.on_packet(65_534, 0, 0.0)
        acct.on_packet(65_535, 3000, 0.033)
        acct.on_packet(0, 6000, 0.066)
        acct.on_packet(1, 9000, 0.1)
        assert acct.expected == 4

    def test_jitter_zero_for_perfect_pacing(self):
        acct = RtcpAccountant(ssrc=1)
        for i in range(100):
            acct.on_packet(i, i * 3000, i / 30.0 + 0.05)
        block = acct.build_block(now=10.0)
        assert block.jitter < 5

    def test_jitter_grows_with_variation(self):
        acct = RtcpAccountant(ssrc=1)
        for i in range(100):
            wobble = 0.01 if i % 2 else 0.0
            acct.on_packet(i, i * 3000, i / 30.0 + 0.05 + wobble)
        block = acct.build_block(now=10.0)
        assert block.jitter > 100

    def test_interval_fraction_resets(self):
        acct = RtcpAccountant(ssrc=1)
        for seq in (0, 2):  # one lost in the first interval
            acct.on_packet(seq, 0, 0.0)
        first = acct.build_block(now=1.0)
        assert first.fraction_lost > 0
        for seq in (3, 4, 5):
            acct.on_packet(seq, 0, 1.0)
        second = acct.build_block(now=2.0)
        assert second.fraction_lost == 0.0

    def test_rtt_roundtrip_via_sr_rr(self):
        """Full RFC 3550 RTT computation across both directions."""
        acct = RtcpAccountant(ssrc=1)
        sr = SenderReport(
            ssrc=1, ntp_time=100.0, rtp_timestamp=0, packet_count=0, octet_count=0
        )
        acct.on_sender_report(sr, arrival=100.04)  # 40 ms one-way
        block = acct.build_block(now=100.14)  # held for 100 ms
        # Sender receives the RR 40 ms later.
        rtt = rtt_from_block(block, now=100.18)
        assert rtt == pytest.approx(0.08, abs=0.005)

    def test_rtt_none_before_any_sr(self):
        acct = RtcpAccountant(ssrc=1)
        acct.on_packet(0, 0, 0.0)
        block = acct.build_block(now=1.0)
        assert rtt_from_block(block, now=2.0) is None
