"""Public-API hygiene: imports, __all__ integrity, docstrings."""

import importlib
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.net",
    "repro.rtp",
    "repro.cc",
    "repro.cc.gcc",
    "repro.cc.scream",
    "repro.video",
    "repro.cellular",
    "repro.flight",
    "repro.core",
    "repro.traces",
    "repro.metrics",
    "repro.analysis",
    "repro.experiments",
    "repro.multipath",
    "repro.control",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_every_module_has_docstring():
    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not module.__doc__:
            missing.append(info.name)
    assert missing == []


def test_public_classes_have_docstrings():
    undocumented = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if isinstance(obj, type) and not obj.__doc__:
                undocumented.append(f"{name}.{symbol}")
    assert undocumented == []


def test_version_exposed():
    assert repro.__version__


def test_top_level_exports():
    from repro import ScenarioConfig, SessionResult, run_session  # noqa: F401
