"""Tests for the SCReAM window, rate controller and loss detection."""

import pytest

from repro.cc.base import SentPacket
from repro.cc.scream import MSS, ScreamController, ScreamRateController, ScreamWindow
from repro.rtp.ccfb import CcfbPacketReport, CcfbRecorder, CcfbReport


class TestScreamWindow:
    def test_can_send_respects_cwnd(self):
        window = ScreamWindow()
        window.cwnd = 3 * MSS
        assert window.can_send(MSS)
        window.bytes_in_flight = 3 * MSS
        assert not window.can_send(1)

    def test_ack_reduces_bytes_in_flight(self):
        window = ScreamWindow()
        window.on_packet_sent(MSS, 0.0)
        assert window.bytes_in_flight == MSS
        window.on_packet_acked(MSS, 0.05, 0.1)
        assert window.bytes_in_flight == 0

    def test_cwnd_grows_below_qdelay_target(self):
        window = ScreamWindow(qdelay_target=0.06)
        start = window.cwnd
        for i in range(200):
            # Keep the window utilized: the bytes-in-flight headroom
            # cap only lets cwnd grow when it is actually being used.
            while window.can_send(MSS):
                window.on_packet_sent(MSS, i * 0.01)
            window.on_packet_acked(MSS, 0.04, i * 0.01 + 0.05)
        assert window.cwnd > start

    def test_cwnd_shrinks_above_qdelay_target(self):
        window = ScreamWindow(qdelay_target=0.06)
        # Establish base delay first.
        window.on_packet_acked(MSS, 0.03, 0.0)
        window.cwnd = 100 * MSS
        for i in range(100):
            window.on_packet_sent(MSS, 1.0 + i * 0.01)
            # one-way delay far above base: qdelay ~ 170 ms.
            window.on_packet_acked(MSS, 0.2, 1.0 + i * 0.01)
        assert window.cwnd < 100 * MSS

    def test_loss_backs_off_multiplicatively(self):
        window = ScreamWindow()
        window.cwnd = 100 * MSS
        window.on_packet_lost(MSS, now=1.0)
        assert window.cwnd == int(100 * MSS * 0.8)

    def test_loss_backoff_once_per_rtt(self):
        window = ScreamWindow()
        window.cwnd = 100 * MSS
        window.srtt = 0.1
        window.on_packet_lost(MSS, now=1.0)
        after_first = window.cwnd
        window.on_packet_lost(MSS, now=1.05)  # within one RTT
        assert window.cwnd == after_first
        window.on_packet_lost(MSS, now=1.2)  # beyond one RTT
        assert window.cwnd < after_first

    def test_cwnd_never_below_minimum(self):
        window = ScreamWindow()
        for i in range(50):
            window.on_packet_lost(MSS, now=float(i))
        assert window.cwnd >= window.min_cwnd

    def test_base_delay_is_windowed_minimum(self):
        window = ScreamWindow()
        window.on_packet_acked(MSS, 0.08, 0.0)
        window.on_packet_acked(MSS, 0.03, 1.0)
        window.on_packet_acked(MSS, 0.10, 2.0)
        assert window.base_delay == pytest.approx(0.03)

    def test_throughput_estimate(self):
        window = ScreamWindow()
        window.cwnd = 62_500  # bytes
        window.srtt = 0.05
        assert window.throughput_estimate() == pytest.approx(10e6)


class TestScreamRateController:
    def kwargs(self, **over):
        base = dict(
            rtp_queue_delay=0.0,
            qdelay=0.0,
            qdelay_target=0.06,
            window_throughput=100e6,
            ack_rate=None,
        )
        base.update(over)
        return base

    def test_ramp_up_speed_bounds_growth(self):
        ctrl = ScreamRateController(initial_bitrate=2e6, ramp_up_speed=1e6)
        ctrl.adjust(0.0, **self.kwargs())
        rate = ctrl.adjust(1.0, **self.kwargs())
        # 1 s at <= 2.5x ramp speed (fast-increase may be active).
        assert rate <= 2e6 + 2.5e6 * 1.05

    def test_queue_pressure_cuts_target(self):
        ctrl = ScreamRateController(initial_bitrate=10e6)
        ctrl.adjust(0.0, **self.kwargs())
        rate = ctrl.adjust(0.2, **self.kwargs(rtp_queue_delay=0.12))
        assert rate < 10e6

    def test_qdelay_pressure_cuts_target(self):
        ctrl = ScreamRateController(initial_bitrate=10e6)
        ctrl.adjust(0.0, **self.kwargs())
        rate = ctrl.adjust(0.2, **self.kwargs(qdelay=0.2))
        assert rate < 10e6

    def test_hold_band_neither_grows_nor_cuts(self):
        ctrl = ScreamRateController(initial_bitrate=10e6, queue_delay_guard=0.04)
        ctrl.adjust(0.0, **self.kwargs())
        rate = ctrl.adjust(0.2, **self.kwargs(rtp_queue_delay=0.03))
        assert rate == pytest.approx(10e6)

    def test_ack_rate_ceiling_binds(self):
        ctrl = ScreamRateController(
            initial_bitrate=10e6, ack_rate_headroom=1.25
        )
        ctrl.adjust(0.0, **self.kwargs())
        rate = ctrl.adjust(0.2, **self.kwargs(ack_rate=4e6))
        assert rate == pytest.approx(5e6)

    def test_loss_scales_down(self):
        ctrl = ScreamRateController(initial_bitrate=10e6, loss_scale=0.95)
        ctrl.on_loss()
        assert ctrl.target == pytest.approx(9.5e6)

    def test_fast_increase_after_quiet_period(self):
        ctrl = ScreamRateController(initial_bitrate=5e6, ramp_up_speed=1e6)
        ctrl.adjust(0.0, **self.kwargs())
        ctrl.adjust(2.5, **self.kwargs())
        before = ctrl.target
        after = ctrl.adjust(3.0, **self.kwargs())
        # 0.5 s at 2.5x speed.
        assert after - before == pytest.approx(0.5 * 2.5e6, rel=0.05)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            ScreamRateController(min_bitrate=10e6, max_bitrate=5e6)


def build_report(begin_seq, statuses, now, window=64):
    """statuses: dict seq -> arrival_offset (None = not received)."""
    reports = []
    count = max(window, len(statuses))
    for i in range(count):
        seq = (begin_seq + i) % (1 << 16)
        if seq in statuses and statuses[seq] is not None:
            reports.append(
                CcfbPacketReport(received=True, arrival_offset=statuses[seq])
            )
        else:
            reports.append(CcfbPacketReport(received=False))
    return CcfbReport(
        ssrc=1, begin_seq=begin_seq, report_timestamp=now, reports=reports
    )


class TestScreamController:
    def send(self, controller, seq, now, size=1200):
        controller.on_packet_sent(
            SentPacket(sequence=seq, transport_seq=None, size_bytes=size, send_time=now),
            now,
        )

    def test_ack_frees_window(self):
        controller = ScreamController()
        self.send(controller, 0, 0.0)
        assert controller.bytes_in_flight == 1200
        report = build_report(0, {0: 0.01}, now=0.06, window=1)
        controller.on_feedback(report, 0.06)
        assert controller.bytes_in_flight == 0

    def test_rejects_wrong_feedback_type(self):
        with pytest.raises(TypeError):
            ScreamController().on_feedback(object(), 0.0)

    def test_below_window_slide_counts_false_loss(self):
        """The Section 4.2.1 mechanism end to end: a sent packet whose
        sequence number falls below the report window is declared lost
        even though it may have been delivered."""
        controller = ScreamController()
        self.send(controller, 0, 0.0)
        # Later report whose window starts above sequence 0.
        report = build_report(10, {40: 0.01}, now=0.2, window=31)
        controller.on_feedback(report, 0.2)
        assert controller.false_loss_candidates == 1
        assert controller.bytes_in_flight == 0

    def test_in_window_gap_is_a_loss_after_reorder_margin(self):
        controller = ScreamController(reorder_margin=2)
        self.send(controller, 0, 0.0)
        self.send(controller, 1, 0.001)
        # Window covers 0..9; 0 missing, later packets received.
        statuses = {seq: 0.01 for seq in range(1, 10)}
        report = build_report(0, statuses, now=0.1, window=10)
        controller.on_feedback(report, 0.1)
        assert controller.window.loss_events >= 1
        assert controller.false_loss_candidates == 0

    def test_not_received_within_reorder_margin_not_lost(self):
        controller = ScreamController(reorder_margin=5)
        self.send(controller, 9, 0.0)
        statuses = {seq: 0.01 for seq in range(0, 9)}
        report = build_report(0, statuses, now=0.05, window=10)
        controller.on_feedback(report, 0.05)
        # Sequence 9 is within the margin of end_seq: still in flight.
        assert controller.bytes_in_flight == 1200

    def test_target_respects_configured_range(self):
        controller = ScreamController(min_bitrate=2e6, max_bitrate=25e6)
        assert 2e6 <= controller.target_bitrate(0.0) <= 25e6

    def test_queue_state_smoothing(self):
        controller = ScreamController()
        for _ in range(100):
            controller.on_queue_state(0.2, 10_000, 0.0)
        assert controller._rtp_queue_delay == pytest.approx(0.2, abs=0.01)

    def test_end_to_end_with_recorder(self):
        """CcfbRecorder output is consumable by the controller."""
        controller = ScreamController()
        recorder = CcfbRecorder(ssrc=1, ack_window=64)
        for seq in range(32):
            t = seq * 0.001
            self.send(controller, seq, t)
            recorder.on_packet(seq, t + 0.04)
        report = recorder.build_report(now=0.1)
        controller.on_feedback(report, 0.1)
        assert controller.bytes_in_flight == 0
        assert controller.false_loss_candidates == 0
