"""Tests for the GCC components: filter, detector, AIMD, loss control."""

import numpy as np
import pytest

from repro.cc.base import SentPacket
from repro.cc.gcc import (
    AimdRateControl,
    BandwidthUsage,
    GccController,
    InterArrival,
    LossBasedController,
    OveruseDetector,
    OveruseEstimator,
)
from repro.rtp.twcc import TwccFeedback


class TestInterArrival:
    def test_groups_by_burst_window(self):
        ia = InterArrival(burst_delta=0.005)
        assert ia.add_packet(0.000, 0.040, 1200) is None
        assert ia.add_packet(0.002, 0.042, 1200) is None  # same group
        delta = ia.add_packet(0.010, 0.050, 1200)  # new group: closes none yet
        assert delta is None  # only one complete previous group exists now
        delta = ia.add_packet(0.020, 0.061, 1200)
        assert delta is not None
        assert delta.send_delta == pytest.approx(0.010 - 0.002)
        assert delta.arrival_delta == pytest.approx(0.050 - 0.042)

    def test_delay_variation_zero_for_constant_delay(self):
        ia = InterArrival()
        deltas = []
        for i in range(20):
            delta = ia.add_packet(i * 0.01, i * 0.01 + 0.05, 1200)
            if delta is not None:
                deltas.append(delta.delay_variation)
        assert all(abs(d) < 1e-12 for d in deltas)

    def test_positive_variation_when_queue_builds(self):
        ia = InterArrival()
        deltas = []
        for i in range(20):
            # Arrival spacing grows: queue building.
            delta = ia.add_packet(i * 0.01, i * 0.012 + 0.05, 1200)
            if delta is not None:
                deltas.append(delta.delay_variation)
        assert all(d > 0 for d in deltas)

    def test_reset_clears_state(self):
        ia = InterArrival()
        ia.add_packet(0.0, 0.05, 1200)
        ia.reset()
        assert ia.add_packet(1.0, 1.05, 1200) is None

    def test_invalid_burst_delta(self):
        with pytest.raises(ValueError):
            InterArrival(burst_delta=0.0)


class TestOveruseEstimator:
    def test_offset_near_zero_on_clean_channel(self):
        est = OveruseEstimator()
        rng = np.random.default_rng(0)
        for _ in range(500):
            noise = rng.normal(0.0, 0.0002)
            est.update(0.01 + noise, 0.01, 0, in_stable_state=True)
        assert abs(est.offset_ms) < 1.0

    def test_offset_grows_under_sustained_queueing(self):
        est = OveruseEstimator()
        for _ in range(100):
            # Every group takes 2 ms longer to arrive than to send.
            est.update(0.012, 0.010, 0, in_stable_state=True)
        assert est.offset_ms > 0.5

    def test_offset_recovers_after_congestion_clears(self):
        est = OveruseEstimator()
        for _ in range(100):
            est.update(0.012, 0.010, 0, in_stable_state=False)
        peak = est.offset_ms
        for _ in range(300):
            est.update(0.010, 0.010, 0, in_stable_state=True)
        assert est.offset_ms < peak / 2

    def test_num_of_deltas_caps_at_60(self):
        est = OveruseEstimator()
        for _ in range(100):
            est.update(0.01, 0.01, 0, in_stable_state=True)
        assert est.num_of_deltas == 60


class TestOveruseDetector:
    def test_normal_on_small_offsets(self):
        det = OveruseDetector()
        for i in range(50):
            state = det.detect(0.01, 5.0, 60, now=i * 0.05)
        assert state is BandwidthUsage.NORMAL

    def test_overuse_requires_sustained_positive_offset(self):
        det = OveruseDetector()
        # One spike is not enough...
        state = det.detect(5.0, 5.0, 60, now=0.0)
        assert state is not BandwidthUsage.OVERUSING
        # ...but growing, sustained offsets are.
        states = [
            det.detect(5.0 + i * 0.1, 20.0, 60, now=0.05 * (i + 1))
            for i in range(10)
        ]
        assert BandwidthUsage.OVERUSING in states

    def test_underuse_on_negative_offset(self):
        det = OveruseDetector()
        state = det.detect(-5.0, 5.0, 60, now=0.0)
        assert state is BandwidthUsage.UNDERUSING

    def test_threshold_adapts_upward_under_offset_pressure(self):
        det = OveruseDetector()
        initial = det.threshold_ms
        for i in range(200):
            det.detect(0.3, 5.0, 60, now=i * 0.05)  # T=18, above threshold
        assert det.threshold_ms > initial

    def test_threshold_bounded(self):
        det = OveruseDetector()
        for i in range(2000):
            det.detect(9.0, 5.0, 60, now=i * 0.05)
        assert det.threshold_ms <= det.max_threshold


class TestAimdRateControl:
    def test_startup_ramp_is_aggressive(self):
        aimd = AimdRateControl(initial_bitrate=2e6)
        rate = 2e6
        for i in range(12):
            rate = aimd.update(BandwidthUsage.NORMAL, rate * 1.0, float(i))
        # Roughly startup_factor^11 growth from 2 Mbps.
        assert rate > 10e6

    def test_overuse_decreases_toward_acked_rate(self):
        aimd = AimdRateControl(initial_bitrate=10e6)
        rate = aimd.update(BandwidthUsage.OVERUSING, 8e6, 1.0)
        assert rate == pytest.approx(0.85 * 8e6)

    def test_decrease_floor_half_current(self):
        aimd = AimdRateControl(initial_bitrate=20e6)
        rate = aimd.update(BandwidthUsage.OVERUSING, 1e6, 1.0)
        assert rate == pytest.approx(10e6)  # not 0.85 Mbps

    def test_decrease_rate_limited(self):
        aimd = AimdRateControl(initial_bitrate=20e6)
        aimd.update(BandwidthUsage.OVERUSING, 18e6, 1.0)
        first = aimd.rate
        # A second overuse within RTT+100ms must not cut again.
        aimd.update(BandwidthUsage.OVERUSING, 10e6, 1.01)
        assert aimd.rate == first

    def test_underuse_holds(self):
        aimd = AimdRateControl(initial_bitrate=10e6)
        rate = aimd.update(BandwidthUsage.UNDERUSING, 9e6, 1.0)
        assert rate == pytest.approx(10e6)

    def test_rate_clamped_to_range(self):
        aimd = AimdRateControl(initial_bitrate=2e6, min_bitrate=2e6, max_bitrate=25e6)
        for i in range(200):
            aimd.update(BandwidthUsage.NORMAL, 100e6, float(i))
        assert aimd.rate <= 25e6
        aimd2 = AimdRateControl(initial_bitrate=2e6, min_bitrate=2e6)
        for i in range(20):
            aimd2.update(BandwidthUsage.OVERUSING, 0.1e6, float(i))
        assert aimd2.rate >= 2e6

    def test_recovery_after_decrease_uses_fast_ramp(self):
        aimd = AimdRateControl(initial_bitrate=20e6)
        aimd.update(BandwidthUsage.OVERUSING, 20e6, 0.0)  # remembers ~20 Mbps
        # Crash the rate far below the remembered capacity.
        for i in range(5):
            aimd.update(BandwidthUsage.OVERUSING, 3e6, 1.0 + i)
        low = aimd.rate
        assert aimd.in_startup is False
        rate = low
        for i in range(6):
            rate = aimd.update(BandwidthUsage.NORMAL, rate, 10.0 + i)
        # Fast (startup-like) recovery: >= 20 %/s compounded.
        assert rate > low * 1.2**5


class TestLossBasedController:
    def test_decrease_on_high_loss(self):
        ctrl = LossBasedController(initial_bitrate=10e6)
        rate = ctrl.update(lost=20, total=100)  # 20 % loss
        assert rate == pytest.approx(10e6 * (1 - 0.5 * 0.2))

    def test_increase_on_low_loss(self):
        ctrl = LossBasedController(initial_bitrate=10e6)
        rate = ctrl.update(lost=0, total=100)
        assert rate == pytest.approx(10.5e6)

    def test_hold_between_thresholds(self):
        ctrl = LossBasedController(initial_bitrate=10e6)
        rate = ctrl.update(lost=5, total=100)  # 5 %
        assert rate == pytest.approx(10e6)

    def test_empty_interval_ignored(self):
        ctrl = LossBasedController(initial_bitrate=10e6)
        assert ctrl.update(lost=0, total=0) == 10e6

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            LossBasedController(initial_bitrate=1e6, high_loss=0.01, low_loss=0.1)


class TestGccController:
    def _feed(self, controller, base_seq, send_times, arrivals, size=1200):
        for i, send_time in enumerate(send_times):
            controller.on_packet_sent(
                SentPacket(
                    sequence=i,
                    transport_seq=(base_seq + i) % (1 << 16),
                    size_bytes=size,
                    send_time=send_time,
                ),
                send_time,
            )
        feedback = TwccFeedback(
            base_seq=base_seq,
            reference_time=arrivals[0] if arrivals else 0.0,
            feedback_count=0,
            arrivals=arrivals,
        )
        controller.on_feedback(feedback, max(a for a in arrivals if a) + 0.02)

    def test_requires_transport_seq(self):
        controller = GccController()
        with pytest.raises(ValueError):
            controller.on_packet_sent(
                SentPacket(sequence=0, transport_seq=None, size_bytes=100, send_time=0.0),
                0.0,
            )

    def test_rejects_wrong_feedback_type(self):
        with pytest.raises(TypeError):
            GccController().on_feedback(object(), 0.0)

    def test_rate_grows_on_clean_feedback(self):
        controller = GccController(initial_bitrate=2e6)
        t = 0.0
        seq = 0
        for round_idx in range(60):
            # Send at the controller's current target so the acked-
            # bitrate cap does not clamp growth (as the encoder does).
            target = controller.target_bitrate(t)
            count = max(2, int(target * 0.05 / 8 / 1200))
            sends = [t + i * (0.05 / count) for i in range(count)]
            arrivals = [s + 0.04 for s in sends]
            self._feed(controller, seq, sends, arrivals)
            seq += count
            t += 0.05
        assert controller.target_bitrate(t) > 3e6

    def test_loss_reported_in_feedback_lowers_target(self):
        controller = GccController(initial_bitrate=20e6)
        t = 0.0
        seq = 0
        for _ in range(20):
            sends = [t + i * 0.01 for i in range(10)]
            # 30 % of packets lost.
            arrivals = [
                (s + 0.04 if i % 3 else None) for i, s in enumerate(sends)
            ]
            self._feed(controller, seq, sends, arrivals)
            seq += 10
            t += 0.1
        assert controller.target_bitrate(t) < 20e6

    def test_acked_bitrate_estimate(self):
        controller = GccController()
        sends = [i * 0.01 for i in range(50)]
        arrivals = [s + 0.04 for s in sends]
        self._feed(controller, 0, sends, arrivals)
        rate = controller.acked_bitrate(1.0)
        # 1200 B every 10 ms ~ 0.96 Mbps.
        assert rate == pytest.approx(0.96e6, rel=0.2)

    def test_pacing_rate_scales_with_target(self):
        controller = GccController(initial_bitrate=4e6)
        assert controller.pacing_rate(0.0) == pytest.approx(2.5 * 4e6)
